#!/usr/bin/env python
"""Scenario: how long does one phone last under each sharing scheme?

Runs a scaled-down version of the paper's Figure-9 experiment — groups
of images uploaded on a fixed cadence until the battery dies — for
Direct Upload, MRC, BEES-EA, and BEES, then draws the remaining-energy
traces as ASCII sparkcurves.

Run:  python examples/battery_lifetime.py
"""

from __future__ import annotations

from repro import DirectUpload, Mrc, make_bees_ea
from repro.analysis.charts import sparkline
from repro.core.client import BeesScheme
from repro.imaging.synth import SceneGenerator
from repro.sim.lifetime import LifetimeExperiment


def main() -> None:
    experiment = LifetimeExperiment(
        group_size=10,
        interval_seconds=300.0,  # one group every 5 minutes, screen bright
        redundancy_ratio=0.5,
        capacity_fraction=0.1,
        max_groups=100,
        generator=SceneGenerator(height=72, width=96),
    )

    print("uploading 10-image groups every 5 minutes until the battery dies\n")
    results = []
    for scheme in (DirectUpload(), Mrc(), make_bees_ea(), BeesScheme()):
        result = experiment.run(scheme)
        results.append(result)
        trace = [point.ebat for point in result.trace]
        print(f"{result.scheme:14s} {sparkline(trace, lo=0.0, hi=1.0)}")
        print(
            f"{'':14s} dead after {result.lifetime_minutes:.0f} min, "
            f"{result.groups_completed} groups, "
            f"{result.images_uploaded} images uploaded"
        )

    direct = results[0]
    bees = results[-1]
    gain = bees.lifetime_minutes / direct.lifetime_minutes - 1
    print(
        f"\nBEES extends the battery lifetime by {gain * 100:.0f}% over Direct"
        f" Upload while delivering {bees.images_uploaded} images"
        f" (Direct managed {direct.images_uploaded})."
    )
    print(
        "Watch BEES' curve flatten near the end: the energy-aware adaptive\n"
        "schemes spend less per group as the battery drains."
    )


if __name__ == "__main__":
    main()
