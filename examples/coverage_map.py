#!/usr/bin/env python
"""Scenario: mapping a city with a handful of dying phones.

A scaled-down Figure-12: a geotagged photo collection (heavy-tailed
images-per-location, like the Paris dataset) is split across three
phones that upload groups into a shared server until their batteries
die.  The example prints an ASCII density map of what the server
received under Direct Upload vs. BEES — the BEES map covers visibly
more of the city.

Run:  python examples/coverage_map.py
"""

from __future__ import annotations

import numpy as np

from repro import BeesScheme, DirectUpload
from repro.analysis.coverage import density_grid
from repro.datasets.geo import BoundingBox
from repro.datasets.paris import SyntheticParis
from repro.imaging.synth import SceneGenerator
from repro.sim.coveragesim import CoverageExperiment

SHADES = " .:*#@"
MAP_BINS = 24


def ascii_map(geotags, box: BoundingBox) -> str:
    """Log2-shaded density map, north at the top."""
    grid = density_grid(list(geotags), box, n_bins=MAP_BINS)
    lines = []
    for row in grid[::-1]:
        line = ""
        for count in row:
            level = 0 if count == 0 else 1 + int(np.log2(count))
            line += SHADES[min(len(SHADES) - 1, level)]
        lines.append("|" + line + "|")
    return "\n".join(lines)


def main() -> None:
    box = BoundingBox.paris_test()
    dataset = SyntheticParis(
        n_images=400,
        n_locations=120,
        seed=9,
        generator=SceneGenerator(height=72, width=96),
    )
    experiment = CoverageExperiment(
        dataset=dataset,
        n_phones=3,
        group_size=12,
        interval_seconds=300.0,
        capacity_fraction=0.015,
    )

    print(
        f"dataset: {len(dataset)} geotagged images over "
        f"{dataset.n_locations} locations; 3 phones, 12-image groups\n"
    )
    results = {}
    for scheme in (DirectUpload(), BeesScheme()):
        result = experiment.run(scheme)
        results[scheme.name] = result
        print(f"--- {scheme.name} ---")
        print(
            f"uploaded {result.images_uploaded} images covering "
            f"{result.locations_covered} unique locations "
            f"({result.locations_per_image:.2f} locations/image)"
        )
        print(ascii_map(result.received_geotags, box))
        print()

    direct = results["Direct Upload"]
    bees = results["BEES"]
    print(
        f"BEES covered {bees.locations_covered / direct.locations_covered - 1:+.0%} "
        f"more unique locations than Direct Upload on the same batteries\n"
        f"(the paper reports +97.1% at full scale)."
    )


if __name__ == "__main__":
    main()
