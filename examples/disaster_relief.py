#!/usr/bin/env python
"""Scenario: volunteers upload quake photos over a damaged network.

Compares the four schemes of the paper's evaluation — Direct Upload,
SmartEye, MRC, and BEES — on the same 30-image batch at two cross-batch
redundancy levels, over a fluctuating ~256 Kbps uplink, and prints a
side-by-side of energy, bandwidth, delay, and eliminations (the
Figures 7/10/11 story at example scale).

Run:  python examples/disaster_relief.py
"""

from __future__ import annotations

from repro import BeesScheme, DirectUpload, Mrc, SmartEye, Smartphone, build_server
from repro.analysis.reporting import format_bytes, format_table
from repro.datasets import DisasterDataset


def run_at_ratio(ratio: float) -> str:
    data = DisasterDataset()
    batch = data.make_batch(n_images=30, n_inbatch_similar=4, seed=7)
    partners = data.cross_batch_partners(batch, ratio, seed=8)

    rows = []
    for scheme in (DirectUpload(), SmartEye(), Mrc(), BeesScheme()):
        server = build_server(scheme, partners)
        report = scheme.process_batch(Smartphone(), server, batch)
        rows.append(
            [
                scheme.name,
                report.n_uploaded,
                len(report.eliminated_cross_batch),
                len(report.eliminated_in_batch),
                f"{report.total_energy_joules:.0f} J",
                format_bytes(report.sent_bytes),
                f"{report.average_image_seconds:.1f} s",
            ]
        )
    return format_table(
        ["scheme", "uploaded", "x-batch elim", "in-batch elim", "energy", "bandwidth", "avg delay"],
        rows,
    )


def main() -> None:
    for ratio in (0.0, 0.5):
        print(f"\n=== cross-batch redundancy {int(ratio * 100)}% "
              f"(30 images, 4 in-batch duplicates) ===")
        print(run_at_ratio(ratio))
    print(
        "\nNote the paper's findings at example scale: with no redundancy\n"
        "SmartEye and MRC cost MORE than Direct Upload (they extract and\n"
        "upload features for nothing), while BEES still wins through\n"
        "in-batch elimination and approximate uploading."
    )


if __name__ == "__main__":
    main()
