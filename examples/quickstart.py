#!/usr/bin/env python
"""Quickstart: share one batch of disaster images through BEES.

Builds a 20-image batch (with 3 in-batch near-duplicates and some
images the cloud has already seen), runs the full BEES pipeline on a
simulated smartphone, and prints what was eliminated, what was
uploaded, and what it cost.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import BeesScheme, Smartphone, build_server
from repro.datasets import DisasterDataset
from repro.sim.session import scheme_extractor


def main() -> None:
    data = DisasterDataset()

    # A batch fresh off the camera: 20 photos, 3 of them second shots
    # of scenes already in the batch (burst shooting).
    batch = data.make_batch(n_images=20, n_inbatch_similar=3, seed=42)

    # The cloud has already received photos of 25% of these scenes from
    # other volunteers (cross-batch redundancy).
    partners = data.cross_batch_partners(batch, redundancy_ratio=0.25, seed=43)

    scheme = BeesScheme()
    server = build_server(scheme, seed_images=partners)
    phone = Smartphone()

    report = scheme.process_batch(phone, server, batch)

    print(f"batch size:           {report.n_images}")
    print(f"cross-batch redundant: {len(report.eliminated_cross_batch)} "
          f"({', '.join(report.eliminated_cross_batch[:3])}, ...)")
    print(f"in-batch redundant:    {len(report.eliminated_in_batch)}")
    print(f"uploaded:              {report.n_uploaded}")
    print(f"bytes sent:            {report.sent_bytes / 1024**2:.2f} MB "
          f"(vs {sum(i.nominal_bytes for i in batch) / 1024**2:.2f} MB raw)")
    print(f"energy spent:          {report.total_energy_joules:.1f} J "
          f"({phone.ebat * 100:.2f}% battery remaining)")
    print(f"avg delay per image:   {report.average_image_seconds:.2f} s")
    print()
    print("energy by stage:")
    for category, joules in sorted(report.energy_by_category.items()):
        print(f"  {category:20s} {joules:8.2f} J")

    # The cloud side: everything BEES uploaded is indexed and queryable.
    extractor = scheme_extractor(scheme)
    probe = data.make_batch(n_images=1, n_inbatch_similar=0, seed=42)[0]
    result = server.query_features(extractor.extract(probe))
    print()
    print(f"re-querying an uploaded scene: max similarity "
          f"{result.best_similarity:.3f} against {result.best_id!r}")


if __name__ == "__main__":
    main()
