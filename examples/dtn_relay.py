#!/usr/bin/env python
"""Scenario: no infrastructure at all — photos ride a delay-tolerant network.

When even the low-bandwidth uplink of the other examples is gone,
photos hop between phones opportunistically (epidemic routing) until a
carrier meets the gateway.  Relay buffers are tiny, so the drop policy
decides what information survives.  This example pits content-blind
FIFO dropping against CARE-style content-aware dropping (evict from
the most-similar pair) — the DTN branch of the paper's related work.

Run:  python examples/dtn_relay.py
"""

from __future__ import annotations

from collections import defaultdict

from repro.datasets import DisasterDataset
from repro.dtn import CareDropPolicy, CarriedImage, EpidemicSimulation, FifoDropPolicy
from repro.features import OrbExtractor
from repro.imaging.synth import SceneGenerator

N_NODES = 5
BUFFER = 3
ROUNDS = 40


def build_queues():
    """Photographers' shot queues; burst duplicates stay on one phone."""
    data = DisasterDataset(generator=SceneGenerator(height=72, width=96))
    extractor = OrbExtractor()
    batch = data.make_batch(n_images=30, n_inbatch_similar=12, seed=9)
    by_scene = defaultdict(list)
    for image in batch:
        by_scene[image.group_id].append(
            CarriedImage(image=image, features=extractor.extract(image))
        )
    queues = defaultdict(list)
    for index, scene in enumerate(sorted(by_scene)):
        queues[index % N_NODES].extend(by_scene[scene])
    return dict(queues), len(by_scene)


def run(policy_factory, queues, seed=1):
    simulation = EpidemicSimulation(
        n_nodes=N_NODES,
        buffer_capacity=BUFFER,
        policy_factory=policy_factory,
        contact_bandwidth=2,
        contacts_per_round=3,
        gateway_probability=0.1,
        seed=seed,
    )
    pending = {node: list(queue) for node, queue in queues.items()}
    for _ in range(ROUNDS):
        for node, queue in pending.items():
            if queue:
                simulation.inject(node, queue.pop(0))
        simulation.step()
    return simulation.run(0)


def main() -> None:
    queues, n_scenes = build_queues()
    print(
        f"{sum(len(q) for q in queues.values())} photos of {n_scenes} distinct "
        f"scenes, {N_NODES} phones with {BUFFER}-image buffers, "
        f"{ROUNDS} contact rounds\n"
    )
    for policy_factory in (FifoDropPolicy, CareDropPolicy):
        report = run(policy_factory, queues)
        name = policy_factory().name
        print(f"--- drop policy: {name} ---")
        print(f"  images delivered:   {report.n_delivered}")
        print(f"  distinct scenes:    {report.n_unique_groups} / {n_scenes}")
        print(f"  transmissions:      {report.transmissions}")
        print(f"  drops / rejections: {report.drops} / {report.rejections}\n")
    print(
        "CARE keeps relay buffers diverse (it refuses or evicts redundant\n"
        "content), so the same contacts deliver more distinct scenes — the\n"
        "in-network counterpart of what BEES does at the source."
    )


if __name__ == "__main__":
    main()
