"""Extension — kernel microbenchmarks: ``repro.kernels`` vs. the
pre-kernel hot paths.

Not a paper figure: this bench guards the vectorized similarity kernel
layer the reproduction adds (blocked uint64 Hamming, batched LSH vote
aggregation, the prepared-set SSMM similarity matrix).  Each case times
the kernel against a frozen copy of the implementation it replaced —
the uint8 XOR tensor + popcount-table gather, the dict-of-list LSH
buckets with per-key Python vote loops, and the per-pair Jaccard loop
that re-cast both descriptor matrices on every pair — and asserts the
outputs byte-identical while it measures.

The legacy copies are deliberately self-contained (not imported from
``tests/``): a bench artifact must keep meaning the same thing even if
the test suite's reference module moves.
"""

from __future__ import annotations

# beeslint: disable-file=raw-timing (micro-benchmark timing loops are the measurement)

import os
import tempfile
import time
from collections import defaultdict

import numpy as np

from repro.analysis.reporting import format_table
from repro.features.base import FeatureSet
from repro.features.matching import DEFAULT_HAMMING_THRESHOLD, mutual_matches
from repro.fleet import FleetRunner
from repro.index.lsh import HammingLSH
from repro.kernels.batch import batch_similarity_matrix
from repro.kernels.cache import MatchCountCache
from repro.kernels.hamming import hamming_distance_matrix
from repro.obs.journal import journal_to, read_journal
from repro.obs.profiling import SamplingProfiler

from common import merge_params

PARAMS = {
    "seed": 0,
    "dist_rows": 512,
    "n_descriptors": 128,
    "batch_sizes": [8, 32, 128],
    "lsh_n_images": 256,
    "lsh_n_queries": 48,
    "repeats": 3,
    "profile_repeats": 5,
    "profile_passes": 48,
    "journal_repeats": 3,
    "journal_devices": 2,
    "journal_rounds": 2,
    "journal_batch": 4,
}
QUICK_PARAMS = {
    "dist_rows": 256,
    "batch_sizes": [8, 32],
    "lsh_n_images": 192,
    "lsh_n_queries": 32,
    "repeats": 2,
    "profile_repeats": 3,
    "profile_passes": 24,
    "journal_repeats": 2,
    "journal_rounds": 1,
}

#: The acceptance floors for the kernel layer (see the README's
#: "Performance kernels" section); the bench asserts them.
MIN_SIMILARITY_SPEEDUP = 3.0
MIN_VOTING_SPEEDUP = 2.0

#: Ceiling on the sampling profiler's wall-time overhead, asserted by
#: ``test_kernels`` (the observability layer's "low-overhead" promise,
#: measured min-of-N against the same kernel workload).
MAX_PROFILER_OVERHEAD = 0.05

#: Ceiling on the decision journal's CPU-time overhead, asserted by
#: ``test_kernels``: a fully journaled fleet run may cost at most 5%
#: more process time than the identical run with the journal disabled.
MAX_JOURNAL_OVERHEAD = 0.05

# -- frozen pre-kernel implementations ------------------------------------

_POPCOUNT_TABLE = np.unpackbits(
    np.arange(256, dtype=np.uint8)[:, None], axis=1
).sum(axis=1)


def legacy_hamming_distance_matrix(a, b):
    """uint8 XOR tensor + 256-entry popcount-table gather."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    xor = np.bitwise_xor(a[:, None, :], b[None, :, :])
    return _POPCOUNT_TABLE[xor].sum(axis=2).astype(np.int64)


def legacy_similarity_matrix(feature_sets):
    """The per-pair Jaccard loop, re-casting descriptors every pair."""
    n = len(feature_sets)
    weights = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            a, b = feature_sets[i], feature_sets[j]
            dist = legacy_hamming_distance_matrix(a.descriptors, b.descriptors)
            matches = int(mutual_matches(dist, DEFAULT_HAMMING_THRESHOLD).shape[0])
            union = len(a) + len(b) - matches
            weights[i, j] = weights[j, i] = (
                1.0 if union <= 0 else matches / union
            )
    return weights


class LegacyVoteTables:
    """dict-of-list buckets + per-key Python vote loops.

    Key generation is delegated to a production :class:`HammingLSH` so
    the comparison isolates exactly what the kernel changed: bucket
    storage and vote aggregation.
    """

    def __init__(self, lsh):
        self._lsh = lsh
        self._tables = [defaultdict(list) for _ in range(lsh.n_tables)]

    def add(self, packed, ref):
        keys = self._lsh.keys(packed)
        for table, table_keys in zip(self._tables, keys.T):
            for key in table_keys:
                table[int(key)].append(ref)

    def votes_from_keys(self, keys):
        counts = defaultdict(int)
        for table, table_keys in zip(self._tables, keys.T):
            for key in table_keys:
                bucket = table.get(int(key))
                if not bucket:
                    continue
                for ref in set(bucket):
                    counts[ref] += 1
        return dict(counts)


# -- workload builders ----------------------------------------------------


def _descriptor_rows(rng, n):
    return rng.integers(0, 256, (n, 32)).astype(np.uint8)


def _feature_sets(n_sets, n_descriptors, seed):
    """ORB-like sets drawing from a shared pool so pairs really match."""
    rng = np.random.default_rng(seed)
    pool = _descriptor_rows(rng, 2 * n_descriptors)
    sets = []
    for number in range(n_sets):
        take = rng.choice(2 * n_descriptors, size=n_descriptors, replace=False)
        descriptors = pool[take].copy()
        sets.append(
            FeatureSet(
                kind="orb",
                descriptors=descriptors,
                xs=np.zeros(n_descriptors, dtype=np.float32),
                ys=np.zeros(n_descriptors, dtype=np.float32),
                pixels_processed=n_descriptors,
                image_id=f"bench-{seed}-{number}",
            )
        )
    return sets


def _best_of(repeats, fn, *args):
    """min-of-N wall time plus the last return value."""
    best = float("inf")
    value = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        value = fn(*args)
        best = min(best, time.perf_counter() - started)
    return best, value


# -- the three case groups ------------------------------------------------


def bench_distance_matrix(dist_rows, seed, repeats):
    rng = np.random.default_rng(seed)
    a = _descriptor_rows(rng, dist_rows)
    b = _descriptor_rows(rng, dist_rows)
    legacy_seconds, expected = _best_of(repeats, legacy_hamming_distance_matrix, a, b)
    kernel_seconds, actual = _best_of(repeats, hamming_distance_matrix, a, b)
    assert np.array_equal(expected, actual)
    return {
        "rows": dist_rows,
        "legacy_seconds": legacy_seconds,
        "kernel_seconds": kernel_seconds,
        "speedup": legacy_seconds / max(kernel_seconds, 1e-9),
    }


def bench_lsh_votes(lsh_n_images, lsh_n_queries, seed, repeats):
    rng = np.random.default_rng(seed)
    lsh = HammingLSH(n_bits=256)
    legacy = LegacyVoteTables(HammingLSH(n_bits=256))
    shared = _descriptor_rows(rng, 15)  # overlap -> shared, busy buckets
    for ref in range(lsh_n_images):
        packed = _descriptor_rows(rng, 40)
        packed[: len(shared)] = shared
        lsh.add(packed, ref=ref)
        legacy.add(packed, ref=ref)
    query_keys = []
    for _ in range(lsh_n_queries):
        packed = _descriptor_rows(rng, 40)
        packed[: len(shared)] = shared
        query_keys.append(lsh.keys(packed))

    def drain(index):
        return [index.votes_from_keys(keys) for keys in query_keys]

    legacy_seconds, expected = _best_of(repeats, drain, legacy)
    kernel_seconds, actual = _best_of(repeats, drain, lsh)
    assert expected == actual
    return {
        "n_images": lsh_n_images,
        "n_queries": lsh_n_queries,
        "legacy_seconds": legacy_seconds,
        "kernel_seconds": kernel_seconds,
        "speedup": legacy_seconds / max(kernel_seconds, 1e-9),
    }


def bench_similarity_batches(batch_sizes, n_descriptors, seed, repeats):
    rows = {}
    for n_sets in batch_sizes:
        sets = _feature_sets(n_sets, n_descriptors, seed)
        # The biggest legacy batches are expensive; one timing pass is
        # plenty for a >= 5x signal against a 3x gate.
        effective = 1 if n_sets >= 64 else repeats
        legacy_seconds, expected = _best_of(effective, legacy_similarity_matrix, sets)
        kernel_seconds, actual = _best_of(
            effective, lambda s: batch_similarity_matrix(s, cache=MatchCountCache()), sets
        )
        assert np.array_equal(expected, actual)
        rows[int(n_sets)] = {
            "legacy_seconds": legacy_seconds,
            "kernel_seconds": kernel_seconds,
            "speedup": legacy_seconds / max(kernel_seconds, 1e-9),
        }
    return rows


def bench_profiler_overhead(dist_rows, seed, repeats, passes):
    """Same kernel workload bare vs. under the sampling profiler.

    Interleaving bare/profiled pairs cancels machine drift (thermal,
    governor, co-tenants), and the gated metric is **process CPU
    time**: it charges the sampler thread's own cycles to the profiled
    side but is immune to external load, where wall time on a shared
    host swings far more than the 5% budget being measured.  On an
    unloaded machine the two converge.
    """
    rng = np.random.default_rng(seed)
    a = _descriptor_rows(rng, dist_rows)
    b = _descriptor_rows(rng, dist_rows)

    def workload():
        for _ in range(passes):
            hamming_distance_matrix(a, b)

    workload()  # warm-up: caches, allocator, frequency governor
    profiler = SamplingProfiler()
    bare_times = []
    profiled_times = []
    wall_times = []
    for _ in range(repeats):
        started = time.process_time()
        workload()
        bare_times.append(time.process_time() - started)
        profiler.start()
        try:
            wall_started = time.perf_counter()
            started = time.process_time()
            workload()
            profiled_times.append(time.process_time() - started)
            wall_times.append(time.perf_counter() - wall_started)
        finally:
            profiler.stop()
    stats = profiler.stats()
    bare_seconds = min(bare_times)
    profiled_seconds = min(profiled_times)
    overhead = profiled_seconds / max(bare_seconds, 1e-9) - 1.0
    return {
        "bare_seconds": bare_seconds,
        "profiled_seconds": profiled_seconds,
        "profiled_wall_seconds": min(wall_times),
        "overhead_fraction": overhead,
        "samples": stats.n_samples,
        "hz": stats.hz,
    }


def bench_journal_overhead(journal_devices, journal_rounds, journal_batch, seed, repeats):
    """The same fleet run with the decision journal off vs. on.

    The journaled side records every decision site (CBRD verdicts, AIU
    prepares, policy applications, SSMM selections, batch summaries) to
    a real JSONL file, so the measurement includes serialization and
    buffered I/O, not just the emit calls.  Interleaved pairs and
    **process CPU time** min-of-N, exactly like the profiler gate: the
    journal's promise is "always on" observability, so it gets the same
    5% budget.  Decisions must not move — both sides' fingerprints are
    asserted identical each repeat.
    """

    def fleet():
        return FleetRunner(
            n_devices=journal_devices,
            n_rounds=journal_rounds,
            batch_size=journal_batch,
            seed=seed,
            mode="sequential",
        ).run()

    fleet()  # warm-up: dataset generation, caches, allocator
    bare_times = []
    journaled_times = []
    events = 0
    with tempfile.TemporaryDirectory() as tmp:
        for number in range(repeats):
            started = time.process_time()
            bare = fleet()
            bare_times.append(time.process_time() - started)
            path = os.path.join(tmp, f"bench-journal-{number}.jsonl")
            with journal_to(path):
                started = time.process_time()
                journaled = fleet()
                journaled_times.append(time.process_time() - started)
            assert journaled.fingerprint() == bare.fingerprint()
            events = len(read_journal(path).records)
    bare_seconds = min(bare_times)
    journaled_seconds = min(journaled_times)
    return {
        "bare_seconds": bare_seconds,
        "journaled_seconds": journaled_seconds,
        "overhead_fraction": journaled_seconds / max(bare_seconds, 1e-9) - 1.0,
        "events": events,
    }


def run(params: "dict | None" = None) -> dict:
    """Registered bench entry point (``repro bench run``)."""
    p = merge_params(PARAMS, params)
    return {
        "distance_matrix": bench_distance_matrix(
            p["dist_rows"], p["seed"], p["repeats"]
        ),
        "lsh_votes": bench_lsh_votes(
            p["lsh_n_images"], p["lsh_n_queries"], p["seed"], p["repeats"]
        ),
        "similarity_batches": {
            str(size): row
            for size, row in bench_similarity_batches(
                p["batch_sizes"], p["n_descriptors"], p["seed"], p["repeats"]
            ).items()
        },
        "profiler_overhead": bench_profiler_overhead(
            p["dist_rows"], p["seed"], p["profile_repeats"], p["profile_passes"]
        ),
        "journal_overhead": bench_journal_overhead(
            p["journal_devices"],
            p["journal_rounds"],
            p["journal_batch"],
            p["seed"],
            p["journal_repeats"],
        ),
    }


def test_kernels(benchmark, emit):
    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            "hamming distance matrix",
            f"{data['distance_matrix']['legacy_seconds']:.4f} s",
            f"{data['distance_matrix']['kernel_seconds']:.4f} s",
            f"{data['distance_matrix']['speedup']:.1f}x",
        ],
        [
            "lsh vote aggregation",
            f"{data['lsh_votes']['legacy_seconds']:.4f} s",
            f"{data['lsh_votes']['kernel_seconds']:.4f} s",
            f"{data['lsh_votes']['speedup']:.1f}x",
        ],
    ]
    for size, row in sorted(
        data["similarity_batches"].items(), key=lambda item: int(item[0])
    ):
        rows.append(
            [
                f"ssmm similarity, batch {size}",
                f"{row['legacy_seconds']:.4f} s",
                f"{row['kernel_seconds']:.4f} s",
                f"{row['speedup']:.1f}x",
            ]
        )
    overhead = data["profiler_overhead"]
    rows.append(
        [
            "sampling profiler overhead",
            f"{overhead['bare_seconds']:.4f} s",
            f"{overhead['profiled_seconds']:.4f} s",
            f"{overhead['overhead_fraction'] * 100:+.1f}%",
        ]
    )
    journal = data["journal_overhead"]
    rows.append(
        [
            f"decision journal overhead ({journal['events']} events)",
            f"{journal['bare_seconds']:.4f} s",
            f"{journal['journaled_seconds']:.4f} s",
            f"{journal['overhead_fraction'] * 100:+.1f}%",
        ]
    )
    emit(
        "Kernel microbenchmarks — repro.kernels vs. the pre-kernel hot "
        "paths (outputs asserted byte-identical per case)",
        format_table(["case", "legacy", "kernel", "speedup"], rows),
    )
    # The acceptance floors: every outcome above is asserted identical
    # inside run(), so these gates measure pure evaluation strategy.
    largest = max(data["similarity_batches"], key=int)
    assert (
        data["similarity_batches"][largest]["speedup"] >= MIN_SIMILARITY_SPEEDUP
    ), f"similarity kernel below {MIN_SIMILARITY_SPEEDUP}x on batch {largest}"
    assert (
        data["lsh_votes"]["speedup"] >= MIN_VOTING_SPEEDUP
    ), f"LSH voting kernel below {MIN_VOTING_SPEEDUP}x"
    assert overhead["overhead_fraction"] <= MAX_PROFILER_OVERHEAD, (
        f"profiler overhead {overhead['overhead_fraction']:.1%} exceeds "
        f"the {MAX_PROFILER_OVERHEAD:.0%} budget"
    )
    assert journal["overhead_fraction"] <= MAX_JOURNAL_OVERHEAD, (
        f"journal overhead {journal['overhead_fraction']:.1%} exceeds "
        f"the {MAX_JOURNAL_OVERHEAD:.0%} budget"
    )
