"""Table I — space overheads of image features.

Paper protocol (Section IV-B2): extract SIFT, PCA-SIFT, and ORB (BEES)
features for the Kentucky and Paris imagesets and compare the
serialized payload, normalized to SIFT.

We measure per-image feature densities on the synthetic datasets and
extrapolate to each dataset's photographic resolution and image count
(the paper's real datasets: Kentucky 10,200 images at 640x480, Paris
501,356 at ~1 MP), with ORB capped at its 500-feature budget.

Expected shape: SIFT enormous (comparable to the images themselves),
PCA-SIFT ~25%, BEES/ORB one-to-two orders below SIFT.
"""

from __future__ import annotations

from repro.analysis.reporting import format_bytes, format_percent, format_table
from repro.datasets.kentucky import SyntheticKentucky
from repro.features.orb import OrbExtractor
from repro.features.pca_sift import PcaSiftExtractor
from repro.features.sift import SiftExtractor
from repro.features.sizes import nominal_feature_count, space_overheads

from common import merge_params

SAMPLE_IMAGES = 10

DATASETS = {
    # name: (n_images, photo pixels, avg image bytes)
    "Kentucky": (10_200, 640 * 480, 700 * 1024),
    "Paris": (501_356, 1024 * 768, 756 * 1024),
}

PARAMS = {"sample_images": SAMPLE_IMAGES}
QUICK_PARAMS = {"sample_images": 4}


def run(params: "dict | None" = None) -> dict:
    """Registered bench entry point (``repro bench run``)."""
    p = merge_params(PARAMS, params)
    table = run_table1(sample_images=p["sample_images"])
    return {
        "space": {
            name: {
                "image_bytes_total": int(data["image_bytes_total"]),
                "features": {
                    row.kind: {
                        "total_bytes": int(row.total_bytes),
                        "fraction_of_sift": float(row.fraction_of_sift),
                    }
                    for row in data["rows"]
                },
            }
            for name, data in table.items()
        }
    }


def run_table1(sample_images: int = SAMPLE_IMAGES):
    dataset = SyntheticKentucky(n_groups=sample_images)
    samples = dataset.query_images()
    extractors = {
        "sift": SiftExtractor(),
        "pca-sift": PcaSiftExtractor(),
        "orb": OrbExtractor(),
    }
    densities = {}
    for kind, extractor in extractors.items():
        features = [extractor.extract(image) for image in samples]
        densities[kind] = sum(len(f) for f in features) / sum(
            image.pixels for image in samples
        )

    table = {}
    for name, (n_images, pixels, image_bytes) in DATASETS.items():
        counts = {
            kind: nominal_feature_count(
                int(round(density * pixels)), pixels, pixels
            )
            for kind, density in densities.items()
        }
        rows = space_overheads(counts, n_images)
        table[name] = {
            "rows": rows,
            "image_bytes_total": n_images * image_bytes,
        }
    return table


def test_table1_space_overhead(benchmark, emit):
    table = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    display = []
    for name, data in table.items():
        by_kind = {row.kind: row for row in data["rows"]}
        display.append(
            [
                name,
                format_bytes(data["image_bytes_total"]),
                format_bytes(by_kind["sift"].total_bytes),
                f"{format_bytes(by_kind['pca-sift'].total_bytes)} "
                f"({format_percent(by_kind['pca-sift'].fraction_of_sift)})",
                f"{format_bytes(by_kind['orb'].total_bytes)} "
                f"({format_percent(by_kind['orb'].fraction_of_sift)})",
            ]
        )
    emit(
        "Table I — space overheads of image features",
        format_table(["imageset", "images", "SIFT", "PCA-SIFT", "BEES (ORB)"], display),
    )
    for name, data in table.items():
        by_kind = {row.kind: row for row in data["rows"]}
        # PCA-SIFT ~25-30% of SIFT (the 128 -> 36 projection).
        assert 0.15 < by_kind["pca-sift"].fraction_of_sift < 0.4
        # BEES at least an order of magnitude below SIFT (paper: 4.46%
        # on Kentucky, 1.76% on Paris).
        assert by_kind["orb"].fraction_of_sift < 0.1
        # SIFT's payload is a substantial fraction of the images
        # themselves (larger than them on Paris, per the paper).
        assert by_kind["sift"].total_bytes > 0.2 * data["image_bytes_total"]
