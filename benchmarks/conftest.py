"""Shared benchmark fixtures.

Every bench regenerates one table/figure of the paper's evaluation and
prints its rows.  The ``emit`` fixture bypasses pytest's capture (so the
figures appear on the terminal even without ``-s``) and appends every
figure to ``benchmarks/results.txt`` for the record.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis.reporting import print_figure

RESULTS_PATH = pathlib.Path(__file__).parent / "results.txt"


@pytest.fixture()
def emit(capsys):
    """Print a figure block to the real terminal and the results file."""

    def _emit(title: str, body: str) -> None:
        with capsys.disabled():
            print_figure(title, body)
        with RESULTS_PATH.open("a") as handle:
            handle.write(f"\n== {title} ==\n{body}\n")

    return _emit


def pytest_sessionstart(session):
    """Start each bench session with a fresh results file."""
    if RESULTS_PATH.exists():
        RESULTS_PATH.unlink()
