"""Shared benchmark fixtures.

Every bench regenerates one table/figure of the paper's evaluation and
prints its rows.  The ``emit`` fixture bypasses pytest's capture (so the
figures appear on the terminal even without ``-s``) and appends every
figure to ``benchmarks/results.txt`` for the record.
"""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

RESULTS_PATH = pathlib.Path(__file__).parent / "results.txt"

#: The benches need the library (and numpy underneath it) plus the
#: optional ``pytest-benchmark`` plugin for their ``benchmark`` fixture.
#: When any of those is missing — a docs-only CI job, a minimal install —
#: skip collection cleanly instead of erroring out per file.
_MISSING = [
    name
    for name in ("numpy", "repro", "pytest_benchmark")
    if importlib.util.find_spec(name) is None
]

if _MISSING:
    collect_ignore_glob = ["bench_*.py", "common.py"]

    def print_figure(title: str, body: str) -> None:  # pragma: no cover
        raise pytest.UsageError(
            f"benchmarks need missing optional deps: {', '.join(_MISSING)}"
        )

else:
    from repro.analysis.reporting import print_figure


@pytest.fixture()
def emit(capsys):
    """Print a figure block to the real terminal and the results file."""

    def _emit(title: str, body: str) -> None:
        with capsys.disabled():
            print_figure(title, body)
        with RESULTS_PATH.open("a") as handle:
            handle.write(f"\n== {title} ==\n{body}\n")

    return _emit


def pytest_sessionstart(session):
    """Start each bench session with a fresh results file."""
    if RESULTS_PATH.exists():
        RESULTS_PATH.unlink()
