"""Shared benchmark fixtures.

Every bench regenerates one table/figure of the paper's evaluation and
prints its rows.  The ``emit`` fixture bypasses pytest's capture (so the
figures appear on the terminal even without ``-s``) and appends every
figure to a per-run file under ``benchmarks/results/`` (gitignored) —
runs no longer clobber each other's output in place.
"""

from __future__ import annotations

import importlib.util
import time

import pytest

#: The benches need the library (and numpy underneath it) plus the
#: optional ``pytest-benchmark`` plugin for their ``benchmark`` fixture.
#: When any of those is missing — a docs-only CI job, a minimal install —
#: skip collection cleanly instead of erroring out per file.
_MISSING = [
    name
    for name in ("numpy", "repro", "pytest_benchmark")
    if importlib.util.find_spec(name) is None
]

if _MISSING:
    collect_ignore_glob = ["bench_*.py", "common.py"]

    def print_figure(title: str, body: str) -> None:  # pragma: no cover
        raise pytest.UsageError(
            f"benchmarks need missing optional deps: {', '.join(_MISSING)}"
        )

    def save_result(title: str, body: str, filename: str):  # pragma: no cover
        raise pytest.UsageError(
            f"benchmarks need missing optional deps: {', '.join(_MISSING)}"
        )

else:
    from repro.analysis.reporting import print_figure

    from common import save_result

#: One results file per pytest session, stamped at collection time.
_SESSION_FILENAME = time.strftime("results-%Y%m%d-%H%M%S.txt")


@pytest.fixture()
def emit(capsys):
    """Print a figure block to the real terminal and the results file."""

    def _emit(title: str, body: str) -> None:
        with capsys.disabled():
            print_figure(title, body)
        save_result(title, body, filename=_SESSION_FILENAME)

    return _emit
