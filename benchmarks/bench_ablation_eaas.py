"""Ablation — the three energy-aware adaptive schemes, one at a time.

BEES carries three EAAS knobs: EAC (bitmap compression in AFE), EDR
(the detection threshold in ARD), and EAU (resolution compression in
AIU).  The paper only evaluates all-on (BEES) vs. all-off (BEES-EA);
this ablation pins each knob individually at a low battery level to
attribute the savings.

Expected shape: every variant costs more than full BEES at low Ebat;
EAU is the biggest single lever (it shrinks the dominant image-upload
bytes), EAC the smallest in joules but the one protecting extraction.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.core.client import BeesScheme
from repro.core.config import BeesConfig
from repro.core.policies import (
    LinearPolicy,
    eac_policy,
    eau_policy,
    edr_policy,
    ssmm_cut_policy,
)
from repro.sim.device import Smartphone
from repro.sim.session import build_server

from common import BATCH_SIZE, IN_BATCH_SIMILAR, disaster_batch, merge_params, report_summary

EBAT = 0.1
REDUNDANCY = 0.25

PARAMS = {"n_images": BATCH_SIZE, "n_inbatch_similar": IN_BATCH_SIMILAR}
QUICK_PARAMS = {"n_images": 12, "n_inbatch_similar": 2}


def run(params: "dict | None" = None) -> dict:
    """Registered bench entry point (``repro bench run``)."""
    p = merge_params(PARAMS, params)
    results = run_ablation(
        n_images=p["n_images"], n_inbatch_similar=p["n_inbatch_similar"]
    )
    return {
        "variants": {name: report_summary(report) for name, report in results.items()}
    }


def _variants():
    """BEES configurations with one adaptive knob disabled each."""
    fixed_eac = LinearPolicy.fixed(eac_policy()(1.0))
    fixed_edr = LinearPolicy.fixed(edr_policy()(1.0))
    fixed_cut = LinearPolicy.fixed(ssmm_cut_policy()(1.0))
    fixed_eau = LinearPolicy.fixed(eau_policy()(1.0))
    return {
        "BEES (all adaptive)": BeesConfig(),
        "no EAC": BeesConfig(eac=fixed_eac),
        "no EDR": BeesConfig(edr=fixed_edr, ssmm_cut=fixed_cut),
        "no EAU": BeesConfig(eau=fixed_eau),
        "BEES-EA (none)": BeesConfig.ea_disabled(),
    }


def run_ablation(
    n_images: int = BATCH_SIZE, n_inbatch_similar: int = IN_BATCH_SIMILAR
):
    data, batch = disaster_batch(
        seed=6, n_images=n_images, n_inbatch_similar=n_inbatch_similar
    )
    partners = data.cross_batch_partners(batch, REDUNDANCY, seed=106)
    results = {}
    for name, config in _variants().items():
        scheme = BeesScheme(config=config)
        device = Smartphone()
        device.battery.recharge(EBAT)
        report = scheme.process_batch(device, build_server(scheme, partners), batch)
        results[name] = report
    return results


def test_ablation_eaas(benchmark, emit):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    emit(
        f"Ablation — EAAS knobs at Ebat = {int(EBAT * 100)}%",
        format_table(
            ["variant", "energy (J)", "bytes sent (MB)", "uploaded"],
            [
                [
                    name,
                    f"{report.total_energy_joules:.1f}",
                    f"{report.sent_bytes / 1024**2:.2f}",
                    report.n_uploaded,
                ]
                for name, report in results.items()
            ],
        ),
    )
    full = results["BEES (all adaptive)"].total_energy_joules
    # Disabling any knob costs energy at low battery.
    for name in ("no EAC", "no EDR", "no EAU", "BEES-EA (none)"):
        assert results[name].total_energy_joules >= full * 0.98
    # All-off is (within channel noise) the most expensive variant.
    most = max(report.total_energy_joules for report in results.values())
    assert results["BEES-EA (none)"].total_energy_joules >= 0.98 * most
    # EAU is the single biggest lever: removing it costs more than
    # removing EAC.
    assert results["no EAU"].total_energy_joules > results["no EAC"].total_energy_joules
