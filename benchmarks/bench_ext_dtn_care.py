"""Extension — CARE-style content-aware dropping in a DTN.

The paper's related work (Section V) covers the DTN family: PhotoNet
and CARE eliminate redundant images inside a delay-tolerant network
where relay buffers are scarce.  This bench reproduces CARE's core
result on our substrate: under buffer pressure, a drop policy that
evicts from the most-similar pair (content-aware) delivers more
*distinct scenes* to the gateway than content-blind FIFO dropping —
the same "information per transmitted byte" argument BEES makes at the
source.

Protocol: photographers shoot one photo per round (burst duplicates of
a scene come from the *same* node — burst shooting is local), relays
meet epidemically with 3-image buffers, and a gateway drains ~10% of
nodes per round.  Scored over several contact-process seeds.

A second sweep makes the contacts *lossy*
(:class:`~repro.network.ContactLoss`): forwarded copies vanish or
arrive corrupted, and the gateway's replica reconciliation (any intact
epidemic copy repairs the image) decides how much *intact* information
survives as the loss rate climbs.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.analysis.reporting import format_table
from repro.datasets.disaster import DisasterDataset
from repro.dtn import CareDropPolicy, CarriedImage, EpidemicSimulation, FifoDropPolicy
from repro.features.orb import OrbExtractor
from repro.imaging.synth import SceneGenerator
from repro.network import ContactLoss

from common import merge_params

N_IMAGES = 30
N_INBATCH = 12  # heavy duplication: buffer pressure must matter
N_NODES = 5
CAPACITY = 3
ROUNDS = 40
GATEWAY_PROBABILITY = 0.1
SEEDS = tuple(range(6))

#: Contact drop rates swept by the lossy-contact comparison; the
#: corruption rate rides along at half the drop rate.
CONTACT_LOSS_LEVELS = (0.0, 0.2, 0.4)

PARAMS = {
    "n_images": N_IMAGES,
    "n_inbatch_similar": N_INBATCH,
    "n_seeds": len(SEEDS),
    "rounds": ROUNDS,
    "contact_loss_levels": list(CONTACT_LOSS_LEVELS),
}
QUICK_PARAMS = {
    "n_images": 16,
    "n_inbatch_similar": 6,
    "n_seeds": 2,
    "rounds": 25,
    "contact_loss_levels": [0.0, 0.4],
}


def run(params: "dict | None" = None) -> dict:
    """Registered bench entry point (``repro bench run``)."""
    p = merge_params(PARAMS, params)
    loss_levels = p.pop("contact_loss_levels")
    data = run_dtn_comparison(**p)
    loss = run_contact_loss_sweep(
        loss_levels=loss_levels,
        n_images=p["n_images"],
        n_inbatch_similar=p["n_inbatch_similar"],
        n_seeds=p["n_seeds"],
        rounds=p["rounds"],
    )
    return {
        "n_scenes": int(data["n_scenes"]),
        "policies": {
            name: [
                {"unique_groups": int(g), "delivered": int(d), "transmissions": int(t)}
                for g, d, t in per_seed
            ]
            for name, per_seed in data["results"].items()
        },
        "contact_loss": {
            str(level): cell for level, cell in loss.items()
        },
    }


def _node_queues(n_images: int = N_IMAGES, n_inbatch_similar: int = N_INBATCH):
    """Per-node photo queues with bursts co-located at one node."""
    data = DisasterDataset(generator=SceneGenerator(height=72, width=96))
    extractor = OrbExtractor()
    batch = data.make_batch(
        n_images=n_images, n_inbatch_similar=n_inbatch_similar, seed=9
    )
    by_scene = defaultdict(list)
    for image in batch:
        by_scene[image.group_id].append(
            CarriedImage(image=image, features=extractor.extract(image))
        )
    queues = defaultdict(list)
    scenes = sorted(by_scene)
    for index, scene in enumerate(scenes):
        queues[index % N_NODES].extend(by_scene[scene])
    return dict(queues), len(scenes)


def run_dtn_comparison(
    n_images: int = N_IMAGES,
    n_inbatch_similar: int = N_INBATCH,
    n_seeds: int = len(SEEDS),
    rounds: int = ROUNDS,
):
    queues, n_scenes = _node_queues(n_images, n_inbatch_similar)
    results = {}
    for policy_factory in (FifoDropPolicy, CareDropPolicy):
        per_seed = []
        for seed in range(n_seeds):
            sim = EpidemicSimulation(
                n_nodes=N_NODES,
                buffer_capacity=CAPACITY,
                policy_factory=policy_factory,
                contact_bandwidth=2,
                contacts_per_round=3,
                gateway_probability=GATEWAY_PROBABILITY,
                seed=seed,
            )
            pending = {node: list(queue) for node, queue in queues.items()}
            for _ in range(rounds):
                for node, queue in pending.items():
                    if queue:
                        sim.inject(node, queue.pop(0))
                sim.step()
            report = sim.run(0)
            per_seed.append(
                (report.n_unique_groups, report.n_delivered, report.transmissions)
            )
        results[policy_factory().name] = per_seed
    return {"n_scenes": n_scenes, "results": results}


def run_contact_loss_sweep(
    loss_levels=CONTACT_LOSS_LEVELS,
    n_images: int = N_IMAGES,
    n_inbatch_similar: int = N_INBATCH,
    n_seeds: int = len(SEEDS),
    rounds: int = ROUNDS,
):
    """CARE delivery vs contact loss, with gateway reconciliation.

    Per loss level (drop rate ``level``, corrupt rate ``level / 2``),
    averaged over contact seeds: how many *intact* distinct scenes
    reach the gateway, how many corrupt copies a clean epidemic replica
    repaired, and how many forwards the contacts ate.
    """
    queues, n_scenes = _node_queues(n_images, n_inbatch_similar)
    results = {}
    for level in loss_levels:
        per_seed = []
        for seed in range(n_seeds):
            sim = EpidemicSimulation(
                n_nodes=N_NODES,
                buffer_capacity=CAPACITY,
                policy_factory=CareDropPolicy,
                contact_bandwidth=2,
                contacts_per_round=3,
                gateway_probability=GATEWAY_PROBABILITY,
                seed=seed,
                loss=(
                    ContactLoss(drop_rate=level, corrupt_rate=level / 2)
                    if level > 0
                    else None
                ),
            )
            pending = {node: list(queue) for node, queue in queues.items()}
            for _ in range(rounds):
                for node, queue in pending.items():
                    if queue:
                        sim.inject(node, queue.pop(0))
                sim.step()
            report = sim.run(0)
            per_seed.append(
                {
                    "intact_groups": report.n_intact_groups,
                    "unique_groups": report.n_unique_groups,
                    "repaired": report.repaired,
                    "corrupt": len(report.corrupt_ids),
                    "dropped": sim.dropped_transmissions,
                }
            )
        results[level] = {
            "n_scenes": n_scenes,
            "mean_intact_groups": float(
                np.mean([s["intact_groups"] for s in per_seed])
            ),
            "mean_unique_groups": float(
                np.mean([s["unique_groups"] for s in per_seed])
            ),
            "total_repaired": int(sum(s["repaired"] for s in per_seed)),
            "total_corrupt": int(sum(s["corrupt"] for s in per_seed)),
            "total_dropped": int(sum(s["dropped"] for s in per_seed)),
        }
    return results


def test_ext_dtn_care(benchmark, emit):
    data = benchmark.pedantic(run_dtn_comparison, rounds=1, iterations=1)
    rows = []
    means = {}
    for name, per_seed in data["results"].items():
        groups = float(np.mean([g for g, _, _ in per_seed]))
        delivered = float(np.mean([d for _, d, _ in per_seed]))
        transmissions = float(np.mean([t for _, _, t in per_seed]))
        means[name] = groups
        rows.append(
            [
                name,
                f"{groups:.1f} / {data['n_scenes']}",
                f"{delivered:.1f}",
                f"{transmissions:.0f}",
            ]
        )
    emit(
        "Extension — DTN delivery: CARE vs. FIFO drop "
        f"(buffers of {CAPACITY}, {N_IMAGES} images / {data['n_scenes']} scenes)",
        format_table(
            ["drop policy", "distinct scenes delivered", "images delivered", "transmissions"],
            rows,
        ),
    )
    # The CARE result: clearly more distinct information end-to-end.
    assert means["care"] > 1.05 * means["fifo"]


def test_ext_dtn_care_loss(benchmark, emit):
    results = benchmark.pedantic(run_contact_loss_sweep, rounds=1, iterations=1)
    rows = [
        [
            f"{level:.2f}",
            f"{cell['mean_intact_groups']:.1f} / {cell['n_scenes']}",
            f"{cell['mean_unique_groups']:.1f}",
            str(cell["total_repaired"]),
            str(cell["total_corrupt"]),
            str(cell["total_dropped"]),
        ]
        for level, cell in results.items()
    ]
    emit(
        "Extension — CARE delivery over lossy contacts "
        f"(corrupt rate = drop rate / 2, {len(SEEDS)} seeds)",
        format_table(
            [
                "drop rate",
                "intact scenes",
                "delivered scenes",
                "repaired",
                "corrupt",
                "dropped forwards",
            ],
            rows,
        ),
    )
    ordered = [results[level] for level in CONTACT_LOSS_LEVELS]
    clean, worst = ordered[0], ordered[-1]
    # Zero loss: nothing dropped, nothing corrupt, intact == delivered.
    assert clean["total_dropped"] == 0
    assert clean["total_corrupt"] == 0
    assert clean["total_repaired"] == 0
    assert clean["mean_intact_groups"] == clean["mean_unique_groups"]
    # Loss eats forwards, and intact coverage degrades with it.
    assert worst["total_dropped"] > 0
    assert worst["mean_intact_groups"] < clean["mean_intact_groups"]
    # Epidemic replication earns its bytes: at least some corrupt copies
    # are repaired by an intact duplicate across the sweep.
    assert sum(cell["total_repaired"] for cell in ordered) > 0
