"""Ablation — SSMM's adaptive budget vs. fixed budgets.

The paper argues a fixed selection budget (as in prior image-collection
summarization work) is "inefficient in our application situation, since
the budget should be the number of non-redundant images which is
different from batch to batch".  This bench quantifies that: batches
with different redundancy structure are summarized under the adaptive
component-count rule and under fixed budgets, scoring each summary by
distinct-scenes kept (information) and images uploaded (cost).

Expected shape: the adaptive rule keeps exactly one representative per
distinct scene on every batch; any fixed budget either wastes uploads
on duplicate-heavy batches or drops unique content on diverse ones.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.core.ssmm import select_unique_subset, similarity_matrix
from repro.core.config import EDR_THRESHOLD_MAX
from repro.datasets.disaster import DisasterDataset
from repro.features.orb import OrbExtractor

from common import merge_params

BATCH = 24
CUT = EDR_THRESHOLD_MAX
#: (label, n_inbatch_similar) — batches from diverse to duplicate-heavy.
BATCH_SHAPES = [("diverse", 0), ("mixed", 6), ("duplicate-heavy", 12)]
FIXED_BUDGETS = (6, 12, 18)

PARAMS = {"batch_size": BATCH}
QUICK_PARAMS = {"batch_size": 12}


def run(params: "dict | None" = None) -> dict:
    """Registered bench entry point (``repro bench run``)."""
    p = merge_params(PARAMS, params)
    rows = run_ablation(batch_size=p["batch_size"])
    return {
        "batches": [
            {
                "batch": label,
                "distinct_scenes": int(distinct),
                "rules": {
                    rule: {"uploads": int(uploads), "scenes_kept": int(kept)}
                    for rule, (uploads, kept) in entries.items()
                },
            }
            for label, distinct, entries in rows
        ]
    }


def run_ablation(batch_size: int = BATCH):
    data = DisasterDataset()
    extractor = OrbExtractor()
    rows = []
    for label, n_similar in BATCH_SHAPES:
        batch = data.make_batch(
            n_images=batch_size,
            n_inbatch_similar=min(n_similar, batch_size // 2),
            seed=7,
            scene_offset=n_similar * 500,
        )
        features = [extractor.extract(image) for image in batch]
        weights = similarity_matrix(features)
        distinct_scenes = len({image.group_id for image in batch})

        def score(budget):
            result = select_unique_subset(
                features, CUT, budget=budget, weights=weights
            )
            kept_scenes = len({batch[i].group_id for i in result.selected})
            return len(result.selected), kept_scenes

        entries = {"adaptive": score("components")}
        for budget in FIXED_BUDGETS:
            entries[f"fixed-{budget}"] = score(budget)
        rows.append((label, distinct_scenes, entries))
    return rows


def test_ablation_ssmm_budget(benchmark, emit):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    table = []
    for label, distinct, entries in rows:
        for rule, (uploads, kept) in entries.items():
            table.append([label, distinct, rule, uploads, kept])
    emit(
        "Ablation — SSMM adaptive budget vs. fixed budgets",
        format_table(
            ["batch", "distinct scenes", "budget rule", "uploads", "scenes kept"],
            table,
        ),
    )
    for label, distinct, entries in rows:
        uploads, kept = entries["adaptive"]
        # The adaptive rule keeps (essentially) one image per scene.
        assert kept >= 0.9 * distinct
        assert uploads <= distinct + 1
    # A small fixed budget drops content on the diverse batch...
    diverse = rows[0][2]
    assert diverse["fixed-6"][1] < rows[0][1]
    # ... while a large fixed budget over-uploads on the duplicate-heavy
    # batch relative to the adaptive rule.
    heavy = rows[2][2]
    assert heavy["fixed-18"][0] > heavy["adaptive"][0]
