"""Figure 5 — bandwidth overhead of quality & resolution compression.

Paper protocol (Section III-C): batches of images are compressed at a
sweep of proportions with JPEG quality compression (5a, with SSIM
quality scores) and resolution compression (5b), then uploaded; the
figure reports the bandwidth each proportion costs.

Expected shape: bytes fall monotonically with both knobs; SSIM stays
high until ~0.85 and drops sharply beyond — the reason BEES pins the
quality proportion there.
"""

from __future__ import annotations

from repro.analysis.reporting import format_bytes, format_table
from repro.core.config import DEFAULT_QUALITY_PROPORTION, FIT_PROPORTIONS
from repro.datasets.disaster import DisasterDataset
from repro.imaging.jpeg import compress_quality
from repro.imaging.resolution import compress_resolution
from repro.imaging.ssim import ssim

from common import merge_params

N_IMAGES = 20  # per series; the paper plots 100/200/300
QUALITY_PROPORTIONS = list(FIT_PROPORTIONS)
RESOLUTION_PROPORTIONS = [0.0, 0.2, 0.4, 0.6, 0.8]

PARAMS = {"n_images": N_IMAGES}
QUICK_PARAMS = {"n_images": 8}


def run(params: "dict | None" = None) -> dict:
    """Registered bench entry point (``repro bench run``)."""
    p = merge_params(PARAMS, params)
    data = run_figure5(n_images=p["n_images"])
    return {
        "baseline_bytes": data["baseline"],
        "quality": [
            {"proportion": prop, "bytes": total, "ssim": quality}
            for prop, total, quality in data["quality"]
        ],
        "resolution": [
            {"proportion": prop, "bytes": total}
            for prop, total in data["resolution"]
        ],
    }


def run_figure5(n_images: int = N_IMAGES):
    images = DisasterDataset().make_batch(n_images=n_images, n_inbatch_similar=0)
    baseline = sum(image.nominal_bytes for image in images)

    quality_rows = []
    for proportion in QUALITY_PROPORTIONS:
        compressed = [compress_quality(image, proportion) for image in images]
        total = sum(image.nominal_bytes for image in compressed)
        mean_ssim = sum(
            ssim(original, new) for original, new in zip(images, compressed)
        ) / len(images)
        quality_rows.append((proportion, total, mean_ssim))

    resolution_rows = []
    for proportion in RESOLUTION_PROPORTIONS:
        total = sum(
            compress_resolution(image, proportion).nominal_bytes for image in images
        )
        resolution_rows.append((proportion, total))

    return {"baseline": baseline, "quality": quality_rows, "resolution": resolution_rows}


def test_fig5_compression_bandwidth(benchmark, emit):
    data = benchmark.pedantic(run_figure5, rounds=1, iterations=1)
    baseline = data["baseline"]
    emit(
        "Figure 5(a) — quality compression: bandwidth & SSIM",
        format_table(
            ["proportion", "bandwidth", "of original", "mean SSIM"],
            [
                [p, format_bytes(total), f"{total / baseline:.2f}", f"{quality:.3f}"]
                for p, total, quality in data["quality"]
            ],
        ),
    )
    emit(
        "Figure 5(b) — resolution compression: bandwidth",
        format_table(
            ["proportion", "bandwidth", "of original"],
            [
                [p, format_bytes(total), f"{total / baseline:.2f}"]
                for p, total in data["resolution"]
            ],
        ),
    )
    quality = {p: (total, s) for p, total, s in data["quality"]}
    # Bytes decrease monotonically with the quality proportion.
    totals = [total for _, total, _ in data["quality"]]
    assert totals == sorted(totals, reverse=True)
    # SSIM stays decent at the fixed 0.85 and degrades beyond.
    assert quality[DEFAULT_QUALITY_PROPORTION][1] > 0.8
    assert quality[0.95][1] < quality[DEFAULT_QUALITY_PROPORTION][1]
    # Quality compression at 0.85 removes a large share of the bytes.
    assert quality[DEFAULT_QUALITY_PROPORTION][0] < 0.6 * baseline
    # Resolution compression's quadratic savings.
    resolution = dict(data["resolution"])
    assert resolution[0.8] < 0.15 * baseline
    res_totals = [total for _, total in data["resolution"]]
    assert res_totals == sorted(res_totals, reverse=True)
