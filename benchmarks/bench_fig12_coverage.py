"""Figure 12 — situation-awareness coverage on the Paris imageset.

Paper protocol (Section IV-B6): a geotagged test subset (165,539
images, 58,818 unique locations) is split over 25 phones; each uploads
40-image groups every 20 minutes into the shared servers until every
battery dies; coverage is the number of unique locations the servers
received.  Paper result: BEES uploads 18.8% more images and covers
97.1% more unique locations than Direct Upload.

Scaled for the bench: 600 images over 150 locations, 3 phones,
15-image groups, a slice of the real battery.
"""

from __future__ import annotations

from repro.analysis.coverage import summarize_geotags
from repro.analysis.reporting import format_table
from repro.baselines import DirectUpload
from repro.core.client import BeesScheme
from repro.datasets.paris import SyntheticParis
from repro.sim.coveragesim import CoverageExperiment

from common import FAST_GENERATOR, merge_params

N_IMAGES = 600
N_LOCATIONS = 150
N_PHONES = 3
GROUP_SIZE = 15
CAPACITY_FRACTION = 0.02

PARAMS = {
    "n_images": N_IMAGES,
    "n_locations": N_LOCATIONS,
    "n_phones": N_PHONES,
    "group_size": GROUP_SIZE,
    "capacity_fraction": CAPACITY_FRACTION,
}
QUICK_PARAMS = {
    "n_images": 180,
    "n_locations": 50,
    "n_phones": 2,
    "group_size": 10,
    "capacity_fraction": 0.012,
}


def run(params: "dict | None" = None) -> dict:
    """Registered bench entry point (``repro bench run``)."""
    p = merge_params(PARAMS, params)
    data = run_figure12(**p)
    return {
        "dataset": {
            "n_images": int(data["dataset"].n_images),
            "n_unique_locations": int(data["dataset"].n_unique_locations),
        },
        "coverage": {
            name: {
                "images_uploaded": int(result.images_uploaded),
                "locations_covered": int(result.locations_covered),
                "locations_per_image": float(result.locations_per_image),
            }
            for name, result in data["results"].items()
        },
    }


def run_figure12(
    n_images: int = N_IMAGES,
    n_locations: int = N_LOCATIONS,
    n_phones: int = N_PHONES,
    group_size: int = GROUP_SIZE,
    capacity_fraction: float = CAPACITY_FRACTION,
):
    dataset = SyntheticParis(
        n_images=n_images, n_locations=n_locations, seed=5, generator=FAST_GENERATOR
    )
    experiment = CoverageExperiment(
        dataset=dataset,
        n_phones=n_phones,
        group_size=group_size,
        interval_seconds=300.0,
        capacity_fraction=capacity_fraction,
    )
    test_summary = summarize_geotags(
        [dataset.location(i) for i in range(n_locations) for _ in range(int(dataset.location_counts[i]))]
    )
    results = {}
    for scheme in (DirectUpload(), BeesScheme()):
        results[scheme.name] = experiment.run(scheme)
    return {"dataset": test_summary, "results": results}


def test_fig12_coverage(benchmark, emit):
    data = benchmark.pedantic(run_figure12, rounds=1, iterations=1)
    dataset = data["dataset"]
    results = data["results"]
    rows = [
        [
            "test imageset",
            dataset.n_images,
            dataset.n_unique_locations,
            "-",
        ]
    ]
    for name, result in results.items():
        rows.append(
            [
                name,
                result.images_uploaded,
                result.locations_covered,
                f"{result.locations_per_image:.3f}",
            ]
        )
    emit(
        "Figure 12 — coverage (unique locations received by the servers)",
        format_table(["collection", "images", "unique locations", "loc/image"], rows),
    )

    direct = results["Direct Upload"]
    bees = results["BEES"]
    # The headline: BEES covers far more unique locations on the same
    # batteries (paper: +97.1%).
    assert bees.locations_covered > 1.3 * direct.locations_covered
    # ... with much better information efficiency per uploaded image.
    assert bees.locations_per_image > 1.2 * direct.locations_per_image
    # Sanity: both are bounded by the dataset.
    for result in results.values():
        assert result.locations_covered <= dataset.n_unique_locations
        assert result.images_uploaded <= dataset.n_images
