"""Figure 11 — average per-image upload delay vs. network bitrate.

Paper protocol (Section IV-B5): the 100-image batch at 50% cross-batch
redundancy (10 in-batch similars), uploaded over channels with median
bitrates 128/256/512 Kbps; delay = feature extraction + feature upload
+ image upload time, averaged over the batch.

Expected shape: Direct slowest; SmartEye above MRC (PCA-SIFT
extraction time); BEES lowest by a wide margin — the paper reports
83.3-88.0% below Direct and 70.4-77.8% below MRC.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.network import KBPS, FluctuatingChannel, Uplink
from repro.sim.device import Smartphone
from repro.sim.session import build_server

from common import (
    BATCH_SIZE,
    IN_BATCH_SIMILAR,
    comparison_schemes,
    disaster_batch,
    merge_params,
)

BITRATES_KBPS = (128, 256, 512)
REDUNDANCY = 0.5

PARAMS = {
    "n_images": BATCH_SIZE,
    "n_inbatch_similar": IN_BATCH_SIMILAR,
    "bitrates_kbps": list(BITRATES_KBPS),
}
QUICK_PARAMS = {
    "n_images": 12,
    "n_inbatch_similar": 2,
    "bitrates_kbps": [128, 512],
}


def run(params: "dict | None" = None) -> dict:
    """Registered bench entry point (``repro bench run``)."""
    p = merge_params(PARAMS, params)
    results = run_figure11(
        bitrates_kbps=p["bitrates_kbps"],
        n_images=p["n_images"],
        n_inbatch_similar=p["n_inbatch_similar"],
    )
    return {
        "delay_seconds": {
            str(kbps): dict(per_scheme) for kbps, per_scheme in results.items()
        }
    }


def run_figure11(
    bitrates_kbps=BITRATES_KBPS,
    n_images: int = BATCH_SIZE,
    n_inbatch_similar: int = IN_BATCH_SIMILAR,
):
    data, batch = disaster_batch(
        seed=4, n_images=n_images, n_inbatch_similar=n_inbatch_similar
    )
    partners = data.cross_batch_partners(batch, REDUNDANCY, seed=104)
    results = {}
    for kbps in bitrates_kbps:
        per_scheme = {}
        for scheme in comparison_schemes():
            device = Smartphone(
                uplink=Uplink(channel=FluctuatingChannel(median_bps=kbps * KBPS))
            )
            server = build_server(scheme, partners)
            report = scheme.process_batch(device, server, batch)
            per_scheme[scheme.name] = report.average_image_seconds
        results[kbps] = per_scheme
    return results


def test_fig11_delay(benchmark, emit):
    results = benchmark.pedantic(run_figure11, rounds=1, iterations=1)
    scheme_names = list(next(iter(results.values())).keys())
    emit(
        "Figure 11 — average upload delay per image (seconds)",
        format_table(
            ["bitrate"] + scheme_names,
            [
                [f"{kbps} Kbps"] + [f"{results[kbps][name]:.2f}" for name in scheme_names]
                for kbps in BITRATES_KBPS
            ],
        ),
    )
    for kbps in BITRATES_KBPS:
        delays = results[kbps]
        # Direct is the slowest; BEES the fastest.
        assert max(delays.values()) == delays["Direct Upload"]
        assert min(delays.values()) == delays["BEES"]
        # SmartEye at or above MRC: PCA-SIFT extraction time.  At the
        # narrowest channel payload time drowns the extraction gap, so
        # allow a small inversion there.
        assert delays["SmartEye"] > 0.95 * delays["MRC"]
    for kbps in (256, 512):
        assert results[kbps]["SmartEye"] > results[kbps]["MRC"]
        # Headline: BEES more than 60% below Direct (paper: 83-88%)
        # and well below MRC (paper: 70-78%).
        assert delays["BEES"] < 0.4 * delays["Direct Upload"]
        assert delays["BEES"] < 0.6 * delays["MRC"]
    # Every scheme slows down as the channel narrows.
    for name in scheme_names:
        series = [results[kbps][name] for kbps in BITRATES_KBPS]
        assert series == sorted(series, reverse=True)
