"""Extension — fleet scaling: the sharded concurrent server vs. the
sequential reference.

Not a paper figure: the paper runs its server on "well-provisioned
machines" and never measures server-side concurrency.  This bench
characterises the `repro.fleet` runtime the reproduction adds on top —
N devices uploading through the network layer into the shared index —
along two axes:

* **correctness** — every concurrent sharded run is asserted
  byte-identical (kept/eliminated ids, bytes, joules) to the sequential
  single-index run of the same seed, via the fleet fingerprint;
* **throughput** — wall-clock seconds per configuration, reported as a
  speedup over the sequential reference.  The speedup is measured, not
  asserted: the device pipeline is CPU-bound numpy under the GIL, so
  thread-level gains materialise with multiple cores (and free-threaded
  builds), while a single-core CI box honestly reports ~1x.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.fleet import FleetRunner, assert_equivalent

from common import merge_params

#: (devices, shards) grid; each entry also runs a sequential reference.
CONFIGS = ((1, 1), (4, 2), (8, 4))
N_ROUNDS = 3
BATCH_SIZE = 6
SEED = 11
SCHEME = "bees"

PARAMS = {
    "configs": list(list(pair) for pair in CONFIGS),
    "n_rounds": N_ROUNDS,
    "batch_size": BATCH_SIZE,
    "seed": SEED,
    "scheme": SCHEME,
}
QUICK_PARAMS = {
    "configs": [[1, 1], [4, 2]],
    "n_rounds": 2,
    "batch_size": 4,
}


def run(params: "dict | None" = None) -> dict:
    """Registered bench entry point (``repro bench run``)."""
    p = merge_params(PARAMS, params)
    data = run_fleet_scaling(**p)
    return {
        "fingerprint": data["fingerprint"],
        "configs": {
            f"{devices}dev-{shards}shard": {
                "sequential_wall_seconds": float(row["sequential_wall_seconds"]),
                "concurrent_wall_seconds": float(row["concurrent_wall_seconds"]),
                "speedup": float(row["speedup"]),
                "uploaded": int(row["uploaded"]),
                "eliminated": int(row["eliminated"]),
                "bytes_sent": int(row["bytes_sent"]),
            }
            for (devices, shards), row in data["rows"].items()
        },
    }


def run_fleet_scaling(
    configs=CONFIGS,
    n_rounds: int = N_ROUNDS,
    batch_size: int = BATCH_SIZE,
    seed: int = SEED,
    scheme: str = SCHEME,
):
    rows = {}
    fingerprints = []
    for devices, shards in (tuple(pair) for pair in configs):
        common = dict(
            n_devices=devices,
            n_rounds=n_rounds,
            batch_size=batch_size,
            seed=seed,
            scheme=scheme,
        )
        reference = FleetRunner(mode="sequential", n_shards=1, **common).run()
        concurrent = FleetRunner(mode="concurrent", n_shards=shards, **common).run()
        # The contract under load: sharded + threaded must equal the
        # sequential single-index run, byte for byte.
        assert_equivalent(reference, concurrent)
        rows[(devices, shards)] = {
            "sequential_wall_seconds": reference.wall_seconds,
            "concurrent_wall_seconds": concurrent.wall_seconds,
            "speedup": reference.wall_seconds / max(concurrent.wall_seconds, 1e-9),
            "uploaded": concurrent.total_uploaded,
            "eliminated": concurrent.total_eliminated,
            "bytes_sent": concurrent.total_bytes,
        }
        fingerprints.append(concurrent.fingerprint())
    return {"rows": rows, "fingerprint": fingerprints[-1] if fingerprints else ""}


def test_fleet_scaling(benchmark, emit):
    data = benchmark.pedantic(run_fleet_scaling, rounds=1, iterations=1)
    rows = []
    for (devices, shards), row in data["rows"].items():
        rows.append(
            [
                f"{devices} dev / {shards} shard",
                f"{row['sequential_wall_seconds']:.2f} s",
                f"{row['concurrent_wall_seconds']:.2f} s",
                f"{row['speedup']:.2f}x",
                row["uploaded"],
                row["eliminated"],
            ]
        )
    emit(
        "Fleet scaling — sharded concurrent vs. sequential reference "
        "(equivalence asserted per config)",
        format_table(
            ["config", "sequential", "concurrent", "speedup", "uploaded",
             "eliminated"],
            rows,
        ),
    )
    # Correctness is asserted inside run_fleet_scaling (assert_equivalent
    # per config).  Here: the fleet actually eliminated something, so
    # the equivalence claim covers non-trivial decisions.
    multi = [row for (devices, _), row in data["rows"].items() if devices > 1]
    assert multi, "grid must include a multi-device config"
    assert any(row["eliminated"] > 0 for row in multi)
    # Speedup stays a report, not a gate: single-core CI boxes cannot
    # honestly exceed 1x on a GIL-bound numpy pipeline.
    assert all(row["speedup"] > 0.0 for row in data["rows"].values())
