"""Extension — fleet scaling: the sharded concurrent server vs. the
sequential reference.

Not a paper figure: the paper runs its server on "well-provisioned
machines" and never measures server-side concurrency.  This bench
characterises the `repro.fleet` runtime the reproduction adds on top —
N devices uploading through the network layer into the shared index —
along two axes:

* **correctness** — every concurrent sharded run is asserted
  byte-identical (kept/eliminated ids, bytes, joules) to the sequential
  single-index run of the same seed, via the fleet fingerprint;
* **throughput** — wall-clock seconds per configuration, reported as a
  speedup over the sequential reference.  The speedup is measured, not
  asserted: the device pipeline is CPU-bound numpy under the GIL, so
  thread-level gains materialise with multiple cores (and free-threaded
  builds), while a single-core CI box honestly reports ~1x.

This module also hosts the registered ``process_index_scaling`` case:
batch-query throughput of the process-parallel index
(:class:`repro.index.ProcessShardedIndex`) against the thread-sharded
index at matched shard counts, over a synthetic corpus of up to 10^6
descriptors — wall, p99 batch latency, and peak RSS per worker count,
with thread/process answers asserted byte-identical per configuration.
"""
# beeslint: disable-file=raw-timing (batch-query latency/throughput timing is the measurement)

from __future__ import annotations

import os
import resource
import time

import numpy as np

from repro.analysis.reporting import format_table
from repro.features.base import FeatureSet
from repro.fleet import FleetRunner, assert_equivalent
from repro.index import ProcessShardedIndex, ShardedFeatureIndex

from common import merge_params

#: (devices, shards) grid; each entry also runs a sequential reference.
CONFIGS = ((1, 1), (4, 2), (8, 4))
N_ROUNDS = 3
BATCH_SIZE = 6
SEED = 11
SCHEME = "bees"

PARAMS = {
    "configs": list(list(pair) for pair in CONFIGS),
    "n_rounds": N_ROUNDS,
    "batch_size": BATCH_SIZE,
    "seed": SEED,
    "scheme": SCHEME,
}
QUICK_PARAMS = {
    "configs": [[1, 1], [4, 2]],
    "n_rounds": 2,
    "batch_size": 4,
}


#: Worker counts × synthetic corpus for the process-index case.  At
#: full scale the corpus holds 10^6 descriptors (2000 images × 500).
PROCESS_INDEX_PARAMS = {
    "workers": [1, 2, 4, 8],
    "n_images": 2000,
    "descriptors_per_image": 500,
    "n_queries": 64,
    "query_batch_size": 16,
    "seed": 23,
}
PROCESS_INDEX_QUICK_PARAMS = {
    "workers": [1, 2],
    "n_images": 48,
    "descriptors_per_image": 64,
    "n_queries": 12,
    "query_batch_size": 6,
}

#: The acceptance gate: ≥2x batch-query speedup over thread shards at
#: this worker count — only assertable on a machine that has the cores.
SPEEDUP_GATE_WORKERS = 8
SPEEDUP_GATE = 2.0


def run(params: "dict | None" = None) -> dict:
    """Registered bench entry point (``repro bench run``)."""
    p = merge_params(PARAMS, params)
    data = run_fleet_scaling(**p)
    return {
        "fingerprint": data["fingerprint"],
        "configs": {
            f"{devices}dev-{shards}shard": {
                "sequential_wall_seconds": float(row["sequential_wall_seconds"]),
                "concurrent_wall_seconds": float(row["concurrent_wall_seconds"]),
                "speedup": float(row["speedup"]),
                "uploaded": int(row["uploaded"]),
                "eliminated": int(row["eliminated"]),
                "bytes_sent": int(row["bytes_sent"]),
            }
            for (devices, shards), row in data["rows"].items()
        },
    }


def run_fleet_scaling(
    configs=CONFIGS,
    n_rounds: int = N_ROUNDS,
    batch_size: int = BATCH_SIZE,
    seed: int = SEED,
    scheme: str = SCHEME,
):
    rows = {}
    fingerprints = []
    for devices, shards in (tuple(pair) for pair in configs):
        common = dict(
            n_devices=devices,
            n_rounds=n_rounds,
            batch_size=batch_size,
            seed=seed,
            scheme=scheme,
        )
        reference = FleetRunner(mode="sequential", n_shards=1, **common).run()
        concurrent = FleetRunner(mode="concurrent", n_shards=shards, **common).run()
        # The contract under load: sharded + threaded must equal the
        # sequential single-index run, byte for byte.
        assert_equivalent(reference, concurrent)
        rows[(devices, shards)] = {
            "sequential_wall_seconds": reference.wall_seconds,
            "concurrent_wall_seconds": concurrent.wall_seconds,
            "speedup": reference.wall_seconds / max(concurrent.wall_seconds, 1e-9),
            "uploaded": concurrent.total_uploaded,
            "eliminated": concurrent.total_eliminated,
            "bytes_sent": concurrent.total_bytes,
        }
        fingerprints.append(concurrent.fingerprint())
    return {"rows": rows, "fingerprint": fingerprints[-1] if fingerprints else ""}


def test_fleet_scaling(benchmark, emit):
    data = benchmark.pedantic(run_fleet_scaling, rounds=1, iterations=1)
    rows = []
    for (devices, shards), row in data["rows"].items():
        rows.append(
            [
                f"{devices} dev / {shards} shard",
                f"{row['sequential_wall_seconds']:.2f} s",
                f"{row['concurrent_wall_seconds']:.2f} s",
                f"{row['speedup']:.2f}x",
                row["uploaded"],
                row["eliminated"],
            ]
        )
    emit(
        "Fleet scaling — sharded concurrent vs. sequential reference "
        "(equivalence asserted per config)",
        format_table(
            ["config", "sequential", "concurrent", "speedup", "uploaded",
             "eliminated"],
            rows,
        ),
    )
    # Correctness is asserted inside run_fleet_scaling (assert_equivalent
    # per config).  Here: the fleet actually eliminated something, so
    # the equivalence claim covers non-trivial decisions.
    multi = [row for (devices, _), row in data["rows"].items() if devices > 1]
    assert multi, "grid must include a multi-device config"
    assert any(row["eliminated"] > 0 for row in multi)
    # Speedup stays a report, not a gate: single-core CI boxes cannot
    # honestly exceed 1x on a GIL-bound numpy pipeline.
    assert all(row["speedup"] > 0.0 for row in data["rows"].values())


# ---------------------------------------------------------------------------
# process_index_scaling — ProcessShardedIndex vs. thread shards
# ---------------------------------------------------------------------------


def _synthetic_corpus(n_images: int, descriptors_per_image: int, seed: int):
    """Deterministic orb-like feature sets (random bit-packed rows)."""
    rng = np.random.default_rng(seed)
    corpus = []
    for number in range(n_images):
        n = descriptors_per_image
        corpus.append(
            FeatureSet(
                kind="orb",
                descriptors=rng.integers(0, 256, (n, 32), dtype=np.uint8),
                xs=rng.uniform(0.0, 640.0, n),
                ys=rng.uniform(0.0, 480.0, n),
                pixels_processed=640 * 480,
                image_id=f"img-{number:06d}",
            )
        )
    return corpus


def _perturbed_queries(corpus, n_queries: int, seed: int):
    """Near-duplicates of stored images: flips ~10% of descriptor bytes,
    so queries exercise the full vote → verify path, not just misses."""
    rng = np.random.default_rng(seed + 1)
    stride = max(1, len(corpus) // max(1, n_queries))
    queries = []
    for number, features in enumerate(corpus[::stride][:n_queries]):
        descriptors = features.descriptors.copy()
        flips = rng.random(descriptors.shape) < 0.1
        descriptors[flips] ^= rng.integers(
            1, 256, int(flips.sum()), dtype=np.uint8
        )
        queries.append(
            FeatureSet(
                kind="orb",
                descriptors=descriptors,
                xs=features.xs,
                ys=features.ys,
                pixels_processed=features.pixels_processed,
                image_id=f"query-{number:04d}",
            )
        )
    return queries


def _timed_query_batches(index, queries, batch_size: int):
    """(results, total wall seconds, per-batch latencies)."""
    results = []
    latencies = []
    started = time.perf_counter()
    for offset in range(0, len(queries), batch_size):
        batch = queries[offset : offset + batch_size]
        batch_started = time.perf_counter()
        results.extend(index.query_batch(batch))
        latencies.append(time.perf_counter() - batch_started)
    return results, time.perf_counter() - started, latencies


def _p99(latencies) -> float:
    ordered = sorted(latencies)
    return ordered[int(0.99 * (len(ordered) - 1))] if ordered else 0.0


def _peak_rss_mb() -> float:
    """Peak resident set of this process plus reaped children (MiB).

    Covers the shard workers (children) and the coordinator's attached
    arenas — the "bounded RAM" number for the scaling claim.  Linux
    reports ``ru_maxrss`` in KiB.
    """
    usage = (
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        + resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    )
    return usage / 1024.0


def run_process_index_scaling(
    workers=(1, 2, 4, 8),
    n_images: int = 2000,
    descriptors_per_image: int = 500,
    n_queries: int = 64,
    query_batch_size: int = 16,
    seed: int = 23,
):
    corpus = _synthetic_corpus(n_images, descriptors_per_image, seed)
    queries = _perturbed_queries(corpus, n_queries, seed)
    rows = {}
    for n_workers in (int(w) for w in workers):
        thread_index = ShardedFeatureIndex(n_shards=n_workers)
        for features in corpus:
            thread_index.add(features)
        thread_results, thread_wall, thread_latencies = _timed_query_batches(
            thread_index, queries, query_batch_size
        )
        # Fork start method: this harness is single-threaded, and fork
        # skips a per-worker interpreter boot that would pollute the
        # build-time series.
        with ProcessShardedIndex(n_shards=n_workers, mp_context="fork") as pool:
            build_started = time.perf_counter()
            for offset in range(0, len(corpus), 64):
                pool.add_batch(corpus[offset : offset + 64])
            build_wall = time.perf_counter() - build_started
            process_results, process_wall, process_latencies = (
                _timed_query_batches(pool, queries, query_batch_size)
            )
        # The contract that makes the speedup meaningful: both modes
        # return byte-identical answers for every query.
        assert process_results == thread_results
        rows[n_workers] = {
            "n_descriptors": n_images * descriptors_per_image,
            "thread_wall_seconds": thread_wall,
            "process_wall_seconds": process_wall,
            "process_build_seconds": build_wall,
            "thread_p99_batch_seconds": _p99(thread_latencies),
            "process_p99_batch_seconds": _p99(process_latencies),
            "speedup": thread_wall / max(process_wall, 1e-9),
            "queries_per_second": len(queries) / max(process_wall, 1e-9),
            "peak_rss_mb": _peak_rss_mb(),
        }
    return {"rows": rows, "n_queries": len(queries)}


def process_index_run(params: "dict | None" = None) -> dict:
    """Registered bench entry point (``repro bench run``)."""
    p = merge_params(PROCESS_INDEX_PARAMS, params)
    data = run_process_index_scaling(**p)
    return {
        "n_queries": int(data["n_queries"]),
        "workers": {
            f"{n_workers}w": {
                key: float(value) for key, value in row.items()
            }
            for n_workers, row in data["rows"].items()
        },
    }


def test_process_index_scaling(benchmark, emit):
    # Reduced corpus for the pytest smoke: the full 10^6-descriptor
    # grid belongs to `repro bench run`, not the test suite.
    data = benchmark.pedantic(
        run_process_index_scaling,
        kwargs=dict(
            workers=(1, 2),
            n_images=60,
            descriptors_per_image=96,
            n_queries=12,
            query_batch_size=6,
        ),
        rounds=1,
        iterations=1,
    )
    rows = []
    for n_workers, row in data["rows"].items():
        rows.append(
            [
                f"{n_workers} workers",
                f"{row['thread_wall_seconds'] * 1e3:.1f} ms",
                f"{row['process_wall_seconds'] * 1e3:.1f} ms",
                f"{row['process_p99_batch_seconds'] * 1e3:.1f} ms",
                f"{row['speedup']:.2f}x",
                f"{row['peak_rss_mb']:.0f} MiB",
            ]
        )
    emit(
        "Process-index scaling — batch-query wall vs. thread shards "
        "(answers asserted identical per worker count)",
        format_table(
            ["workers", "thread", "process", "process p99", "speedup", "rss"],
            rows,
        ),
    )
    # The ≥2x-at-8-workers gate needs 8 cores to be falsifiable; on
    # smaller boxes (single-core CI included) the speedup is a report,
    # not a gate — same policy as the fleet speedup above.
    cores = os.cpu_count() or 1
    gated = [
        row
        for n_workers, row in data["rows"].items()
        if n_workers >= SPEEDUP_GATE_WORKERS
    ]
    if cores >= SPEEDUP_GATE_WORKERS and gated:
        assert all(row["speedup"] >= SPEEDUP_GATE for row in gated)
    assert all(row["speedup"] > 0.0 for row in data["rows"].values())
    assert all(row["peak_rss_mb"] > 0.0 for row in data["rows"].values())
