"""Figure 4 — the similarity distribution of similar/dissimilar pairs.

Paper protocol (Section III-B1): 5,000 similar and 5,000 dissimilar
Kentucky pairs are scored with Equation 2; the figure reports the
fraction of each population above a sweep of similarity thresholds
(equivalently, the TPR and FPR of threshold-based detection).

Expected shape: both rates decrease with the threshold; at the EDR
anchor T = 0.013 the TPR is high (paper: 90%) and the FPR low
(paper: 10%).
"""

from __future__ import annotations

from repro.analysis.precision import pair_similarities, rate_curve
from repro.analysis.reporting import format_percent, format_table
from repro.datasets.kentucky import SyntheticKentucky
from repro.core.config import EDR_THRESHOLD_MAX, EDR_THRESHOLD_MIN
from repro.features.orb import OrbExtractor

from common import merge_params

N_PAIRS = 150  # per class; the paper uses 5,000
N_GROUPS = 40
THRESHOLDS = [0.005, 0.01, EDR_THRESHOLD_MIN, 0.016, EDR_THRESHOLD_MAX, 0.03, 0.05, 0.1, 0.2]

PARAMS = {"n_groups": N_GROUPS, "n_pairs": N_PAIRS}
QUICK_PARAMS = {"n_groups": 12, "n_pairs": 40}


def run(params: "dict | None" = None) -> dict:
    """Registered bench entry point (``repro bench run``)."""
    p = merge_params(PARAMS, params)
    points = run_figure4(n_groups=p["n_groups"], n_pairs=p["n_pairs"])
    return {
        "points": [
            {
                "threshold": point.threshold,
                "tpr": point.true_positive_rate,
                "fpr": point.false_positive_rate,
            }
            for point in points
        ]
    }


def run_figure4(n_groups: int = N_GROUPS, n_pairs: int = N_PAIRS):
    dataset = SyntheticKentucky(n_groups=n_groups)
    extractor = OrbExtractor()
    cache = {}

    def extract(image):
        if image.image_id not in cache:
            cache[image.image_id] = extractor.extract(image)
        return cache[image.image_id]

    pairs = dataset.similar_pairs(n_pairs, seed=11) + dataset.dissimilar_pairs(
        n_pairs, seed=12
    )
    similar, dissimilar = pair_similarities(pairs, extract)
    return rate_curve(similar, dissimilar, THRESHOLDS)


def test_fig4_similarity_distribution(benchmark, emit):
    points = benchmark.pedantic(run_figure4, rounds=1, iterations=1)
    emit(
        "Figure 4 — similarity distribution (TPR/FPR vs. threshold)",
        format_table(
            ["threshold", "true positive rate", "false positive rate"],
            [
                [
                    f"{p.threshold:.3f}",
                    format_percent(p.true_positive_rate),
                    format_percent(p.false_positive_rate),
                ]
                for p in points
            ],
        ),
    )
    by_t = {p.threshold: p for p in points}
    # Both rates decrease with the threshold.
    tprs = [p.true_positive_rate for p in points]
    fprs = [p.false_positive_rate for p in points]
    assert tprs == sorted(tprs, reverse=True)
    assert fprs == sorted(fprs, reverse=True)
    # The paper's operating point: high TPR, ~10% FPR at T = 0.013.
    assert by_t[EDR_THRESHOLD_MIN].true_positive_rate > 0.9
    assert by_t[EDR_THRESHOLD_MIN].false_positive_rate < 0.25
    # The EDR band [0.013, 0.019] keeps detection near-lossless.
    assert by_t[EDR_THRESHOLD_MAX].true_positive_rate > 0.9
