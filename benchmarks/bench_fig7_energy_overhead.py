"""Figure 7 — energy overhead vs. cross-batch redundancy ratio.

Paper protocol (Section IV-B3(1)): a 100-image disaster batch with 10
in-batch similars; cross-batch redundancy set to 0/25/50/75% by seeding
partner images into the servers; each scheme uploads the batch and its
energy is recorded.

Expected shape: Direct Upload flat; SmartEye/MRC fall with the ratio
but *exceed* Direct at 0% (extraction overhead with nothing to
eliminate); MRC below SmartEye (ORB vs. PCA-SIFT); BEES far below all
— paper: 67.3-70.8% below MRC, 67.6-85.3% below Direct.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table

from common import (
    BATCH_SIZE,
    IN_BATCH_SIMILAR,
    REDUNDANCY_RATIOS,
    merge_params,
    report_summary,
    run_comparison,
)

PARAMS = {
    "n_images": BATCH_SIZE,
    "n_inbatch_similar": IN_BATCH_SIMILAR,
    "ratios": list(REDUNDANCY_RATIOS),
}
QUICK_PARAMS = {"n_images": 12, "n_inbatch_similar": 2, "ratios": [0.0, 0.5]}


def run(params: "dict | None" = None) -> dict:
    """Registered bench entry point (``repro bench run``)."""
    p = merge_params(PARAMS, params)
    sweep = run_figure7(
        ratios=p["ratios"],
        n_images=p["n_images"],
        n_inbatch_similar=p["n_inbatch_similar"],
    )
    return {
        "energy_j": {
            str(ratio): {
                name: report_summary(report) for name, report in reports.items()
            }
            for ratio, reports in sweep.items()
        }
    }


def run_figure7(
    ratios=REDUNDANCY_RATIOS,
    n_images: int = BATCH_SIZE,
    n_inbatch_similar: int = IN_BATCH_SIMILAR,
):
    return {
        ratio: run_comparison(
            ratio, n_images=n_images, n_inbatch_similar=n_inbatch_similar
        )
        for ratio in ratios
    }


def test_fig7_energy_overhead(benchmark, emit):
    sweep = benchmark.pedantic(run_figure7, rounds=1, iterations=1)
    scheme_names = list(next(iter(sweep.values())).keys())
    emit(
        "Figure 7 — energy overhead (J) vs. cross-batch redundancy ratio",
        format_table(
            ["redundancy"] + scheme_names,
            [
                [f"{int(ratio * 100)}%"]
                + [f"{sweep[ratio][name].total_energy_joules:.1f}" for name in scheme_names]
                for ratio in REDUNDANCY_RATIOS
            ],
        ),
    )

    for ratio in REDUNDANCY_RATIOS:
        reports = sweep[ratio]
        # BEES is the cheapest scheme at every ratio.
        bees = reports["BEES"].total_energy_joules
        for name in ("Direct Upload", "SmartEye", "MRC"):
            assert bees < reports[name].total_energy_joules
        # MRC below SmartEye: ORB extraction vs. PCA-SIFT.
        assert reports["MRC"].total_energy_joules < reports["SmartEye"].total_energy_joules

    # At 0% redundancy the detection overhead makes SmartEye and MRC
    # *more* expensive than Direct Upload (the paper's worst case).
    zero = sweep[0.0]
    assert zero["SmartEye"].total_energy_joules > zero["Direct Upload"].total_energy_joules
    assert zero["MRC"].total_energy_joules > zero["Direct Upload"].total_energy_joules
    # ... while BEES still saves most of the energy (paper: 67.6%).
    assert zero["BEES"].total_energy_joules < 0.5 * zero["Direct Upload"].total_energy_joules

    # Smart schemes get cheaper as the redundancy ratio rises.
    for name in ("SmartEye", "MRC", "BEES"):
        energies = [sweep[ratio][name].total_energy_joules for ratio in REDUNDANCY_RATIOS]
        assert energies == sorted(energies, reverse=True)

    # The headline claim: large savings vs. MRC (paper: 67.3-70.8%).
    mid = sweep[0.25]
    saving = 1 - mid["BEES"].total_energy_joules / mid["MRC"].total_energy_joules
    assert saving > 0.5
