"""Figure 6 — precision of similarity detection across algorithms.

Paper protocol (Section IV-B1): one query per Kentucky group; average
top-4 precision (Equation 3) for SIFT, PCA-SIFT, and BEES at battery
levels 100/70/40/10% (the EAC bitmap compression moves with Ebat);
everything normalized to SIFT.

Expected shape (paper): SIFT highest; BEES(100) >= ~0.9 of SIFT;
BEES degrades gracefully to >= ~0.85 at Ebat = 10%.

Known deviation: on these small synthetic bitmaps our simplified SIFT
(no sub-pixel refinement, hard histogram binning) is *less* robust to
view perturbations than our ORB, so BEES can match or exceed SIFT —
the opposite of the paper's ordering at the top of the range.  The
claims that drive BEES' design survive: BEES stays within the paper's
precision band of SIFT at every battery level, and its precision falls
monotonically (and mildly) with Ebat.  The bench therefore uses a
deliberately *hard* perturbation setting so the degradation is visible
at all.
"""

from __future__ import annotations

from repro.analysis.precision import dataset_precision
from repro.analysis.reporting import format_table
from repro.core.policies import eac_policy
from repro.core.server import BeesServer
from repro.datasets.kentucky import SyntheticKentucky
from repro.features.orb import OrbExtractor
from repro.features.pca_sift import PcaSiftExtractor
from repro.features.sift import SiftExtractor
from repro.imaging.bitmap import compress_image
from repro.imaging.synth import PerturbationSpec, SceneGenerator
from repro.index import FeatureIndex

from common import merge_params

N_GROUPS = 25
EBAT_LEVELS = (1.0, 0.7, 0.4, 0.1)

PARAMS = {"n_groups": N_GROUPS}
QUICK_PARAMS = {"n_groups": 8}


def run(params: "dict | None" = None) -> dict:
    """Registered bench entry point (``repro bench run``)."""
    p = merge_params(PARAMS, params)
    return {"precision": run_figure6(n_groups=p["n_groups"])}

#: Harsh view perturbations (big shifts, zoom, lighting, noise) so the
#: detectors are actually stressed.
HARD_PERTURBATION = PerturbationSpec(
    max_shift=8,
    max_brightness=25.0,
    contrast_range=(0.8, 1.2),
    noise_sigma=6.0,
    min_crop=0.8,
)


def _precision_for(extractor, dataset, transform=None):
    server = BeesServer(index=FeatureIndex(kind=extractor.kind))
    group_of = {}
    for image in dataset:
        server.receive_image(image, extractor.extract(image))
        group_of[image.image_id] = image.group_id
    queries = []
    for image in dataset.query_images():
        source = transform(image) if transform else image
        queries.append((image, extractor.extract(source)))
    return dataset_precision(server, queries, group_of)


def run_figure6(n_groups: int = N_GROUPS):
    dataset = SyntheticKentucky(
        n_groups=n_groups,
        generator=SceneGenerator(perturbation=HARD_PERTURBATION),
    )
    results = {}
    results["SIFT"] = _precision_for(SiftExtractor(), dataset)
    results["PCA-SIFT"] = _precision_for(PcaSiftExtractor(), dataset)
    orb = OrbExtractor()
    eac = eac_policy()
    for ebat in EBAT_LEVELS:
        proportion = eac(ebat)
        results[f"BEES({int(ebat * 100)})"] = _precision_for(
            orb, dataset, transform=lambda image: compress_image(image, proportion)
        )
    return results


def test_fig6_precision(benchmark, emit):
    results = benchmark.pedantic(run_figure6, rounds=1, iterations=1)
    sift = results["SIFT"]
    emit(
        "Figure 6 — normalized precision of similarity detection",
        format_table(
            ["scheme", "precision", "normalized to SIFT"],
            [
                [name, f"{precision:.3f}", f"{precision / sift:.3f}"]
                for name, precision in results.items()
            ],
        ),
    )
    # Paper: BEES(100) within ~10% of SIFT.
    assert results["BEES(100)"] / sift > 0.9
    # Paper: BEES(10) still above ~85% of SIFT.
    assert results["BEES(10)"] / sift > 0.8
    # PCA-SIFT close to SIFT (the projection costs little precision).
    assert results["PCA-SIFT"] / sift > 0.85  # beeslint: disable=paper-constants (precision ratio, not the quality proportion)
    # Precision decreases (weakly) as Ebat falls.
    bees = [results[f"BEES({int(e * 100)})"] for e in EBAT_LEVELS]
    assert all(a >= b - 0.05 for a, b in zip(bees, bees[1:]))
    # Every method remains a usable detector on the hard dataset.
    assert min(results.values()) > 0.6
