"""Shared workload builders for the benchmark harness.

The benches run the paper's experiments at a laptop-friendly scale; the
constants here are the single place where that scale is set.  Every
builder is deterministic.
"""

from __future__ import annotations

from repro.baselines import DirectUpload, Mrc, SmartEye, make_bees_ea
from repro.core.client import BeesScheme
from repro.datasets import DisasterDataset
from repro.imaging.synth import SceneGenerator
from repro.sim.device import Smartphone
from repro.sim.session import build_server

#: Scaled-down stand-in for the paper's 100-image disaster batch.
BATCH_SIZE = 40
IN_BATCH_SIMILAR = 4  # paper: 10 of 100

#: The cross-batch redundancy ratios of Figures 7 and 10.
REDUNDANCY_RATIOS = (0.0, 0.25, 0.5, 0.75)

#: Smaller scenes keep the long simulations fast.
FAST_GENERATOR = SceneGenerator(height=72, width=96)


def comparison_schemes():
    """The four schemes of Figures 7, 10, 11 (fresh instances)."""
    return [DirectUpload(), SmartEye(), Mrc(), BeesScheme()]


def lifetime_schemes():
    """The five schemes of Figure 9 (adds BEES-EA)."""
    return [DirectUpload(), SmartEye(), Mrc(), make_bees_ea(), BeesScheme()]


def disaster_batch(seed: int = 1):
    """The Figure-7 style controlled batch."""
    data = DisasterDataset()
    return data, data.make_batch(
        n_images=BATCH_SIZE, n_inbatch_similar=IN_BATCH_SIMILAR, seed=seed
    )


def run_comparison(ratio: float, schemes=None, seed: int = 1):
    """Run the controlled batch through each scheme at one redundancy
    ratio; returns ``{scheme_name: BatchReport}``."""
    data, batch = disaster_batch(seed)
    partners = data.cross_batch_partners(batch, ratio, seed=seed + 100)
    reports = {}
    for scheme in schemes or comparison_schemes():
        server = build_server(scheme, partners)
        reports[scheme.name] = scheme.process_batch(Smartphone(), server, batch)
    return reports
