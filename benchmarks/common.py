"""Shared workload builders for the benchmark harness.

The benches run the paper's experiments at a laptop-friendly scale; the
constants here are the single place where that scale is set.  Every
builder is deterministic, and every builder takes the scale knobs as
keyword arguments (defaulting to the constants) so the registered
``repro bench`` cases can run the same code at ``--quick`` sizes.
"""

from __future__ import annotations

import pathlib

from repro.baselines import DirectUpload, Mrc, SmartEye, make_bees_ea
from repro.core.client import BeesScheme
from repro.datasets import DisasterDataset
from repro.imaging.synth import SceneGenerator
from repro.sim.device import Smartphone
from repro.sim.session import build_server

#: Scaled-down stand-in for the paper's 100-image disaster batch.
BATCH_SIZE = 40
IN_BATCH_SIMILAR = 4  # paper: 10 of 100

#: The cross-batch redundancy ratios of Figures 7 and 10.
REDUNDANCY_RATIOS = (0.0, 0.25, 0.5, 0.75)

#: Smaller scenes keep the long simulations fast.
FAST_GENERATOR = SceneGenerator(height=72, width=96)

#: Where the benches' figure blocks land (one file per run, gitignored).
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_result(title: str, body: str, filename: str = "results.txt") -> pathlib.Path:
    """Append one figure block to ``benchmarks/results/<filename>``.

    Creates the directory on first use; returns the path written.  The
    per-run file replaces the old repo-root ``results.txt`` that every
    run clobbered in place.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / filename
    with path.open("a") as handle:
        handle.write(f"\n== {title} ==\n{body}\n")
    return path


def comparison_schemes():
    """The four schemes of Figures 7, 10, 11 (fresh instances)."""
    return [DirectUpload(), SmartEye(), Mrc(), BeesScheme()]


def lifetime_schemes():
    """The five schemes of Figure 9 (adds BEES-EA)."""
    return [DirectUpload(), SmartEye(), Mrc(), make_bees_ea(), BeesScheme()]


def disaster_batch(
    seed: int = 1,
    n_images: int = BATCH_SIZE,
    n_inbatch_similar: int = IN_BATCH_SIMILAR,
):
    """The Figure-7 style controlled batch."""
    data = DisasterDataset()
    return data, data.make_batch(
        n_images=n_images, n_inbatch_similar=n_inbatch_similar, seed=seed
    )


def run_comparison(
    ratio: float,
    schemes=None,
    seed: int = 1,
    n_images: int = BATCH_SIZE,
    n_inbatch_similar: int = IN_BATCH_SIMILAR,
):
    """Run the controlled batch through each scheme at one redundancy
    ratio; returns ``{scheme_name: BatchReport}``."""
    data, batch = disaster_batch(
        seed, n_images=n_images, n_inbatch_similar=n_inbatch_similar
    )
    partners = data.cross_batch_partners(batch, ratio, seed=seed + 100)
    reports = {}
    for scheme in schemes or comparison_schemes():
        server = build_server(scheme, partners)
        reports[scheme.name] = scheme.process_batch(Smartphone(), server, batch)
    return reports


def report_summary(report) -> dict:
    """Distil one :class:`BatchReport` into a JSON-able summary dict."""
    return {
        "bytes_sent": int(report.sent_bytes),
        "energy_j": float(report.total_energy_joules),
        "n_uploaded": int(report.n_uploaded),
        "eliminated_cross": len(report.eliminated_cross_batch),
        "eliminated_in_batch": len(report.eliminated_in_batch),
        "avg_image_seconds": float(report.average_image_seconds),
        "halted": bool(report.halted),
    }


def merge_params(defaults: dict, params: "dict | None") -> dict:
    """Overlay *params* on *defaults*, rejecting unknown keys loudly."""
    merged = dict(defaults)
    for key, value in (params or {}).items():
        if key not in defaults:
            raise KeyError(
                f"unknown bench parameter {key!r}; expected one of {sorted(defaults)}"
            )
        merged[key] = value
    return merged
