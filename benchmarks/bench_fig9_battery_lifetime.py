"""Figure 9 — battery lifetime.

Paper protocol (Section IV-B3(3)): 150 groups of 40 Paris images on the
phone; one group uploaded every 20 minutes at ~50% cross-batch
redundancy with the screen bright; remaining energy sampled every
interval until the battery dies.

Scaled for the bench: 12-image groups, 5-minute intervals (so upload
energy rather than idle drain dominates, preserving the paper's
ratios), 15% of the real battery, smaller scenes.

Expected shape: near-linear drain for Direct/SmartEye/MRC/BEES-EA, a
flattening curve for BEES; lifetime ordering
Direct < SmartEye < MRC < BEES-EA < BEES (paper: +18.0%, +25.7%,
+93.4%, +133.1% over Direct; BEES ~+20% over BEES-EA).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table
from repro.sim.lifetime import LifetimeExperiment

from common import FAST_GENERATOR, lifetime_schemes, merge_params

GROUP_SIZE = 12
INTERVAL_SECONDS = 300.0
CAPACITY_FRACTION = 0.15
MAX_GROUPS = 200

PARAMS = {
    "group_size": GROUP_SIZE,
    "capacity_fraction": CAPACITY_FRACTION,
    "max_groups": MAX_GROUPS,
}
QUICK_PARAMS = {"group_size": 6, "capacity_fraction": 0.04, "max_groups": 60}


def run(params: "dict | None" = None) -> dict:
    """Registered bench entry point (``repro bench run``)."""
    p = merge_params(PARAMS, params)
    results = run_figure9(**p)
    return {
        "lifetime": {
            name: {
                "lifetime_minutes": float(result.lifetime_minutes),
                "groups_completed": int(result.groups_completed),
                "images_uploaded": int(result.images_uploaded),
            }
            for name, result in results.items()
        }
    }


def run_figure9(
    group_size: int = GROUP_SIZE,
    capacity_fraction: float = CAPACITY_FRACTION,
    max_groups: int = MAX_GROUPS,
):
    results = {}
    for scheme in lifetime_schemes():
        experiment = LifetimeExperiment(
            group_size=group_size,
            interval_seconds=INTERVAL_SECONDS,
            capacity_fraction=capacity_fraction,
            max_groups=max_groups,
            generator=FAST_GENERATOR,
        )
        results[scheme.name] = experiment.run(scheme)
    return results


def test_fig9_battery_lifetime(benchmark, emit):
    results = benchmark.pedantic(run_figure9, rounds=1, iterations=1)
    rows = []
    direct_minutes = results["Direct Upload"].lifetime_minutes
    for name, result in results.items():
        rows.append(
            [
                name,
                f"{result.lifetime_minutes:.0f} min",
                f"{result.groups_completed}",
                f"{result.images_uploaded}",
                f"{(result.lifetime_minutes / direct_minutes - 1) * 100:+.1f}%",
            ]
        )
    emit(
        "Figure 9 — battery lifetime (scaled: 12-img groups / 5-min intervals)",
        format_table(
            ["scheme", "lifetime", "groups", "images uploaded", "vs Direct"], rows
        ),
    )
    # Remaining-energy traces (the plotted curves), sampled sparsely.
    trace_rows = []
    for name, result in results.items():
        ebats = [point.ebat for point in result.trace]
        samples = ebats[:: max(1, len(ebats) // 8)]
        trace_rows.append([name, "  ".join(f"{value:.2f}" for value in samples)])
    emit("Figure 9 — Ebat traces (sampled)", format_table(["scheme", "Ebat over time"], trace_rows))

    lifetimes = {name: result.lifetime_minutes for name, result in results.items()}
    # The paper's lifetime ordering.
    assert lifetimes["Direct Upload"] < lifetimes["SmartEye"]
    assert lifetimes["SmartEye"] < lifetimes["MRC"]
    assert lifetimes["MRC"] < lifetimes["BEES-EA"]
    assert lifetimes["BEES-EA"] < lifetimes["BEES"]
    # BEES extends lifetime substantially vs Direct (paper: +133%).
    assert lifetimes["BEES"] > 1.5 * lifetimes["Direct Upload"]
    # EAAS itself buys extra lifetime over BEES-EA (paper: ~+20%).
    assert lifetimes["BEES"] > 1.05 * lifetimes["BEES-EA"]

    # BEES' drain curve flattens: late-life drain per interval is
    # smaller than early-life drain.
    bees_trace = [point.ebat for point in results["BEES"].trace]
    drops = np.diff(bees_trace)
    early = -np.mean(drops[: max(1, len(drops) // 3)])
    late = -np.mean(drops[-max(1, len(drops) // 3):])
    assert late < early
