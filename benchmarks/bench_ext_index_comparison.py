"""Extension — server index strategies: descriptor LSH vs. vocabulary tree.

BEES queries the index with raw ORB descriptors (two-stage: LSH
shortlist + exact Equation-2 verification).  The retrieval literature
the paper draws its precision methodology from (Nister & Stewenius,
CVPR'06 — the Kentucky dataset's paper) instead quantises descriptors
into a visual vocabulary and scores TF-IDF histograms.  This bench runs
both against the same Kentucky-style workload and reports top-4
precision and per-query latency.

Expected shape: the LSH + exact-verify index is more precise (no
quantisation loss); the bag-of-words index answers queries without
touching raw descriptors and degrades gracefully — the classic
precision/efficiency trade.
"""

from __future__ import annotations

# beeslint: disable-file=raw-timing (per-query latency timing is the measurement)

import time

import numpy as np

from repro.analysis.reporting import format_table
from repro.datasets.kentucky import SyntheticKentucky
from repro.features.orb import OrbExtractor
from repro.index import BagOfWordsIndex, FeatureIndex, VocabularyTree

from common import merge_params

N_GROUPS = 20
TOP_K = 4

PARAMS = {"n_groups": N_GROUPS}
QUICK_PARAMS = {"n_groups": 8}


def run(params: "dict | None" = None) -> dict:
    """Registered bench entry point (``repro bench run``)."""
    p = merge_params(PARAMS, params)
    return {"indexes": run_index_comparison(n_groups=p["n_groups"])}


def run_index_comparison(n_groups: int = N_GROUPS):
    dataset = SyntheticKentucky(n_groups=n_groups)
    extractor = OrbExtractor()
    features = {image.image_id: extractor.extract(image) for image in dataset}
    group_of = {image.image_id: image.group_id for image in dataset}

    lsh = FeatureIndex()
    for feature_set in features.values():
        lsh.add(feature_set)

    tree = VocabularyTree(branching=8, depth=2)
    tree.train(np.concatenate([f.descriptors for f in features.values()]))
    bow = BagOfWordsIndex(tree=tree)
    for feature_set in features.values():
        bow.add(feature_set)

    queries = [dataset.image(group, 0) for group in range(n_groups)]
    results = {}
    for name, index in (("LSH + exact verify", lsh), ("vocabulary tree (BoW)", bow)):
        precisions = []
        started = time.perf_counter()
        for image in queries:
            top = index.query_top(features[image.image_id], TOP_K)
            relevant = sum(
                1 for image_id, _ in top if group_of[image_id] == image.group_id
            )
            precisions.append(relevant / TOP_K)
        elapsed = time.perf_counter() - started
        results[name] = {
            "precision": float(np.mean(precisions)),
            "ms_per_query": 1000.0 * elapsed / len(queries),
        }
    return results


def test_ext_index_comparison(benchmark, emit):
    results = benchmark.pedantic(run_index_comparison, rounds=1, iterations=1)
    emit(
        "Extension — index strategy: LSH + exact verify vs. vocabulary tree",
        format_table(
            ["index", "top-4 precision", "ms/query"],
            [
                [name, f"{data['precision']:.3f}", f"{data['ms_per_query']:.1f}"]
                for name, data in results.items()
            ],
        ),
    )
    lsh = results["LSH + exact verify"]
    bow = results["vocabulary tree (BoW)"]
    # The exact-verify path is at least as precise as quantised BoW.
    assert lsh["precision"] >= bow["precision"]
    # Both remain usable retrieval systems on this workload.
    assert bow["precision"] > 0.5
    assert lsh["precision"] > 0.9
