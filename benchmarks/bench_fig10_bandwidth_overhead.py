"""Figure 10 — network bandwidth overhead vs. redundancy ratio.

Paper protocol (Section IV-B4): the Figure-7 runs, scored by total
bytes pushed up the uplink (features, thumbnails, and images).

Expected shape: Direct flat; SmartEye/MRC fall with the ratio, MRC "a
little more" than SmartEye (thumbnail feedback); BEES far below all —
the paper reports 77.4-79.2% below SmartEye.
"""

from __future__ import annotations

from repro.analysis.reporting import format_bytes, format_table

from common import REDUNDANCY_RATIOS, run_comparison


def run_figure10():
    return {ratio: run_comparison(ratio, seed=2) for ratio in REDUNDANCY_RATIOS}


def test_fig10_bandwidth_overhead(benchmark, emit):
    sweep = benchmark.pedantic(run_figure10, rounds=1, iterations=1)
    scheme_names = list(next(iter(sweep.values())).keys())
    emit(
        "Figure 10 — bandwidth overhead vs. cross-batch redundancy ratio",
        format_table(
            ["redundancy"] + scheme_names,
            [
                [f"{int(ratio * 100)}%"]
                + [format_bytes(sweep[ratio][name].bytes_sent) for name in scheme_names]
                for ratio in REDUNDANCY_RATIOS
            ],
        ),
    )

    for ratio in REDUNDANCY_RATIOS:
        reports = sweep[ratio]
        # BEES sends the least at every ratio.
        bees = reports["BEES"].bytes_sent
        for name in ("Direct Upload", "SmartEye", "MRC"):
            assert bees < reports[name].bytes_sent

    # Smart schemes send less as redundancy rises; Direct is flat.
    for name in ("SmartEye", "MRC", "BEES"):
        series = [sweep[ratio][name].bytes_sent for ratio in REDUNDANCY_RATIOS]
        assert series == sorted(series, reverse=True)
    direct = [sweep[ratio]["Direct Upload"].bytes_sent for ratio in REDUNDANCY_RATIOS]
    assert max(direct) == min(direct)

    # Headline: BEES far below SmartEye (paper: 77.4-79.2% less).
    mid = sweep[0.5]
    saving = 1 - mid["BEES"].bytes_sent / mid["SmartEye"].bytes_sent
    assert saving > 0.5

    # MRC vs SmartEye stay comparable (thumbnails vs. bigger features).
    for ratio in REDUNDANCY_RATIOS:
        ratio_bytes = sweep[ratio]["MRC"].bytes_sent / sweep[ratio]["SmartEye"].bytes_sent
        assert 0.7 < ratio_bytes < 1.3
