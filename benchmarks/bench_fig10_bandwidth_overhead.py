"""Figure 10 — network bandwidth overhead vs. redundancy ratio.

Paper protocol (Section IV-B4): the Figure-7 runs, scored by total
bytes pushed up the uplink (features, thumbnails, and images).

Expected shape: Direct flat; SmartEye/MRC fall with the ratio, MRC "a
little more" than SmartEye (thumbnail feedback); BEES far below all —
the paper reports 77.4-79.2% below SmartEye.
"""

from __future__ import annotations

from repro.analysis.reporting import format_bytes, format_table

from common import (
    BATCH_SIZE,
    IN_BATCH_SIMILAR,
    REDUNDANCY_RATIOS,
    merge_params,
    report_summary,
    run_comparison,
)

PARAMS = {
    "n_images": BATCH_SIZE,
    "n_inbatch_similar": IN_BATCH_SIMILAR,
    "ratios": list(REDUNDANCY_RATIOS),
}
QUICK_PARAMS = {"n_images": 12, "n_inbatch_similar": 2, "ratios": [0.0, 0.5]}


def run(params: "dict | None" = None) -> dict:
    """Registered bench entry point (``repro bench run``)."""
    p = merge_params(PARAMS, params)
    sweep = run_figure10(
        ratios=p["ratios"],
        n_images=p["n_images"],
        n_inbatch_similar=p["n_inbatch_similar"],
    )
    return {
        "bandwidth": {
            str(ratio): {
                name: report_summary(report) for name, report in reports.items()
            }
            for ratio, reports in sweep.items()
        }
    }


def run_figure10(
    ratios=REDUNDANCY_RATIOS,
    n_images: int = BATCH_SIZE,
    n_inbatch_similar: int = IN_BATCH_SIMILAR,
):
    return {
        ratio: run_comparison(
            ratio, seed=2, n_images=n_images, n_inbatch_similar=n_inbatch_similar
        )
        for ratio in ratios
    }


def test_fig10_bandwidth_overhead(benchmark, emit):
    sweep = benchmark.pedantic(run_figure10, rounds=1, iterations=1)
    scheme_names = list(next(iter(sweep.values())).keys())
    emit(
        "Figure 10 — bandwidth overhead vs. cross-batch redundancy ratio",
        format_table(
            ["redundancy"] + scheme_names,
            [
                [f"{int(ratio * 100)}%"]
                + [format_bytes(sweep[ratio][name].sent_bytes) for name in scheme_names]
                for ratio in REDUNDANCY_RATIOS
            ],
        ),
    )

    for ratio in REDUNDANCY_RATIOS:
        reports = sweep[ratio]
        # BEES sends the least at every ratio.
        bees = reports["BEES"].sent_bytes
        for name in ("Direct Upload", "SmartEye", "MRC"):
            assert bees < reports[name].sent_bytes

    # Smart schemes send less as redundancy rises; Direct is flat.
    for name in ("SmartEye", "MRC", "BEES"):
        series = [sweep[ratio][name].sent_bytes for ratio in REDUNDANCY_RATIOS]
        assert series == sorted(series, reverse=True)
    direct = [sweep[ratio]["Direct Upload"].sent_bytes for ratio in REDUNDANCY_RATIOS]
    assert max(direct) == min(direct)

    # Headline: BEES far below SmartEye (paper: 77.4-79.2% less).
    mid = sweep[0.5]
    saving = 1 - mid["BEES"].sent_bytes / mid["SmartEye"].sent_bytes
    assert saving > 0.5

    # MRC vs SmartEye stay comparable (thumbnails vs. bigger features).
    for ratio in REDUNDANCY_RATIOS:
        ratio_bytes = sweep[ratio]["MRC"].sent_bytes / sweep[ratio]["SmartEye"].sent_bytes
        assert 0.7 < ratio_bytes < 1.3
