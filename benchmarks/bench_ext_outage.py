"""Extension — behaviour under network outages and chunk loss.

The paper's motivation is damaged infrastructure, but its evaluation
uses a steadily-fluctuating link.  Two sweeps:

* **outage** — Gilbert-model outage bursts (the uplink collapses to a
  trickle for stretches of transfers), sweeping outage severity: as
  the network degrades, every avoided upload is worth more, so BEES'
  delay advantage over Direct Upload *grows* with severity;
* **loss** — chunk drops + bit errors on a
  :class:`~repro.network.LossyChannel`, comparing the two chunked
  recovery strategies (per-chunk ARQ vs k-replica majority voting) on
  delivery coverage, delay, and wire bytes as the loss rate climbs.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.baselines import DirectUpload
from repro.core.client import BeesScheme
from repro.errors import NetworkError
from repro.network.link import Uplink
from repro.network.lossy import LossyChannel
from repro.network.outage import OutageChannel
from repro.network.transfer import ChunkedTransport
from repro.sim.device import Smartphone
from repro.sim.session import build_server

from common import BATCH_SIZE, IN_BATCH_SIMILAR, disaster_batch, merge_params, report_summary

OUTAGE_LEVELS = (0.0, 0.1, 0.25)
REDUNDANCY = 0.5

#: Chunk-drop rates swept by the loss comparison.
LOSS_LEVELS = (0.0, 0.05, 0.15)
#: Bit-error rate paired with every non-zero drop rate.
LOSS_BER = 2e-6
#: Payloads per (level, strategy) cell — one "image" each.
LOSS_TRANSFERS = 12
LOSS_PAYLOAD_BYTES = 50_000
LOSS_CHUNK_BYTES = 4_096

#: The recovery strategies the loss sweep compares.
LOSS_STRATEGIES = (
    ("arq", {"strategy": "arq"}),
    ("replica-3", {"strategy": "replica", "replicas": 3}),
    ("replica-5", {"strategy": "replica", "replicas": 5}),
)

PARAMS = {
    "n_images": BATCH_SIZE,
    "n_inbatch_similar": IN_BATCH_SIMILAR,
    "outage_levels": list(OUTAGE_LEVELS),
    "loss_levels": list(LOSS_LEVELS),
    "loss_transfers": LOSS_TRANSFERS,
}
QUICK_PARAMS = {
    "n_images": 12,
    "n_inbatch_similar": 2,
    "outage_levels": [0.0, 0.25],
    "loss_levels": [0.0, 0.15],
    "loss_transfers": 6,
}


def run(params: "dict | None" = None) -> dict:
    """Registered bench entry point (``repro bench run``)."""
    p = merge_params(PARAMS, params)
    results = run_outage_sweep(
        outage_levels=p["outage_levels"],
        n_images=p["n_images"],
        n_inbatch_similar=p["n_inbatch_similar"],
    )
    loss = run_loss_sweep(
        loss_levels=p["loss_levels"], n_transfers=p["loss_transfers"]
    )
    return {
        "outage": {
            str(outage): {
                name: report_summary(report) for name, report in reports.items()
            }
            for outage, reports in results.items()
        },
        "loss": {
            str(level): cells for level, cells in loss.items()
        },
    }


def run_outage_sweep(
    outage_levels=OUTAGE_LEVELS,
    n_images: int = BATCH_SIZE,
    n_inbatch_similar: int = IN_BATCH_SIMILAR,
):
    data, batch = disaster_batch(
        seed=8, n_images=n_images, n_inbatch_similar=n_inbatch_similar
    )
    partners = data.cross_batch_partners(batch, REDUNDANCY, seed=108)
    results = {}
    for outage in outage_levels:
        per_scheme = {}
        for scheme in (DirectUpload(), BeesScheme()):
            device = Smartphone(
                uplink=Uplink(
                    channel=OutageChannel(
                        outage_probability=outage,
                        recovery_probability=0.4,
                        seed=11,
                    )
                )
            )
            report = scheme.process_batch(device, build_server(scheme, partners), batch)
            per_scheme[scheme.name] = report
        results[outage] = per_scheme
    return results


def run_loss_sweep(
    loss_levels=LOSS_LEVELS, n_transfers: int = LOSS_TRANSFERS
):
    """ARQ vs k-replica voting across chunk-loss severities.

    Per (loss level, strategy) cell: *n_transfers* image-sized payloads
    through one lossy chunked uplink.  ``coverage`` counts transfers
    delivered *intact* (ARQ failures past the retry budget and replica
    residual corruption both lose coverage); delay and wire bytes show
    what each strategy pays for that coverage.
    """
    results = {}
    for level in loss_levels:
        cells = {}
        for name, transport_kwargs in LOSS_STRATEGIES:
            uplink = Uplink(
                channel=LossyChannel(
                    seed=13,
                    chunk_drop_rate=level,
                    bit_error_rate=LOSS_BER if level > 0 else 0.0,
                ),
                transport=ChunkedTransport(
                    chunk_bytes=LOSS_CHUNK_BYTES, **transport_kwargs
                ),
            )
            delivered = 0
            seconds = 0.0
            for _ in range(n_transfers):
                try:
                    result = uplink.transfer(LOSS_PAYLOAD_BYTES)
                except NetworkError:
                    continue  # retry budget exhausted: coverage loss
                delivered += 1
                seconds += result.seconds
            intact = delivered - uplink.corrupt_transfers
            cells[name] = {
                "coverage": intact / n_transfers,
                "mean_seconds": seconds / delivered if delivered else None,
                "wire_bytes": uplink.sent_bytes,
                "retransmits": uplink.retransmits,
                "vote_corrections": uplink.vote_corrections,
                "residual_corrupt": uplink.residual_corrupt_chunks,
            }
        results[level] = cells
    return results


def test_ext_outage(benchmark, emit):
    results = benchmark.pedantic(run_outage_sweep, rounds=1, iterations=1)
    rows = []
    for outage, reports in results.items():
        direct = reports["Direct Upload"]
        bees = reports["BEES"]
        rows.append(
            [
                f"{outage:.2f}",
                f"{direct.average_image_seconds:.1f} s"
                + (" (battery died)" if direct.halted else ""),
                f"{bees.average_image_seconds:.1f} s"
                + (" (battery died)" if bees.halted else ""),
                f"{direct.average_image_seconds - bees.average_image_seconds:.1f} s",
                f"{direct.total_energy_joules:.0f} J",
                f"{bees.total_energy_joules:.0f} J",
            ]
        )
    emit(
        "Extension — delay & energy under outage bursts (50% redundancy)",
        format_table(
            [
                "outage prob",
                "Direct delay",
                "BEES delay",
                "delay gap",
                "Direct energy",
                "BEES energy",
            ],
            rows,
        ),
    )
    # BEES wins at every severity.
    for reports in results.values():
        assert (
            reports["BEES"].average_image_seconds
            < reports["Direct Upload"].average_image_seconds
        )
    # The absolute delay gap explodes once outages appear.
    ordered = [results[outage] for outage in OUTAGE_LEVELS]
    gap_healthy = (
        ordered[0]["Direct Upload"].average_image_seconds
        - ordered[0]["BEES"].average_image_seconds
    )
    gap_degraded = (
        ordered[1]["Direct Upload"].average_image_seconds
        - ordered[1]["BEES"].average_image_seconds
    )
    assert gap_degraded > 3 * gap_healthy
    # At the worst severity Direct Upload cannot even finish the batch
    # on a full battery, while BEES completes it.
    worst = ordered[-1]
    assert worst["Direct Upload"].halted
    assert not worst["BEES"].halted


def test_ext_outage_loss(benchmark, emit):
    results = benchmark.pedantic(run_loss_sweep, rounds=1, iterations=1)
    rows = []
    for level, cells in results.items():
        for name, cell in cells.items():
            rows.append(
                [
                    f"{level:.2f}",
                    name,
                    f"{cell['coverage']:.2f}",
                    (
                        f"{cell['mean_seconds']:.1f} s"
                        if cell["mean_seconds"] is not None
                        else "—"
                    ),
                    f"{cell['wire_bytes'] / 1_000:.0f} kB",
                    str(cell["retransmits"]),
                    str(cell["residual_corrupt"]),
                ]
            )
    emit(
        "Extension — chunk-loss recovery: ARQ vs k-replica voting "
        f"({LOSS_TRANSFERS} x {LOSS_PAYLOAD_BYTES // 1000} kB payloads)",
        format_table(
            [
                "drop rate",
                "strategy",
                "coverage",
                "mean delay",
                "wire",
                "retransmits",
                "residual",
            ],
            rows,
        ),
    )
    clean = results[LOSS_LEVELS[0]]
    worst = results[LOSS_LEVELS[-1]]
    payload_total = LOSS_TRANSFERS * LOSS_PAYLOAD_BYTES
    # Zero loss: every strategy covers everything; ARQ costs exactly the
    # payload while k replicas cost exactly k x.
    for name, cell in clean.items():
        assert cell["coverage"] == 1.0
        assert cell["retransmits"] == 0
    assert clean["arq"]["wire_bytes"] == payload_total
    assert clean["replica-3"]["wire_bytes"] == 3 * payload_total
    assert clean["replica-5"]["wire_bytes"] == 5 * payload_total
    # Under loss, ARQ buys full intact coverage with retransmissions
    # (loss-proportional bytes); replicas pay a fixed k x regardless.
    assert worst["arq"]["coverage"] == 1.0
    assert worst["arq"]["retransmits"] > 0
    assert worst["arq"]["wire_bytes"] > payload_total
    assert worst["arq"]["wire_bytes"] < 2 * payload_total
    assert worst["replica-5"]["coverage"] >= worst["replica-3"]["coverage"]
    # ARQ delay grows with the loss rate (backoffs + resends).
    assert worst["arq"]["mean_seconds"] > clean["arq"]["mean_seconds"]
