"""Extension — behaviour under network outages.

The paper's motivation is damaged infrastructure, but its evaluation
uses a steadily-fluctuating link.  This bench injects Gilbert-model
outage bursts (the uplink collapses to a trickle for stretches of
transfers) and sweeps outage severity: as the network degrades, every
avoided upload is worth more, so BEES' delay advantage over Direct
Upload *grows* with severity.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.baselines import DirectUpload
from repro.core.client import BeesScheme
from repro.network.link import Uplink
from repro.network.outage import OutageChannel
from repro.sim.device import Smartphone
from repro.sim.session import build_server

from common import BATCH_SIZE, IN_BATCH_SIMILAR, disaster_batch, merge_params, report_summary

OUTAGE_LEVELS = (0.0, 0.1, 0.25)
REDUNDANCY = 0.5

PARAMS = {
    "n_images": BATCH_SIZE,
    "n_inbatch_similar": IN_BATCH_SIMILAR,
    "outage_levels": list(OUTAGE_LEVELS),
}
QUICK_PARAMS = {
    "n_images": 12,
    "n_inbatch_similar": 2,
    "outage_levels": [0.0, 0.25],
}


def run(params: "dict | None" = None) -> dict:
    """Registered bench entry point (``repro bench run``)."""
    p = merge_params(PARAMS, params)
    results = run_outage_sweep(
        outage_levels=p["outage_levels"],
        n_images=p["n_images"],
        n_inbatch_similar=p["n_inbatch_similar"],
    )
    return {
        "outage": {
            str(outage): {
                name: report_summary(report) for name, report in reports.items()
            }
            for outage, reports in results.items()
        }
    }


def run_outage_sweep(
    outage_levels=OUTAGE_LEVELS,
    n_images: int = BATCH_SIZE,
    n_inbatch_similar: int = IN_BATCH_SIMILAR,
):
    data, batch = disaster_batch(
        seed=8, n_images=n_images, n_inbatch_similar=n_inbatch_similar
    )
    partners = data.cross_batch_partners(batch, REDUNDANCY, seed=108)
    results = {}
    for outage in outage_levels:
        per_scheme = {}
        for scheme in (DirectUpload(), BeesScheme()):
            device = Smartphone(
                uplink=Uplink(
                    channel=OutageChannel(
                        outage_probability=outage,
                        recovery_probability=0.4,
                        seed=11,
                    )
                )
            )
            report = scheme.process_batch(device, build_server(scheme, partners), batch)
            per_scheme[scheme.name] = report
        results[outage] = per_scheme
    return results


def test_ext_outage(benchmark, emit):
    results = benchmark.pedantic(run_outage_sweep, rounds=1, iterations=1)
    rows = []
    for outage, reports in results.items():
        direct = reports["Direct Upload"]
        bees = reports["BEES"]
        rows.append(
            [
                f"{outage:.2f}",
                f"{direct.average_image_seconds:.1f} s"
                + (" (battery died)" if direct.halted else ""),
                f"{bees.average_image_seconds:.1f} s"
                + (" (battery died)" if bees.halted else ""),
                f"{direct.average_image_seconds - bees.average_image_seconds:.1f} s",
                f"{direct.total_energy_joules:.0f} J",
                f"{bees.total_energy_joules:.0f} J",
            ]
        )
    emit(
        "Extension — delay & energy under outage bursts (50% redundancy)",
        format_table(
            [
                "outage prob",
                "Direct delay",
                "BEES delay",
                "delay gap",
                "Direct energy",
                "BEES energy",
            ],
            rows,
        ),
    )
    # BEES wins at every severity.
    for reports in results.values():
        assert (
            reports["BEES"].average_image_seconds
            < reports["Direct Upload"].average_image_seconds
        )
    # The absolute delay gap explodes once outages appear.
    ordered = [results[outage] for outage in OUTAGE_LEVELS]
    gap_healthy = (
        ordered[0]["Direct Upload"].average_image_seconds
        - ordered[0]["BEES"].average_image_seconds
    )
    gap_degraded = (
        ordered[1]["Direct Upload"].average_image_seconds
        - ordered[1]["BEES"].average_image_seconds
    )
    assert gap_degraded > 3 * gap_healthy
    # At the worst severity Direct Upload cannot even finish the batch
    # on a full battery, while BEES completes it.
    worst = ordered[-1]
    assert worst["Direct Upload"].halted
    assert not worst["BEES"].halted
