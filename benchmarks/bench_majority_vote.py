"""Extension — majority-vote kernel microbenchmark.

Guards the numpy bit-plane voting kernel
(:func:`repro.kernels.majority.majority_vote_bytes`) that the replica
recovery strategy runs on every chunk: it is timed against a frozen
copy of the per-byte pure-Python reference it replaced, with the voted
payload asserted byte-identical while it measures.  The gate is the
acceptance floor from the README's "Degraded networks" section:
>= ``MIN_MAJORITY_SPEEDUP`` x at a 64 KiB chunk with 5 replicas.

The legacy copy is deliberately self-contained (not imported from
``tests/``): a bench artifact must keep meaning the same thing even if
the test suite's reference module moves.
"""

from __future__ import annotations

# beeslint: disable-file=raw-timing (micro-benchmark timing loops are the measurement)

import time

import numpy as np

from repro.analysis.reporting import format_table
from repro.kernels.majority import majority_vote_bytes
from repro.network import corrupt_bytes, pattern_payload

from common import merge_params

PARAMS = {
    "seed": 0,
    "sizes": [4_096, 16_384, 65_536],
    "replica_counts": [3, 5],
    "flips_per_replica": 64,
    "repeats": 3,
}
QUICK_PARAMS = {
    "sizes": [4_096, 65_536],
    "replica_counts": [5],
    "repeats": 2,
}

#: The acceptance floor asserted by ``test_majority_vote``: the
#: bit-plane kernel must beat the per-byte reference by at least this
#: factor on the gated cell (64 KiB payload, 5 replicas).
MIN_MAJORITY_SPEEDUP = 3.0
GATE_SIZE = 65_536
GATE_REPLICAS = 5

# -- frozen per-byte reference ---------------------------------------------


def legacy_majority_vote(replicas):
    """Per-byte, per-bit Python voting loop (strict bit majority)."""
    k = len(replicas)
    n = len(replicas[0])
    winner = bytearray(n)
    for position in range(n):
        value = 0
        for bit in range(8):
            ones = 0
            for replica in replicas:
                ones += (replica[position] >> bit) & 1
            if 2 * ones > k:
                value |= 1 << bit
        winner[position] = value
    return bytes(winner)


# -- workload --------------------------------------------------------------


def _corrupted_replicas(n_bytes, k, flips_per_replica, seed):
    """k copies of one payload, each with its own scattered bit flips.

    Flip positions are drawn disjointly across replicas, so every
    corrupted bit is a strict minority and the vote must undo it.
    """
    payload = pattern_payload(n_bytes)
    rng = np.random.default_rng(seed)
    positions = rng.choice(n_bytes * 8, size=k * flips_per_replica, replace=False)
    replicas = [
        corrupt_bytes(
            payload,
            [int(p) for p in positions[i * flips_per_replica:(i + 1) * flips_per_replica]],
        )
        for i in range(k)
    ]
    return payload, replicas


def _best_of(repeats, fn, *args):
    """min-of-N wall time plus the last return value."""
    best = float("inf")
    value = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        value = fn(*args)
        best = min(best, time.perf_counter() - started)
    return best, value


def run(params: "dict | None" = None) -> dict:
    """Registered bench entry point (``repro bench run``)."""
    p = merge_params(PARAMS, params)
    cells = {}
    for n_bytes in p["sizes"]:
        for k in p["replica_counts"]:
            payload, replicas = _corrupted_replicas(
                n_bytes, k, p["flips_per_replica"], p["seed"]
            )
            legacy_seconds, expected = _best_of(
                p["repeats"], legacy_majority_vote, replicas
            )
            kernel_seconds, actual = _best_of(
                p["repeats"], majority_vote_bytes, replicas
            )
            assert actual == expected
            # Few corruptions per replica, never colliding in a bit
            # majority: the vote must recover the original exactly.
            assert actual == payload
            cells[f"{n_bytes}x{k}"] = {
                "n_bytes": int(n_bytes),
                "replicas": int(k),
                "legacy_seconds": legacy_seconds,
                "kernel_seconds": kernel_seconds,
                "speedup": legacy_seconds / max(kernel_seconds, 1e-9),
            }
    return cells


def test_majority_vote(benchmark, emit):
    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            f"{cell['n_bytes'] // 1024} KiB",
            f"k={cell['replicas']}",
            f"{cell['legacy_seconds']:.4f} s",
            f"{cell['kernel_seconds']:.4f} s",
            f"{cell['speedup']:.1f}x",
        ]
        for cell in cells.values()
    ]
    emit(
        "Majority-vote kernel — numpy bit-plane vs. per-byte reference "
        "(voted payloads asserted identical per cell)",
        format_table(["chunk", "replicas", "legacy", "kernel", "speedup"], rows),
    )
    gate = cells[f"{GATE_SIZE}x{GATE_REPLICAS}"]
    assert gate["speedup"] >= MIN_MAJORITY_SPEEDUP, (
        f"majority-vote kernel below {MIN_MAJORITY_SPEEDUP}x at "
        f"{GATE_SIZE // 1024} KiB x k={GATE_REPLICAS}"
    )
