"""Figure 8 — energy savings from energy-aware adaptation.

Paper protocol (Section IV-B3(2)): the same disaster batch (25%
cross-batch redundancy) is uploaded by BEES at remaining-energy levels
100/70/40/10%; the figure breaks the energy into feature extraction,
feature upload, and image upload.

Expected shape: total, extraction, and image-upload energies all fall
as Ebat falls (EAC compresses bitmaps harder, EAU shrinks uploads, EDR
eliminates more); feature-upload energy is small throughout
("lightweight ORB features").
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.core.client import BeesScheme
from repro.energy import (
    COMPRESSION,
    FEATURE_EXTRACTION,
    FEATURE_UPLOAD,
    IMAGE_UPLOAD,
)
from repro.sim.device import Smartphone
from repro.sim.session import build_server

from common import BATCH_SIZE, IN_BATCH_SIMILAR, disaster_batch, merge_params

EBAT_LEVELS = (1.0, 0.7, 0.4, 0.1)

PARAMS = {"n_images": BATCH_SIZE, "n_inbatch_similar": IN_BATCH_SIMILAR}
QUICK_PARAMS = {"n_images": 12, "n_inbatch_similar": 2}


def run(params: "dict | None" = None) -> dict:
    """Registered bench entry point (``repro bench run``)."""
    p = merge_params(PARAMS, params)
    results = run_figure8(
        n_images=p["n_images"], n_inbatch_similar=p["n_inbatch_similar"]
    )
    return {
        "energy_by_category": {
            str(ebat): {cat: float(j) for cat, j in by_category.items()}
            for ebat, by_category in results.items()
        }
    }


def run_figure8(
    n_images: int = BATCH_SIZE, n_inbatch_similar: int = IN_BATCH_SIMILAR
):
    data, batch = disaster_batch(
        seed=3, n_images=n_images, n_inbatch_similar=n_inbatch_similar
    )
    partners = data.cross_batch_partners(batch, 0.25, seed=103)
    results = {}
    for ebat in EBAT_LEVELS:
        scheme = BeesScheme()
        device = Smartphone()
        device.battery.recharge(ebat)
        report = scheme.process_batch(device, build_server(scheme, partners), batch)
        results[ebat] = report.energy_by_category
    return results


def test_fig8_energy_adaptation(benchmark, emit):
    results = benchmark.pedantic(run_figure8, rounds=1, iterations=1)
    categories = (FEATURE_EXTRACTION, FEATURE_UPLOAD, COMPRESSION, IMAGE_UPLOAD)
    emit(
        "Figure 8 — BEES energy breakdown (J) vs. remaining energy",
        format_table(
            ["Ebat"] + list(categories) + ["total"],
            [
                [f"{int(ebat * 100)}%"]
                + [f"{results[ebat].get(cat, 0.0):.2f}" for cat in categories]
                + [f"{sum(results[ebat].values()):.2f}"]
                for ebat in EBAT_LEVELS
            ],
        ),
    )
    totals = [sum(results[ebat].values()) for ebat in EBAT_LEVELS]
    # Total energy falls as the battery drains (EAAS working).
    assert totals == sorted(totals, reverse=True)
    # Extraction energy falls with Ebat (EAC).
    extraction = [results[ebat][FEATURE_EXTRACTION] for ebat in EBAT_LEVELS]
    assert extraction == sorted(extraction, reverse=True)
    # Image-upload energy falls with Ebat (EAU + EDR).
    uploads = [results[ebat][IMAGE_UPLOAD] for ebat in EBAT_LEVELS]
    assert uploads == sorted(uploads, reverse=True)
    # Feature upload stays a small share throughout (lightweight ORB).
    for ebat in EBAT_LEVELS:
        assert results[ebat][FEATURE_UPLOAD] < 0.35 * sum(results[ebat].values())
