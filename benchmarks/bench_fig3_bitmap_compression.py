"""Figure 3 — precision and energy vs. bitmap compression proportion.

Paper protocol (Section III-A): Kentucky images are queried against the
index after compressing the queried bitmaps with proportions 0..0.9;
normalized top-4 precision (3a) and normalized feature-extraction energy
(3b) are reported per proportion.

Expected shape: precision stays >= ~0.9 up to C = 0.4 and degrades
beyond; energy falls monotonically (the EAC rationale).
"""

from __future__ import annotations


from repro.analysis.precision import dataset_precision
from repro.analysis.reporting import format_table
from repro.core.server import BeesServer
from repro.datasets.kentucky import SyntheticKentucky
from repro.energy import EnergyCostModel
from repro.features.orb import OrbExtractor
from repro.imaging.bitmap import compress_image

from common import merge_params

N_GROUPS = 30
PROPORTIONS = [round(0.1 * i, 1) for i in range(10)]  # 0.0 .. 0.9

PARAMS = {"n_groups": N_GROUPS}
QUICK_PARAMS = {"n_groups": 8}


def run(params: "dict | None" = None) -> dict:
    """Registered bench entry point (``repro bench run``)."""
    p = merge_params(PARAMS, params)
    return {"rows": run_figure3(n_groups=p["n_groups"])}


def run_figure3(n_groups: int = N_GROUPS):
    dataset = SyntheticKentucky(n_groups=n_groups)
    extractor = OrbExtractor()
    cost_model = EnergyCostModel()

    server = BeesServer()
    group_of = {}
    for image in dataset:
        server.receive_image(image, extractor.extract(image))
        group_of[image.image_id] = image.group_id

    queries = dataset.query_images()
    rows = []
    for proportion in PROPORTIONS:
        query_pairs = [
            (image, extractor.extract(compress_image(image, proportion)))
            for image in queries
        ]
        precision = dataset_precision(server, query_pairs, group_of)
        energy = cost_model.extraction_cost(
            "orb", queries[0].nominal_pixels, proportion
        ).joules
        rows.append((proportion, precision, energy))

    base_precision = rows[0][1]
    base_energy = rows[0][2]
    return [
        {
            "proportion": proportion,
            "norm_precision": precision / base_precision,
            "norm_energy": energy / base_energy,
        }
        for proportion, precision, energy in rows
    ]


def test_fig3_bitmap_compression(benchmark, emit):
    rows = benchmark.pedantic(run_figure3, rounds=1, iterations=1)
    emit(
        "Figure 3 — bitmap compression proportion vs. precision & energy",
        format_table(
            ["proportion", "norm. precision", "norm. energy"],
            [
                [r["proportion"], f"{r['norm_precision']:.3f}", f"{r['norm_energy']:.3f}"]
                for r in rows
            ],
        ),
    )
    by_c = {r["proportion"]: r for r in rows}
    # Paper: C = 0.4 keeps normalized precision above ~0.9.
    assert by_c[0.4]["norm_precision"] > 0.85  # beeslint: disable=paper-constants (precision bound, not the quality proportion)
    # Energy decreases monotonically with the proportion.
    energies = [r["norm_energy"] for r in rows]
    assert energies == sorted(energies, reverse=True)
    # Compression at 0.4 removes a substantial share of the energy.
    assert by_c[0.4]["norm_energy"] < 0.5
    # Heavy compression eventually costs real precision.
    assert by_c[0.9]["norm_precision"] < by_c[0.0]["norm_precision"]
