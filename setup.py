"""Setup shim: metadata lives in pyproject.toml.

Kept so `python setup.py develop` works in offline environments that
lack the `wheel` package required by pip's PEP-660 editable installs.
"""
from setuptools import setup

setup()
