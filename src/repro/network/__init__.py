"""Network substrate: fluctuating low-bandwidth uplink emulation.

Layers, from kindest to cruellest: :class:`FluctuatingChannel` (scarce
but reliable goodput), :class:`OutageChannel` (random Gilbert outage
bursts), :class:`LossyChannel` (bit flips + chunk drops), and
:class:`ContactSchedule` (hard intermittent contact windows).  The
:class:`ChunkedTransport` on the :class:`Uplink` recovers from the
lossy layers by per-chunk ARQ or k-replica majority voting.
"""

from .channel import DEFAULT_MEDIAN_BPS, KBPS, FluctuatingChannel
from .link import TransferResult, Uplink
from .lossy import CONTACT_FATES, ChunkFate, ContactLoss, LossyChannel, corrupt_bytes
from .outage import ContactSchedule, OutageChannel
from .transfer import (
    DEFAULT_CHUNK_BYTES,
    STRATEGIES,
    ChunkedOutcome,
    ChunkedTransport,
    DegradedNetConfig,
    pattern_payload,
    reassemble,
    split_payload,
)

__all__ = [
    "CONTACT_FATES",
    "DEFAULT_CHUNK_BYTES",
    "DEFAULT_MEDIAN_BPS",
    "KBPS",
    "STRATEGIES",
    "ChunkFate",
    "ChunkedOutcome",
    "ChunkedTransport",
    "ContactLoss",
    "ContactSchedule",
    "DegradedNetConfig",
    "FluctuatingChannel",
    "LossyChannel",
    "OutageChannel",
    "TransferResult",
    "Uplink",
    "corrupt_bytes",
    "pattern_payload",
    "reassemble",
    "split_payload",
]
