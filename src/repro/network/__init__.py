"""Network substrate: fluctuating low-bandwidth uplink emulation."""

from .channel import DEFAULT_MEDIAN_BPS, KBPS, FluctuatingChannel
from .link import TransferResult, Uplink
from .outage import OutageChannel

__all__ = [
    "DEFAULT_MEDIAN_BPS",
    "KBPS",
    "FluctuatingChannel",
    "OutageChannel",
    "TransferResult",
    "Uplink",
]
