"""Corrupting channels — the degraded-network substrate.

The base :class:`~repro.network.channel.FluctuatingChannel` models
*scarce but reliable* bandwidth: every byte pushed arrives.  Disasters
are worse — bits flip in flight and whole chunks vanish — which is the
regime CARE ("Content Aware Redundancy Elimination for Disaster
Communications on Damaged Networks") targets and the degraded-network
transfer layer (:mod:`repro.network.transfer`) recovers from.

:class:`LossyChannel` layers a seeded per-bit error rate and a per-chunk
drop rate on the fluctuating goodput.  Fates are drawn from the same
generator that samples goodput, and — deliberately — **no random draw
happens when both rates are zero**, so a zero-loss ``LossyChannel``
consumes exactly the same RNG stream as a plain
``FluctuatingChannel`` and the zero-loss differential suite can demand
byte-identical behaviour.

:class:`ContactLoss` is the DTN analogue: per-transmission drop and
corruption probabilities applied to epidemic relay contacts
(:mod:`repro.dtn.routing`), where the epidemic copies themselves are
the replicas that gateway-side reconciliation votes over.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import NetworkError
from .channel import FluctuatingChannel

#: A transmission fate drawn by :meth:`ContactLoss.fate`.
CONTACT_FATES = ("ok", "drop", "corrupt")


@dataclass(frozen=True)
class ChunkFate:
    """What the channel did to one chunk transmission.

    ``flip_bits`` holds the corrupted bit positions (bit ``8 * i + b``
    is bit ``b``, LSB-first, of byte ``i``); it is empty for an intact
    or dropped chunk.
    """

    dropped: bool = False
    flip_bits: "tuple[int, ...]" = ()

    @property
    def corrupted(self) -> bool:
        return bool(self.flip_bits)


#: The fate of every chunk on a healthy channel.
INTACT_FATE = ChunkFate()


def corrupt_bytes(data: bytes, flip_bits: "tuple[int, ...]") -> bytes:
    """*data* with the given bit positions flipped (LSB-first per byte)."""
    if not flip_bits:
        return data
    corrupted = bytearray(data)
    for position in flip_bits:
        corrupted[position >> 3] ^= 1 << (position & 7)
    return bytes(corrupted)


@dataclass
class LossyChannel(FluctuatingChannel):
    """A fluctuating channel that corrupts bits and drops chunks.

    Both impairments are per *chunk transmission* (the unit the chunked
    transport sends), drawn from the channel's seeded generator: a
    chunk is first dropped with ``chunk_drop_rate``; a surviving chunk
    has each bit flipped independently with ``bit_error_rate``
    (sampled as a binomial flip count plus uniform positions — the
    exact same distribution at a fraction of the draws).
    """

    bit_error_rate: float = 0.0
    chunk_drop_rate: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.bit_error_rate < 1.0:
            raise NetworkError(
                f"bit_error_rate must be in [0, 1), got {self.bit_error_rate}"
            )
        if not 0.0 <= self.chunk_drop_rate < 1.0:
            raise NetworkError(
                f"chunk_drop_rate must be in [0, 1), got {self.chunk_drop_rate}"
            )

    def chunk_fate(self, chunk_index: int, attempt: int, n_bytes: int) -> ChunkFate:
        """Draw the fate of one chunk transmission.

        ``chunk_index`` and ``attempt`` are unused by the random model
        but are the hook deterministic fault plans key their scripted
        fates on (``tests/network/faults.py`` overrides this method).
        """
        del chunk_index, attempt  # the random model is memoryless
        if self.chunk_drop_rate > 0.0 and self._rng.random() < self.chunk_drop_rate:
            return ChunkFate(dropped=True)
        if self.bit_error_rate > 0.0 and n_bytes > 0:
            n_bits = 8 * n_bytes
            n_flips = int(self._rng.binomial(n_bits, self.bit_error_rate))
            if n_flips:
                positions = self._rng.choice(n_bits, size=n_flips, replace=False)
                return ChunkFate(
                    flip_bits=tuple(int(p) for p in np.sort(positions))
                )
        return INTACT_FATE


@dataclass
class ContactLoss:
    """Per-transmission loss for DTN relay contacts.

    Draws come from the *simulation's* generator (passed in), so one
    seed still drives the whole contact process; with both rates zero
    no draw happens and the loss-free dynamics are untouched.
    """

    drop_rate: float = 0.0
    corrupt_rate: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_rate < 1.0:
            raise NetworkError(f"drop_rate must be in [0, 1), got {self.drop_rate}")
        if not 0.0 <= self.corrupt_rate < 1.0:
            raise NetworkError(
                f"corrupt_rate must be in [0, 1), got {self.corrupt_rate}"
            )

    def fate(self, rng: "np.random.Generator") -> str:
        """``"ok"``, ``"drop"``, or ``"corrupt"`` for one transmission."""
        if self.drop_rate > 0.0 and rng.random() < self.drop_rate:
            return "drop"
        if self.corrupt_rate > 0.0 and rng.random() < self.corrupt_rate:
            return "corrupt"
        return "ok"
