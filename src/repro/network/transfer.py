"""The chunked, corruption-aware transfer layer.

BEES' evaluation assumes a lossy-but-*reliable* low-bandwidth uplink
(Section IV-A's 0–512 Kbps emulation): every byte pushed arrives.  The
situation-awareness setting is disasters, where links flip bits, drop
chunks, and come and go on contact windows.  This module makes the
uplink survive that regime: payloads split into fixed-size chunks sent
over a :class:`~repro.network.lossy.LossyChannel`, with two recovery
strategies —

``arq``
    Per-chunk checksum + retransmit: a chunk whose CRC fails (or that
    was dropped outright) is resent after an exponential backoff in
    *simulated* time, up to ``max_retries`` retransmissions; exhausting
    the budget raises :class:`~repro.errors.NetworkError`.  Delivery is
    always intact, at the price of loss-dependent extra bytes and delay.

``replica``
    Forward redundancy: every chunk is sent ``replicas`` times
    back-to-back (no return channel needed) and the receiver
    reconstructs by byte-wise majority vote
    (:func:`repro.kernels.majority.majority_vote_bytes`).  Bytes cost
    is a fixed ``k``×; residual corruption is possible (counted, never
    silently ignored) when a byte position is corrupted in half or
    more of the surviving replicas.

Timing keeps the simulation's per-transfer discipline: goodput is
sampled **once per payload** (see :mod:`repro.network.channel` for the
rationale) and the total is one closed formula —
``latency + waits + turnarounds + backoffs + wire_bytes * 8 / goodput``
— so a zero-loss chunked transfer is *bit-identical* in seconds (and
therefore joules) to the whole-payload path it replaced, which
``tests/network/test_transfer_differential.py`` pins.  Chunk headers
and acks ride in the simulation's control plane and cost nothing, the
same idealisation the whole-payload path already made.

Every chunk attempt lands in the decision journal (``chunk.send`` /
``chunk.ack`` / ``chunk.vote``) so replay and cross-run diffs cover the
degraded path too.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..errors import NetworkError
from ..kernels.majority import majority_vote_stats
from ..obs.journal import get_journal
from .channel import DEFAULT_MEDIAN_BPS, FluctuatingChannel
from .lossy import INTACT_FATE, ChunkFate, LossyChannel, corrupt_bytes
from .outage import ContactSchedule

#: Default chunk size: small enough that a retransmission is cheap next
#: to a whole image, large enough that per-chunk bookkeeping is noise.
DEFAULT_CHUNK_BYTES = 16 * 1024

#: Default retransmission budget per chunk (ARQ).
DEFAULT_MAX_RETRIES = 8

#: Default replica count per chunk (forward redundancy).
DEFAULT_REPLICAS = 3

#: Default resend rounds when *every* replica of a chunk was dropped.
DEFAULT_MAX_REPLICA_ROUNDS = 3

#: First ARQ backoff; doubles per retry (exponential, simulated time).
DEFAULT_BACKOFF_BASE_SECONDS = 0.05

#: Recovery strategies accepted by :class:`ChunkedTransport`.
STRATEGIES = ("arq", "replica")

#: The repeating byte pattern synthesised payloads are made of.
_PATTERN = np.arange(256, dtype=np.uint8)


def pattern_payload(n_bytes: int) -> bytes:
    """A deterministic pseudo-payload of *n_bytes* (no RNG consumed).

    The simulation tracks payload *sizes*, not contents; the chunked
    path needs real bytes to corrupt, checksum, and vote over, so the
    uplink synthesises this repeating pattern.  Recovery correctness is
    content-independent (corruption positions are random), and using no
    generator keeps the channel's RNG stream identical to the
    whole-payload path.
    """
    if n_bytes < 0:
        raise NetworkError(f"payload must be >= 0 bytes, got {n_bytes}")
    if n_bytes == 0:
        return b""
    repeats = -(-n_bytes // _PATTERN.size)
    return np.tile(_PATTERN, repeats)[:n_bytes].tobytes()


def split_payload(payload: bytes, chunk_bytes: int) -> "list[bytes]":
    """*payload* as consecutive chunks of at most *chunk_bytes*."""
    if chunk_bytes < 1:
        raise NetworkError(f"chunk_bytes must be >= 1, got {chunk_bytes}")
    return [
        payload[start : start + chunk_bytes]
        for start in range(0, len(payload), chunk_bytes)
    ]


def reassemble(pieces: "Mapping[int, bytes]") -> bytes:
    """Join chunks by index — invariant to arrival order.

    Indices must be exactly ``0..len(pieces) - 1``; a gap means a chunk
    never arrived and reassembly must not silently shift the payload.
    """
    for index in range(len(pieces)):
        if index not in pieces:
            raise NetworkError(
                f"cannot reassemble: chunk {index} missing "
                f"({len(pieces)} piece(s) held)"
            )
    return b"".join(pieces[index] for index in range(len(pieces)))


@dataclass(frozen=True)
class ChunkedOutcome:
    """What one chunked payload transfer did, end to end."""

    data: bytes
    seconds: float
    wire_bytes: int
    n_chunks: int
    retransmits: int
    dropped_chunks: int
    corrupted_chunks: int
    vote_corrections: int
    residual_corrupt_chunks: int
    wait_seconds: float


@dataclass
class _Tally:
    """Mutable bookkeeping shared by the per-chunk send loops."""

    clock_seconds: float
    goodput_bps: float
    wire_bytes: int = 0
    retransmits: int = 0
    dropped_chunks: int = 0
    corrupted_chunks: int = 0
    vote_corrections: int = 0
    residual_corrupt_chunks: int = 0
    wait_seconds: float = 0.0
    extra_seconds: float = 0.0


@dataclass(frozen=True)
class ChunkedTransport:
    """Chunking + recovery policy for one uplink.

    Stateless across transfers (all per-payload bookkeeping lives in
    the call), so one instance may serve many devices — the fleet still
    builds one per device for symmetry with channels.
    """

    chunk_bytes: int = DEFAULT_CHUNK_BYTES
    strategy: str = "arq"
    max_retries: int = DEFAULT_MAX_RETRIES
    replicas: int = DEFAULT_REPLICAS
    max_replica_rounds: int = DEFAULT_MAX_REPLICA_ROUNDS
    backoff_base_seconds: float = DEFAULT_BACKOFF_BASE_SECONDS
    schedule: "ContactSchedule | None" = None

    def __post_init__(self) -> None:
        if self.chunk_bytes < 1:
            raise NetworkError(f"chunk_bytes must be >= 1, got {self.chunk_bytes}")
        if self.strategy not in STRATEGIES:
            raise NetworkError(
                f"strategy must be one of {STRATEGIES}, got {self.strategy!r}"
            )
        if self.max_retries < 0:
            raise NetworkError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.replicas < 1:
            raise NetworkError(f"replicas must be >= 1, got {self.replicas}")
        if self.max_replica_rounds < 1:
            raise NetworkError(
                f"max_replica_rounds must be >= 1, got {self.max_replica_rounds}"
            )
        if self.backoff_base_seconds < 0:
            raise NetworkError(
                f"backoff_base_seconds must be >= 0, got {self.backoff_base_seconds}"
            )

    # -- sending ------------------------------------------------------------

    def send(
        self,
        channel: FluctuatingChannel,
        payload: bytes,
        goodput_bps: float,
        latency_seconds: float,
        clock_seconds: float = 0.0,
    ) -> ChunkedOutcome:
        """Deliver *payload* chunk by chunk; returns the reassembly.

        *goodput_bps* is the transfer's single goodput sample (drawn by
        the uplink); *clock_seconds* is the device's simulated clock at
        transfer start, which positions contact windows.
        """
        if goodput_bps <= 0:
            raise NetworkError(f"goodput must be positive, got {goodput_bps}")
        chunks = split_payload(payload, self.chunk_bytes)
        tally = _Tally(
            clock_seconds=clock_seconds + latency_seconds,
            goodput_bps=goodput_bps,
        )
        received: "dict[int, bytes]" = {}
        for index, chunk in enumerate(chunks):
            if self.strategy == "arq":
                received[index] = self._send_arq(channel, index, chunk, tally)
            else:
                received[index] = self._send_replica(channel, index, chunk, tally)
        # One closed formula, not a per-chunk accumulation: with no
        # waits/turnarounds this is bit-identical to the whole-payload
        # path's ``latency + bytes * 8 / goodput`` (the zero-loss
        # differential suite depends on that).
        seconds = (
            latency_seconds
            + tally.wait_seconds
            + tally.extra_seconds
            + tally.wire_bytes * 8.0 / goodput_bps
        )
        return ChunkedOutcome(
            data=reassemble(received),
            seconds=seconds,
            wire_bytes=tally.wire_bytes,
            n_chunks=len(chunks),
            retransmits=tally.retransmits,
            dropped_chunks=tally.dropped_chunks,
            corrupted_chunks=tally.corrupted_chunks,
            vote_corrections=tally.vote_corrections,
            residual_corrupt_chunks=tally.residual_corrupt_chunks,
            wait_seconds=tally.wait_seconds,
        )

    # -- shared mechanics ----------------------------------------------------

    def _transmit(
        self,
        channel: FluctuatingChannel,
        index: int,
        attempt: int,
        chunk: bytes,
        tally: _Tally,
    ) -> ChunkFate:
        """Put one chunk copy on the air; returns its fate."""
        if self.schedule is not None and not self.schedule.is_up(
            tally.clock_seconds
        ):
            opens = self.schedule.next_up_seconds(tally.clock_seconds)
            tally.wait_seconds += opens - tally.clock_seconds
            tally.clock_seconds = opens
        tally.wire_bytes += len(chunk)
        tally.clock_seconds += len(chunk) * 8.0 / tally.goodput_bps
        if isinstance(channel, LossyChannel):
            fate = channel.chunk_fate(index, attempt, len(chunk))
        else:
            fate = INTACT_FATE
        if fate.dropped:
            tally.dropped_chunks += 1
        elif fate.corrupted:
            tally.corrupted_chunks += 1
        return fate

    # -- ARQ -----------------------------------------------------------------

    def _send_arq(
        self,
        channel: FluctuatingChannel,
        index: int,
        chunk: bytes,
        tally: _Tally,
    ) -> bytes:
        expected_crc = zlib.crc32(chunk)
        journal = get_journal()
        attempt = 0
        while True:
            attempt += 1
            fate = self._transmit(channel, index, attempt, chunk, tally)
            arrived = (
                None
                if fate.dropped
                else corrupt_bytes(chunk, fate.flip_bits)
            )
            ok = arrived is not None and zlib.crc32(arrived) == expected_crc
            if journal.enabled:
                journal.emit(
                    "chunk.send",
                    chunk=index,
                    attempt=attempt,
                    chunk_bytes=len(chunk),
                    dropped=fate.dropped,
                    corrupted=fate.corrupted,
                )
            if ok:
                if journal.enabled:
                    journal.emit("chunk.ack", chunk=index, attempts=attempt)
                assert arrived is not None
                return arrived
            if attempt > self.max_retries:
                raise NetworkError(
                    f"chunk {index}: checksum still failing after "
                    f"{self.max_retries} retransmission(s)"
                )
            tally.retransmits += 1
            turnaround = (
                self.backoff_base_seconds * (2.0 ** (attempt - 1))
            )
            tally.extra_seconds += turnaround
            tally.clock_seconds += turnaround

    # -- forward redundancy --------------------------------------------------

    def _send_replica(
        self,
        channel: FluctuatingChannel,
        index: int,
        chunk: bytes,
        tally: _Tally,
    ) -> bytes:
        expected_crc = zlib.crc32(chunk)
        journal = get_journal()
        received: "list[bytes]" = []
        rounds = 0
        while not received:
            rounds += 1
            for replica in range(self.replicas):
                attempt = (rounds - 1) * self.replicas + replica + 1
                fate = self._transmit(channel, index, attempt, chunk, tally)
                if journal.enabled:
                    journal.emit(
                        "chunk.send",
                        chunk=index,
                        attempt=rounds,
                        replica=replica,
                        chunk_bytes=len(chunk),
                        dropped=fate.dropped,
                        corrupted=fate.corrupted,
                    )
                if not fate.dropped:
                    received.append(corrupt_bytes(chunk, fate.flip_bits))
            if not received:
                if rounds >= self.max_replica_rounds:
                    raise NetworkError(
                        f"chunk {index}: every replica dropped in "
                        f"{rounds} round(s)"
                    )
                # A fresh replica round needs a sender timeout + restart.
                tally.extra_seconds += self.backoff_base_seconds * (2.0 ** (rounds - 1))
                tally.clock_seconds += self.backoff_base_seconds * (2.0 ** (rounds - 1))
                tally.retransmits += self.replicas
        voted, disputed = majority_vote_stats(received)
        ok = zlib.crc32(voted) == expected_crc
        tally.vote_corrections += disputed
        if not ok:
            tally.residual_corrupt_chunks += 1
        if journal.enabled:
            journal.emit(
                "chunk.vote",
                chunk=index,
                received=len(received),
                corrections=disputed,
                ok=ok,
            )
        return voted


@dataclass(frozen=True)
class DegradedNetConfig:
    """One bundle of degraded-network knobs for a whole fleet.

    ``build_channel`` / ``build_transport`` produce the per-device
    channel and transport; :meth:`describe` is what the fleet journals
    in its ``fleet.run.start`` event.
    """

    bit_error_rate: float = 0.0
    chunk_drop_rate: float = 0.0
    strategy: str = "arq"
    chunk_bytes: int = DEFAULT_CHUNK_BYTES
    replicas: int = DEFAULT_REPLICAS
    max_retries: int = DEFAULT_MAX_RETRIES
    backoff_base_seconds: float = DEFAULT_BACKOFF_BASE_SECONDS
    median_bps: float = DEFAULT_MEDIAN_BPS
    contact_period_seconds: "float | None" = None
    contact_up_seconds: "float | None" = None

    def __post_init__(self) -> None:
        if (self.contact_period_seconds is None) != (
            self.contact_up_seconds is None
        ):
            raise NetworkError(
                "contact_period_seconds and contact_up_seconds must be "
                "given together"
            )
        # Channel/transport validation happens in the builders; build
        # both eagerly so a bad config fails at construction, not at
        # the first transfer three rounds into a fleet run.
        self.build_channel(seed=0)
        self.build_transport()

    def schedule(self) -> "ContactSchedule | None":
        if self.contact_period_seconds is None or self.contact_up_seconds is None:
            return None
        return ContactSchedule(
            period_seconds=self.contact_period_seconds,
            up_seconds=self.contact_up_seconds,
        )

    def build_channel(self, seed: int) -> LossyChannel:
        return LossyChannel(
            median_bps=self.median_bps,
            seed=seed,
            bit_error_rate=self.bit_error_rate,
            chunk_drop_rate=self.chunk_drop_rate,
        )

    def build_transport(self) -> ChunkedTransport:
        return ChunkedTransport(
            chunk_bytes=self.chunk_bytes,
            strategy=self.strategy,
            max_retries=self.max_retries,
            replicas=self.replicas,
            backoff_base_seconds=self.backoff_base_seconds,
            schedule=self.schedule(),
        )

    def describe(self) -> "dict[str, object]":
        """The journal-friendly summary of this configuration."""
        return {
            "bit_error_rate": self.bit_error_rate,
            "chunk_drop_rate": self.chunk_drop_rate,
            "strategy": self.strategy,
            "chunk_bytes": self.chunk_bytes,
            "replicas": self.replicas,
            "max_retries": self.max_retries,
            "contact_period_seconds": self.contact_period_seconds,
            "contact_up_seconds": self.contact_up_seconds,
        }
