"""The uplink: byte transfers over a fluctuating channel.

Every transfer pays a fixed protocol latency plus the serialisation time
of its payload at the sampled goodput.  The link also keeps cumulative
byte counters — the "bandwidth overhead" metric of Figure 10 is simply
the total bytes a scheme pushed through its uplink.

With a :class:`~repro.network.transfer.ChunkedTransport` attached the
uplink sends chunk by chunk and recovers from drops and bit corruption
(ARQ retransmits or replica voting); ``sent_bytes`` then counts every
byte that actually hit the air — retransmissions and replicas included —
not just the payload, because the bandwidth-overhead figures must charge
recovery traffic to the scheme that caused it.  A chunked transfer at
zero loss is bit-identical in seconds (hence joules) to the
whole-payload path; ``tests/network/test_transfer_differential.py``
keeps that true.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import NetworkError
from ..obs.runtime import get_obs
from .channel import FluctuatingChannel
from .transfer import ChunkedTransport, pattern_payload


@dataclass(frozen=True)
class TransferResult:
    """Outcome of one uplink transfer.

    ``payload_bytes`` is what the caller asked to deliver;
    ``wire_bytes`` is what actually went on the air (equal on the
    whole-payload path, larger under chunked recovery).
    """

    payload_bytes: int
    seconds: float
    goodput_bps: float
    wire_bytes: int = -1
    chunks: int = 1
    retransmits: int = 0
    dropped_chunks: int = 0
    vote_corrections: int = 0
    residual_corrupt_chunks: int = 0
    wait_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.wire_bytes < 0:
            object.__setattr__(self, "wire_bytes", self.payload_bytes)


@dataclass
class Uplink:
    """A smartphone's uplink to the cloud servers."""

    channel: FluctuatingChannel = field(default_factory=FluctuatingChannel)
    latency_seconds: float = 0.1
    transport: "ChunkedTransport | None" = None
    sent_bytes: int = field(default=0, init=False)
    transfer_count: int = field(default=0, init=False)
    clock_seconds: float = field(default=0.0, init=False)
    retransmits: int = field(default=0, init=False)
    vote_corrections: int = field(default=0, init=False)
    residual_corrupt_chunks: int = field(default=0, init=False)
    corrupt_transfers: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.latency_seconds < 0:
            raise NetworkError(f"latency must be >= 0, got {self.latency_seconds}")

    def transfer(self, payload_bytes: int) -> TransferResult:
        """Send *payload_bytes* upstream; returns timing and goodput."""
        if payload_bytes < 0:
            raise NetworkError(f"payload must be >= 0 bytes, got {payload_bytes}")
        goodput = self.channel.sample_goodput_bps()
        if self.transport is None:
            seconds = self.latency_seconds + payload_bytes * 8.0 / goodput
            result = TransferResult(
                payload_bytes=payload_bytes, seconds=seconds, goodput_bps=goodput
            )
        else:
            outcome = self.transport.send(
                self.channel,
                pattern_payload(payload_bytes),
                goodput_bps=goodput,
                latency_seconds=self.latency_seconds,
                clock_seconds=self.clock_seconds,
            )
            if outcome.data != pattern_payload(payload_bytes):
                # Residual corruption survived voting: delivered, counted,
                # never silently ignored.
                self.corrupt_transfers += 1
            result = TransferResult(
                payload_bytes=payload_bytes,
                seconds=outcome.seconds,
                goodput_bps=goodput,
                wire_bytes=outcome.wire_bytes,
                chunks=outcome.n_chunks,
                retransmits=outcome.retransmits,
                dropped_chunks=outcome.dropped_chunks,
                vote_corrections=outcome.vote_corrections,
                residual_corrupt_chunks=outcome.residual_corrupt_chunks,
                wait_seconds=outcome.wait_seconds,
            )
        # Charge the wire, not the payload: recovery bytes (retransmits,
        # replicas) are real bandwidth the overhead figures must see.
        self.sent_bytes += result.wire_bytes
        self.transfer_count += 1
        self.clock_seconds += result.seconds
        self.retransmits += result.retransmits
        self.vote_corrections += result.vote_corrections
        self.residual_corrupt_chunks += result.residual_corrupt_chunks
        obs = get_obs()
        if obs.enabled:
            obs.link_transfers.inc()
            obs.link_bytes.inc(result.wire_bytes)
            obs.link_transfer_seconds.observe(result.seconds)
            if self.transport is not None:
                obs.link_chunks.inc(result.chunks)
                if result.retransmits:
                    obs.link_retransmits.inc(result.retransmits)
                if result.dropped_chunks:
                    obs.link_chunk_drops.inc(result.dropped_chunks)
                if result.vote_corrections:
                    obs.link_vote_corrections.inc(result.vote_corrections)
                if result.residual_corrupt_chunks:
                    obs.link_residual_corrupt.inc(result.residual_corrupt_chunks)
        return result

    def reset_counters(self) -> None:
        """Zero the cumulative byte/transfer counters (clock included)."""
        self.sent_bytes = 0
        self.transfer_count = 0
        self.clock_seconds = 0.0
        self.retransmits = 0
        self.vote_corrections = 0
        self.residual_corrupt_chunks = 0
        self.corrupt_transfers = 0
