"""The uplink: byte transfers over a fluctuating channel.

Every transfer pays a fixed protocol latency plus the serialisation time
of its payload at the sampled goodput.  The link also keeps cumulative
byte counters — the "bandwidth overhead" metric of Figure 10 is simply
the total bytes a scheme pushed through its uplink.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import NetworkError
from ..obs.runtime import get_obs
from .channel import FluctuatingChannel


@dataclass(frozen=True)
class TransferResult:
    """Outcome of one uplink transfer."""

    payload_bytes: int
    seconds: float
    goodput_bps: float


@dataclass
class Uplink:
    """A smartphone's uplink to the cloud servers."""

    channel: FluctuatingChannel = field(default_factory=FluctuatingChannel)
    latency_seconds: float = 0.1
    sent_bytes: int = field(default=0, init=False)
    transfer_count: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.latency_seconds < 0:
            raise NetworkError(f"latency must be >= 0, got {self.latency_seconds}")

    def transfer(self, payload_bytes: int) -> TransferResult:
        """Send *payload_bytes* upstream; returns timing and goodput."""
        if payload_bytes < 0:
            raise NetworkError(f"payload must be >= 0 bytes, got {payload_bytes}")
        goodput = self.channel.sample_goodput_bps()
        seconds = self.latency_seconds + payload_bytes * 8.0 / goodput
        self.sent_bytes += payload_bytes
        self.transfer_count += 1
        obs = get_obs()
        if obs.enabled:
            obs.link_transfers.inc()
            obs.link_bytes.inc(payload_bytes)
            obs.link_transfer_seconds.observe(seconds)
        return TransferResult(
            payload_bytes=payload_bytes, seconds=seconds, goodput_bps=goodput
        )

    def reset_counters(self) -> None:
        """Zero the cumulative byte/transfer counters."""
        self.sent_bytes = 0
        self.transfer_count = 0
