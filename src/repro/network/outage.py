"""Outage-prone channels — failure injection for the disaster setting.

The paper's whole premise is damaged infrastructure: "network bandwidth
possibly becomes very limited in capacity".  The base
:class:`~repro.network.channel.FluctuatingChannel` models steady-state
scarcity; this module adds *outages* — seeded intervals during which
goodput collapses to a trickle (a cell of the network is down, a relay
moved out of range).  Transfers still complete eventually, so scheme
logic is unchanged; delays and radio energy spike, which is exactly the
regime where eliminating redundant uploads matters most
(``tests/network/test_outage.py`` measures it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import NetworkError
from .channel import FluctuatingChannel

#: Goodput during an outage: a barely-alive trickle, not zero (zero
#: would make delays infinite and deadlock the simulations).
OUTAGE_TRICKLE_BPS = 2_000.0


@dataclass(frozen=True)
class ContactSchedule:
    """Deterministic intermittent contact windows (satellite passes).

    The link repeats a ``period_seconds`` cycle that starts with
    ``up_seconds`` of connectivity and is down for the remainder —
    the shape of a ground station seeing a LEO satellite once per
    orbit, or a relay van driving through coverage on a fixed route.
    Unlike :class:`OutageChannel` (random Gilbert bursts, goodput
    collapses but transfers proceed), a schedule is a *hard* gate in
    simulated time: the chunked transport
    (:class:`repro.network.transfer.ChunkedTransport`) stalls every
    chunk that misses a window until the next one opens, so a payload
    longer than a window is delivered across several passes.
    """

    period_seconds: float
    up_seconds: float
    offset_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.period_seconds <= 0:
            raise NetworkError(
                f"period_seconds must be positive, got {self.period_seconds}"
            )
        if not 0.0 < self.up_seconds <= self.period_seconds:
            raise NetworkError(
                "up_seconds must be in (0, period_seconds], got "
                f"{self.up_seconds} of {self.period_seconds}"
            )

    @property
    def duty_cycle(self) -> float:
        """Fraction of time the link is up."""
        return self.up_seconds / self.period_seconds

    def phase_seconds(self, at_seconds: float) -> float:
        """Position inside the current cycle (0 = window opening)."""
        return (at_seconds - self.offset_seconds) % self.period_seconds

    def is_up(self, at_seconds: float) -> bool:
        """Whether the link is inside a contact window at *at_seconds*."""
        return self.phase_seconds(at_seconds) < self.up_seconds

    def next_up_seconds(self, at_seconds: float) -> float:
        """Earliest time >= *at_seconds* with the link up."""
        phase = self.phase_seconds(at_seconds)
        if phase < self.up_seconds:
            return at_seconds
        return at_seconds + (self.period_seconds - phase)


@dataclass
class OutageChannel(FluctuatingChannel):
    """A fluctuating channel that suffers seeded outage bursts.

    The channel alternates between an "up" state (normal fluctuating
    goodput) and a "down" state (trickle goodput).  State transitions
    happen per transfer with the given probabilities, giving
    geometrically-distributed burst lengths — the standard Gilbert
    model of a bursty link.
    """

    outage_probability: float = 0.1
    recovery_probability: float = 0.5
    trickle_bps: float = OUTAGE_TRICKLE_BPS
    _down: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.outage_probability <= 1.0:
            raise NetworkError(
                f"outage_probability must be in [0, 1], got {self.outage_probability}"
            )
        if not 0.0 < self.recovery_probability <= 1.0:
            raise NetworkError(
                f"recovery_probability must be in (0, 1], got {self.recovery_probability}"
            )
        if self.trickle_bps <= 0:
            raise NetworkError(f"trickle_bps must be positive, got {self.trickle_bps}")

    def sample_goodput_bps(self) -> float:
        if self._down:
            if self._rng.random() < self.recovery_probability:
                self._down = False
        elif self._rng.random() < self.outage_probability:
            self._down = True
        if self._down:
            return float(self.trickle_bps)
        return super().sample_goodput_bps()
