"""The bandwidth-limited uplink channel.

Section IV-A: "the transmission bandwidth of each smartphone fluctuates
from 0 Kbps to 512 Kbps to emulate the low-bandwidth network", and the
delay experiment (Figure 11) sweeps channels with *median* bitrates of
128/256/512 Kbps.

We model a channel by its median goodput and a relative spread: each
transfer samples its goodput uniformly from
``median * [1 - spread, 1 + spread]``.  Sampling per transfer (rather
than per byte) keeps the simulation deterministic, seedable, and fast
while preserving the variance that makes delays fluctuate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import NetworkError

KBPS = 1000.0

#: The paper's default emulated uplink median.
DEFAULT_MEDIAN_BPS = 256 * KBPS


@dataclass
class FluctuatingChannel:
    """A seeded, fluctuating-goodput channel."""

    median_bps: float = DEFAULT_MEDIAN_BPS
    relative_spread: float = 0.5
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.median_bps <= 0:
            raise NetworkError(f"median_bps must be positive, got {self.median_bps}")
        if not 0.0 <= self.relative_spread < 1.0:
            raise NetworkError(
                f"relative_spread must be in [0, 1), got {self.relative_spread}"
            )
        self._rng = np.random.default_rng(self.seed)

    def sample_goodput_bps(self) -> float:
        """Goodput (bits/second) for one transfer."""
        low = self.median_bps * (1.0 - self.relative_spread)
        high = self.median_bps * (1.0 + self.relative_spread)
        return float(self._rng.uniform(low, high))
