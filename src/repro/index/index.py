"""The server-side feature index.

CBRD (Section III-B1) works by querying this index: the client uploads
an image's features, the server returns the *maximum similarity* — the
similarity to the most similar stored image.  The client compares that
against the threshold ``T`` to decide redundancy.

Queries shortlist candidates via LSH descriptor votes and then compute
the exact Equation-2 Jaccard similarity against only the top-voted
candidates, the standard two-stage design of content-based indexes.

Query results are **insertion-order independent**: the vote shortlist
and the verified results are ranked on ``(score, image_id)`` — never on
dict/arrival order — so two indexes holding the same images always
answer identically, no matter the order the images arrived in.  The
sharded index (:mod:`repro.index.sharded`) relies on this to return
byte-identical answers to a single index, and the fleet differential
tests (:mod:`repro.fleet`) rely on it to not flake.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import IndexError_
from ..features.base import FeatureSet
from ..features.similarity import jaccard_similarity
from ..kernels.voting import GroupedKeys
from .lsh import (
    FLOAT_SKETCH_BITS,
    HammingLSH,
    float_sketch_planes,
    sketch_float_descriptors,
)


def rank_votes(votes: "dict[str, int]", limit: int) -> "list[str]":
    """Image ids ranked by ``(votes desc, image_id asc)``, truncated.

    The deterministic shortlist order shared by the single and sharded
    indexes: vote count first, stable image id as the tie-break, so the
    ranking never depends on dict iteration or arrival order.
    """
    ranked = sorted(votes, key=lambda image_id: (-votes[image_id], image_id))
    return ranked[:limit]


def verify_candidates(
    query: FeatureSet, candidates: "list[FeatureSet]", k: int
) -> "list[tuple[str, float]]":
    """Exact Equation-2 scores for *candidates*, best-*k* first.

    Sorted by ``(similarity desc, image_id asc)`` — the same
    deterministic tie-break as :func:`rank_votes`.
    """
    scored = [
        (candidate.image_id, jaccard_similarity(query, candidate))
        for candidate in candidates
    ]
    scored.sort(key=lambda pair: (-pair[1], pair[0]))
    return scored[:k]


@dataclass(frozen=True)
class QueryResult:
    """The server's answer to a feature query."""

    best_id: Optional[str]
    best_similarity: float
    candidates_checked: int

    @property
    def found(self) -> bool:
        """Whether any stored image produced a non-zero similarity."""
        return self.best_id is not None


@dataclass
class FeatureIndex:
    """LSH-accelerated index of per-image feature sets."""

    kind: str = "orb"
    verify_top_k: int = 5
    n_tables: int = 8
    bits_per_key: int = 16
    seed: int = 7
    _entries: list = field(default_factory=list, init=False, repr=False)
    _ids: dict = field(default_factory=dict, init=False, repr=False)
    _lsh: HammingLSH = field(init=False, repr=False)
    _planes: Optional[np.ndarray] = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.verify_top_k < 1:
            raise IndexError_(f"verify_top_k must be >= 1, got {self.verify_top_k}")
        n_bits = 256 if self.kind == "orb" else FLOAT_SKETCH_BITS
        self._lsh = HammingLSH(
            n_bits=n_bits,
            n_tables=self.n_tables,
            bits_per_key=self.bits_per_key,
            seed=self.seed,
        )

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, image_id: str) -> bool:
        return image_id in self._ids

    # -- internals ----------------------------------------------------------

    def _packed(self, features: FeatureSet) -> np.ndarray:
        if features.kind != self.kind:
            raise IndexError_(
                f"index stores {self.kind!r} features, got {features.kind!r}"
            )
        if self.kind == "orb":
            return features.descriptors
        if self._planes is None:
            dim = features.descriptors.shape[1]
            self._planes = float_sketch_planes(dim, FLOAT_SKETCH_BITS, self.seed)
        return sketch_float_descriptors(features.descriptors, self._planes)

    # -- public API ----------------------------------------------------------

    def add(self, features: FeatureSet) -> None:
        """Index the features of one uploaded image."""
        image_id = features.image_id
        if not image_id:
            raise IndexError_("features must carry an image_id to be indexed")
        if image_id in self._ids:
            raise IndexError_(f"image {image_id!r} is already indexed")
        ref = len(self._entries)
        if len(features):
            self._lsh.add(self._packed(features), ref)
        self._entries.append(features)
        self._ids[image_id] = ref

    def packed_descriptors(self, features: FeatureSet) -> np.ndarray:
        """The LSH-ready packed binary form of *features*' descriptors."""
        return self._packed(features)

    def hash_keys(self, packed: np.ndarray) -> np.ndarray:
        """Per-table LSH hash keys for packed descriptor rows.

        Indexes built with the same ``(n_tables, bits_per_key, seed)``
        sample identical bit subsets, so keys computed once are valid
        for every shard of a sharded index.
        """
        return self._lsh.keys(packed)

    def vote_counts_from_keys(self, keys: np.ndarray) -> "dict[str, int]":
        """LSH votes per stored ``image_id`` for precomputed *keys*.

        A stored image's vote count depends only on its own descriptors
        and the query, so per-shard counts merge into exactly the counts
        a single index would report.
        """
        votes = self._lsh.votes_from_keys(keys)
        return {self._entries[ref].image_id: count for ref, count in votes.items()}

    def vote_counts_from_grouped(self, grouped: "GroupedKeys") -> "dict[str, int]":
        """LSH votes for keys already deduplicated per table.

        Shard fan-out entry point: the coordinator groups a query's
        keys once (:func:`~repro.kernels.voting.group_query_keys`) and
        every shard — thread or worker process — gathers its buckets
        from the shared grouped form instead of re-running the unique
        pass.  Counts equal :meth:`vote_counts_from_keys` exactly.
        """
        votes = self._lsh.votes_from_grouped(grouped)
        return {self._entries[ref].image_id: count for ref, count in votes.items()}

    def vote_counts(self, features: FeatureSet) -> "dict[str, int]":
        """LSH votes per stored ``image_id`` for a query feature set."""
        if not self._entries or len(features) == 0:
            return {}
        return self.vote_counts_from_keys(self.hash_keys(self._packed(features)))

    def features_of(self, image_id: str) -> FeatureSet:
        """The stored feature set of one indexed image."""
        try:
            return self._entries[self._ids[image_id]]
        except KeyError:
            raise IndexError_(f"image {image_id!r} is not indexed") from None

    def image_ids(self) -> "list[str]":
        """All indexed image ids, sorted (stable under arrival order)."""
        return sorted(self._ids)

    def query_top(self, features: FeatureSet, k: int) -> list[tuple[str, float]]:
        """The *k* most similar stored images as ``(image_id, similarity)``.

        Results are sorted by ``(similarity desc, image_id asc)``.  Only
        LSH-voted candidates are exactly verified, so images sharing no
        descriptor buckets with the query never appear (their similarity
        would be ~0 anyway).
        """
        if k < 1:
            raise IndexError_(f"k must be >= 1, got {k}")
        votes = self.vote_counts(features)
        if not votes:
            return []
        shortlist = rank_votes(votes, max(k, self.verify_top_k))
        candidates = [self.features_of(image_id) for image_id in shortlist]
        return verify_candidates(features, candidates, k)

    def query(self, features: FeatureSet) -> QueryResult:
        """Maximum similarity against the stored images (CBRD's primitive)."""
        top = self.query_top(features, 1) if len(self._entries) else []
        checked = min(len(self._entries), self.verify_top_k)
        if not top:
            return QueryResult(best_id=None, best_similarity=0.0, candidates_checked=0)
        best_id, best_similarity = top[0]
        return QueryResult(
            best_id=best_id, best_similarity=best_similarity, candidates_checked=checked
        )
