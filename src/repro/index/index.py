"""The server-side feature index.

CBRD (Section III-B1) works by querying this index: the client uploads
an image's features, the server returns the *maximum similarity* — the
similarity to the most similar stored image.  The client compares that
against the threshold ``T`` to decide redundancy.

Queries shortlist candidates via LSH descriptor votes and then compute
the exact Equation-2 Jaccard similarity against only the top-voted
candidates, the standard two-stage design of content-based indexes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import IndexError_
from ..features.base import FeatureSet
from ..features.similarity import jaccard_similarity
from .lsh import (
    FLOAT_SKETCH_BITS,
    HammingLSH,
    float_sketch_planes,
    sketch_float_descriptors,
)


@dataclass(frozen=True)
class QueryResult:
    """The server's answer to a feature query."""

    best_id: Optional[str]
    best_similarity: float
    candidates_checked: int

    @property
    def found(self) -> bool:
        """Whether any stored image produced a non-zero similarity."""
        return self.best_id is not None


@dataclass
class FeatureIndex:
    """LSH-accelerated index of per-image feature sets."""

    kind: str = "orb"
    verify_top_k: int = 5
    n_tables: int = 8
    bits_per_key: int = 16
    seed: int = 7
    _entries: list = field(default_factory=list, init=False, repr=False)
    _ids: dict = field(default_factory=dict, init=False, repr=False)
    _lsh: HammingLSH = field(init=False, repr=False)
    _planes: Optional[np.ndarray] = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.verify_top_k < 1:
            raise IndexError_(f"verify_top_k must be >= 1, got {self.verify_top_k}")
        n_bits = 256 if self.kind == "orb" else FLOAT_SKETCH_BITS
        self._lsh = HammingLSH(
            n_bits=n_bits,
            n_tables=self.n_tables,
            bits_per_key=self.bits_per_key,
            seed=self.seed,
        )

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, image_id: str) -> bool:
        return image_id in self._ids

    # -- internals ----------------------------------------------------------

    def _packed(self, features: FeatureSet) -> np.ndarray:
        if features.kind != self.kind:
            raise IndexError_(
                f"index stores {self.kind!r} features, got {features.kind!r}"
            )
        if self.kind == "orb":
            return features.descriptors
        if self._planes is None:
            dim = features.descriptors.shape[1]
            self._planes = float_sketch_planes(dim, FLOAT_SKETCH_BITS, self.seed)
        return sketch_float_descriptors(features.descriptors, self._planes)

    # -- public API ----------------------------------------------------------

    def add(self, features: FeatureSet) -> None:
        """Index the features of one uploaded image."""
        image_id = features.image_id
        if not image_id:
            raise IndexError_("features must carry an image_id to be indexed")
        if image_id in self._ids:
            raise IndexError_(f"image {image_id!r} is already indexed")
        ref = len(self._entries)
        if len(features):
            self._lsh.add(self._packed(features), ref)
        self._entries.append(features)
        self._ids[image_id] = ref

    def query_top(self, features: FeatureSet, k: int) -> list[tuple[str, float]]:
        """The *k* most similar stored images as ``(image_id, similarity)``.

        Results are sorted by similarity, descending.  Only LSH-voted
        candidates are exactly verified, so images sharing no descriptor
        buckets with the query never appear (their similarity would be
        ~0 anyway).
        """
        if k < 1:
            raise IndexError_(f"k must be >= 1, got {k}")
        if not self._entries or len(features) == 0:
            return []
        votes = self._lsh.votes(self._packed(features))
        if not votes:
            return []
        shortlist = sorted(votes, key=lambda ref: votes[ref], reverse=True)
        shortlist = shortlist[: max(k, self.verify_top_k)]
        scored = [
            (self._entries[ref].image_id, jaccard_similarity(features, self._entries[ref]))
            for ref in shortlist
        ]
        scored.sort(key=lambda pair: pair[1], reverse=True)
        return scored[:k]

    def query(self, features: FeatureSet) -> QueryResult:
        """Maximum similarity against the stored images (CBRD's primitive)."""
        top = self.query_top(features, 1) if len(self._entries) else []
        checked = min(len(self._entries), self.verify_top_k)
        if not top:
            return QueryResult(best_id=None, best_similarity=0.0, candidates_checked=0)
        best_id, best_similarity = top[0]
        return QueryResult(
            best_id=best_id, best_similarity=best_similarity, candidates_checked=checked
        )
