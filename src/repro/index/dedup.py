"""Byte-level deduplication — the related-work foil (Section V).

The paper contrasts BEES with network deduplication (LBFS, Data
Domain): "deduplication detects redundancy in the byte level while
images are similar in the content level.  A small difference in the
content may cause significantly different byte-level encoding."

This module implements the classic machinery — Rabin-style
content-defined chunking with rolling hashes plus a chunk fingerprint
store — so that claim can be *measured*: the dedup bench shows
byte-level chunking removes essentially nothing between two views of
the same scene, while Equation-2 similarity flags them immediately.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from ..errors import IndexError_
from ..imaging.image import Image

#: Rolling-hash parameters (a polynomial rolling hash over a byte
#: window; cheaper than true Rabin fingerprints, same cut behaviour).
WINDOW = 16
PRIME = 1_000_003
#: A chunk boundary falls where ``hash % DIVISOR == DIVISOR - 1``.
DIVISOR = 1 << 11  # ~2 KiB average chunks
MIN_CHUNK = 256
MAX_CHUNK = 16 * 1024


def content_defined_chunks(data: bytes) -> "list[bytes]":
    """Split *data* into variable-size chunks at content-defined cuts.

    Vectorised: the rolling polynomial hash of every window position is
    computed with numpy, then boundaries are selected left-to-right
    under the min/max chunk-size constraints.
    """
    if not data:
        return []
    if len(data) <= MIN_CHUNK:
        return [data]

    arr = np.frombuffer(data, dtype=np.uint8)
    # Horner-evaluate the window polynomial for every position at once:
    # WINDOW vectorised passes instead of a per-byte Python loop.
    hashes = np.zeros(len(arr) - WINDOW + 1, dtype=np.uint64)
    for k in range(WINDOW):
        hashes = hashes * np.uint64(PRIME) + arr[k : k + len(hashes)].astype(np.uint64)
    is_cut = (hashes % np.uint64(DIVISOR)) == np.uint64(DIVISOR - 1)
    cut_positions = np.nonzero(is_cut)[0] + WINDOW  # cut AFTER the window

    chunks = []
    start = 0
    for position in cut_positions.tolist():
        length = position - start
        if length < MIN_CHUNK:
            continue
        if length > MAX_CHUNK:
            # Force cuts every MAX_CHUNK bytes inside an oversized run.
            while position - start > MAX_CHUNK:
                chunks.append(data[start : start + MAX_CHUNK])
                start += MAX_CHUNK
        chunks.append(data[start:position])
        start = position
    if start < len(data):
        tail = data[start:]
        while len(tail) > MAX_CHUNK:
            chunks.append(tail[:MAX_CHUNK])
            tail = tail[MAX_CHUNK:]
        chunks.append(tail)
    return chunks


def chunk_fingerprint(chunk: bytes) -> bytes:
    """The collision-resistant identity of one chunk."""
    return hashlib.sha256(chunk).digest()


@dataclass
class DedupStore:
    """A chunk-fingerprint store with byte-savings accounting."""

    _fingerprints: set = field(default_factory=set, init=False, repr=False)
    seen_bytes: int = field(default=0, init=False)
    stored_bytes: int = field(default=0, init=False)

    def add(self, data: bytes) -> "tuple[int, int]":
        """Ingest *data*; returns ``(new_bytes, duplicate_bytes)``."""
        new = 0
        duplicate = 0
        for chunk in content_defined_chunks(data):
            fingerprint = chunk_fingerprint(chunk)
            if fingerprint in self._fingerprints:
                duplicate += len(chunk)
            else:
                self._fingerprints.add(fingerprint)
                new += len(chunk)
        self.seen_bytes += new + duplicate
        self.stored_bytes += new
        return new, duplicate

    @property
    def dedup_ratio(self) -> float:
        """Fraction of ingested bytes eliminated as duplicates."""
        if self.seen_bytes == 0:
            return 0.0
        return 1.0 - self.stored_bytes / self.seen_bytes


def image_payload(image: Image) -> bytes:
    """The byte stream a file-level system would see for *image*.

    The raw bitmap stands in for the encoded file; the content-level
    vs. byte-level argument only needs "small pixel differences change
    the bytes", which holds for any encoding.
    """
    if image.pixels == 0:
        raise IndexError_("cannot serialise an empty image")
    return image.bitmap.tobytes()
