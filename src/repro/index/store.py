"""The server-side image store.

Holds the metadata of every image the cloud has received — geotags feed
the coverage analysis of Figure 12, byte counts feed storage accounting.
The bitmaps themselves are not retained (the simulation does not need
them server-side), matching the paper's focus on the resource-limited
client rather than the well-provisioned cloud.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..errors import IndexError_
from ..imaging.image import Image


@dataclass(frozen=True)
class StoredImage:
    """Metadata of one received image."""

    image_id: str
    group_id: str
    geotag: Optional[Tuple[float, float]]
    received_bytes: int


@dataclass
class ImageStore:
    """Append-only record of received images."""

    _records: dict = field(default_factory=dict, init=False, repr=False)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, image_id: str) -> bool:
        return image_id in self._records

    def add(self, image: Image, received_bytes: Optional[int] = None) -> StoredImage:
        """Record the arrival of *image*; returns the stored record."""
        if not image.image_id:
            raise IndexError_("stored images must carry an image_id")
        if image.image_id in self._records:
            raise IndexError_(f"image {image.image_id!r} already stored")
        record = StoredImage(
            image_id=image.image_id,
            group_id=image.group_id,
            geotag=image.geotag,
            received_bytes=image.nominal_bytes if received_bytes is None else received_bytes,
        )
        self._records[image.image_id] = record
        return record

    def get(self, image_id: str) -> StoredImage:
        """Look up one record; raises if the image was never received."""
        try:
            return self._records[image_id]
        except KeyError:
            raise IndexError_(f"image {image_id!r} not in store") from None

    def records(self) -> list[StoredImage]:
        """All records, in arrival order."""
        return list(self._records.values())

    @property
    def total_bytes(self) -> int:
        """Total bytes received across all images."""
        return sum(record.received_bytes for record in self._records.values())
