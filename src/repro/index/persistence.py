"""Index snapshot & restore.

Disaster deployments restart servers; the feature index must survive.
A snapshot is a self-describing byte blob: a header, then each indexed
image's feature payload in the :mod:`repro.features.serialize` wire
format, length-prefixed.  Restoring replays the payloads through
``FeatureIndex.add`` so the LSH tables are rebuilt identically (the
tables themselves are derived state).

Format (little-endian):

    magic    4 bytes   b"BIX1"
    kind     1 byte    0 = orb, 1 = sift, 2 = pca-sift
    n        4 bytes   number of images
    entries  n times:  u32 length + feature payload
"""

from __future__ import annotations

import struct

from ..errors import IndexError_
from ..features.serialize import deserialize_features, serialize_features
from .index import FeatureIndex

MAGIC = b"BIX1"
_KIND_CODES = {"orb": 0, "sift": 1, "pca-sift": 2}
_KIND_NAMES = {code: kind for kind, code in _KIND_CODES.items()}
_HEADER = struct.Struct("<4sBI")
_LENGTH = struct.Struct("<I")


def snapshot_index(index: FeatureIndex) -> bytes:
    """Serialise every indexed feature set."""
    kind_code = _KIND_CODES.get(index.kind)
    if kind_code is None:
        raise IndexError_(f"cannot snapshot index of kind {index.kind!r}")
    entries = index._entries  # the append-only entry list
    parts = [_HEADER.pack(MAGIC, kind_code, len(entries))]
    for features in entries:
        payload = serialize_features(features)
        parts.append(_LENGTH.pack(len(payload)))
        parts.append(payload)
    return b"".join(parts)


def restore_index(blob: bytes, **index_kwargs) -> FeatureIndex:
    """Rebuild a :class:`FeatureIndex` from a snapshot blob.

    Extra keyword arguments (LSH table counts, seeds...) pass through to
    the ``FeatureIndex`` constructor; the feature kind comes from the
    snapshot itself.
    """
    if len(blob) < _HEADER.size:
        raise IndexError_("index snapshot truncated (header)")
    magic, kind_code, count = _HEADER.unpack_from(blob, 0)
    if magic != MAGIC:
        raise IndexError_(f"bad index snapshot magic {magic!r}")
    kind = _KIND_NAMES.get(kind_code)
    if kind is None:
        raise IndexError_(f"unknown index kind code {kind_code}")
    index = FeatureIndex(kind=kind, **index_kwargs)
    offset = _HEADER.size
    for _ in range(count):
        if len(blob) < offset + _LENGTH.size:
            raise IndexError_("index snapshot truncated (entry length)")
        (length,) = _LENGTH.unpack_from(blob, offset)
        offset += _LENGTH.size
        if len(blob) < offset + length:
            raise IndexError_("index snapshot truncated (entry payload)")
        index.add(deserialize_features(blob[offset : offset + length]))
        offset += length
    if offset != len(blob):
        raise IndexError_(
            f"index snapshot has {len(blob) - offset} trailing bytes"
        )
    return index
