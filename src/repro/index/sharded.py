"""A sharded, thread-safe variant of the server feature index.

The fleet runtime (:mod:`repro.fleet`) drives many devices into the
server concurrently, which turns the single :class:`~repro.index.index.
FeatureIndex` into a serialization point.  :class:`ShardedFeatureIndex`
splits the stored images over *K* independent shards so concurrent
writers only contend when they hash to the same shard, while readers
never take a lock at all.

Design notes, because the equivalence guarantee depends on them:

* **Shard routing hashes the stable image id** (blake2b), *not* an LSH
  band.  LSH-based routing would have to duplicate images across shards
  to stay exact; id-hashing keeps every image in exactly one shard, so
  a merged query answer is exact by construction.
* **All shards share one LSH geometry.**  Every shard is built with the
  same ``(n_tables, bits_per_key, seed)``, so the sampled bit subsets
  are identical and a query's hash keys are computed **once** and
  reused against every shard (:meth:`FeatureIndex.hash_keys` documents
  this contract).
* **Votes merge exactly.**  An image's LSH vote count depends only on
  its own descriptors and the query, never on other stored images, so
  the union of per-shard vote dicts equals the single-index vote dict.
  Ranking the merged votes with the shared :func:`~repro.index.index.
  rank_votes` / :func:`~repro.index.index.verify_candidates` helpers
  therefore returns **byte-identical** answers to a single index over
  the same images — the property the fleet differential tests pin.
* **Reads are lock-free.**  A shard's ``add`` appends to its entry list
  and replaces bucket arrays atomically (one dict store per bucket);
  concurrent CPython readers see either the old or the new bucket,
  never a torn one.  The fleet runner additionally
  never interleaves queries with writes for the *same* round (round
  barrier), so readers observe a frozen index.  Writer locks exist only
  to serialise writer/writer races within a shard; the non-blocking
  first acquire counts contention into
  ``bees_index_shard_contention_total{shard}``.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field

import numpy as np

from ..errors import IndexError_
from ..features.base import FeatureSet
from ..kernels.voting import GroupedKeys, group_query_keys
from ..obs import get_obs
from ..obs.journal import get_journal
from .index import FeatureIndex, QueryResult, rank_votes, verify_candidates

DEFAULT_N_SHARDS = 4


def shard_of(image_id: str, n_shards: int) -> int:
    """The shard an image id routes to (stable blake2b, mod *n_shards*).

    Stable across processes and Python hash randomisation — the fleet
    equivalence tests replay runs in fresh processes and expect the
    same placement every time.
    """
    digest = hashlib.blake2b(image_id.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % n_shards


@dataclass
class ShardedFeatureIndex:
    """K same-geometry :class:`FeatureIndex` shards behind one API.

    Drop-in compatible with :class:`FeatureIndex` for everything the
    server touches (``add`` / ``query`` / ``query_top`` / ``__len__`` /
    ``__contains__`` / ``features_of`` / ``image_ids``), plus batched
    queries and per-shard introspection.
    """

    kind: str = "orb"
    n_shards: int = DEFAULT_N_SHARDS
    verify_top_k: int = 5
    n_tables: int = 8
    bits_per_key: int = 16
    seed: int = 7
    _shards: "list[FeatureIndex]" = field(init=False, repr=False)
    _locks: "list[threading.Lock]" = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise IndexError_(f"n_shards must be >= 1, got {self.n_shards}")
        self._shards = [
            FeatureIndex(
                kind=self.kind,
                verify_top_k=self.verify_top_k,
                n_tables=self.n_tables,
                bits_per_key=self.bits_per_key,
                seed=self.seed,
            )
            for _ in range(self.n_shards)
        ]
        self._locks = [threading.Lock() for _ in range(self.n_shards)]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, image_id: str) -> bool:
        return image_id in self._shards[self.shard_of(image_id)]

    def shard_of(self, image_id: str) -> int:
        """The shard index *image_id* routes to."""
        return shard_of(image_id, self.n_shards)

    def shard_sizes(self) -> "list[int]":
        """Entries per shard, in shard order."""
        return [len(shard) for shard in self._shards]

    def shard_skew(self) -> float:
        """Occupancy skew: max shard size over the mean (1.0 = even).

        The ``repro top`` dashboard and the fleet telemetry tests use
        this to spot routing hot-spots; an empty index has no skew.
        """
        sizes = self.shard_sizes()
        total = sum(sizes)
        if total == 0:
            return 1.0
        return max(sizes) / (total / len(sizes))

    # -- mutation ------------------------------------------------------------

    def add(self, features: FeatureSet) -> None:
        """Index one image's features on its shard (thread-safe)."""
        image_id = features.image_id
        if not image_id:
            raise IndexError_("features must carry an image_id to be indexed")
        shard_no = self.shard_of(image_id)
        lock = self._locks[shard_no]
        obs = get_obs()
        if not lock.acquire(blocking=False):
            if obs.enabled:
                obs.shard_contention.inc(shard=shard_no)
            lock.acquire()
        try:
            self._shards[shard_no].add(features)
            size = len(self._shards[shard_no])
        finally:
            lock.release()
        if obs.enabled:
            obs.shard_entries.set(size, shard=shard_no)
        journal = get_journal()
        if journal.enabled:
            journal.emit(
                "index.route",
                image_id=image_id,
                shard=shard_no,
                n_shards=self.n_shards,
                shard_size=size,
            )

    # -- queries (lock-free) -------------------------------------------------

    def _merged_votes(self, features: FeatureSet) -> "dict[str, int]":
        if len(features) == 0 or not len(self):
            return {}
        # One hash pass serves every shard: identical LSH geometry.
        packed = self._shards[0].packed_descriptors(features)
        keys = self._shards[0].hash_keys(packed)
        return self._merged_votes_from_keys(keys)

    def _merged_votes_from_keys(self, keys: "np.ndarray") -> "dict[str, int]":
        # Group (per-table unique+counts) once in the coordinator; each
        # shard only gathers its own buckets from the shared form.  The
        # historical shape paid the unique pass again inside every
        # shard's vote_counts_from_keys call.
        return self._merged_votes_from_grouped(group_query_keys(keys))

    def _merged_votes_from_grouped(self, grouped: "GroupedKeys") -> "dict[str, int]":
        votes: "dict[str, int]" = {}
        for shard in self._shards:
            if len(shard):
                votes.update(shard.vote_counts_from_grouped(grouped))
        return votes

    def query_top(self, features: FeatureSet, k: int) -> "list[tuple[str, float]]":
        """The *k* most similar stored images, merged across shards.

        Byte-identical to :meth:`FeatureIndex.query_top` over the same
        image set (see the module docstring for why).
        """
        if k < 1:
            raise IndexError_(f"k must be >= 1, got {k}")
        votes = self._merged_votes(features)
        if not votes:
            return []
        shortlist = rank_votes(votes, max(k, self.verify_top_k))
        candidates = [self.features_of(image_id) for image_id in shortlist]
        return verify_candidates(features, candidates, k)

    def query(self, features: FeatureSet) -> QueryResult:
        """Maximum similarity against all shards (CBRD's primitive)."""
        top = self.query_top(features, 1) if len(self) else []
        checked = min(len(self), self.verify_top_k)
        if not top:
            return QueryResult(best_id=None, best_similarity=0.0, candidates_checked=0)
        best_id, best_similarity = top[0]
        return QueryResult(
            best_id=best_id, best_similarity=best_similarity, candidates_checked=checked
        )

    def _query_from_votes(
        self, features: FeatureSet, votes: "dict[str, int]"
    ) -> QueryResult:
        """:meth:`query`'s verify stage, for already-merged votes."""
        if not votes:
            return QueryResult(best_id=None, best_similarity=0.0, candidates_checked=0)
        shortlist = rank_votes(votes, max(1, self.verify_top_k))
        candidates = [self.features_of(image_id) for image_id in shortlist]
        top = verify_candidates(features, candidates, 1)
        best_id, best_similarity = top[0]
        return QueryResult(
            best_id=best_id,
            best_similarity=best_similarity,
            candidates_checked=min(len(self), self.verify_top_k),
        )

    def query_batch(self, feature_sets: "list[FeatureSet]") -> "list[QueryResult]":
        """One :meth:`query` result per input, in input order.

        The batched entry point the server uses for cross-shard CBRD.
        The whole round's descriptors are stacked and hashed in **one**
        LSH key pass (one ``unpackbits`` + bit-sample gather instead of
        one per query) before the per-query shard fan-out; answers are
        identical to calling :meth:`query` per feature set.
        """
        empty = QueryResult(best_id=None, best_similarity=0.0, candidates_checked=0)
        if not feature_sets:
            return []
        if not len(self):
            return [empty] * len(feature_sets)
        results: "list[QueryResult]" = [empty] * len(feature_sets)
        nonempty = [i for i, features in enumerate(feature_sets) if len(features)]
        if not nonempty:
            return results
        with get_obs().span(
            "index.query_batch",
            n_queries=len(nonempty),
            n_shards=self.n_shards,
            n_entries=len(self),
        ):
            packed = [
                self._shards[0].packed_descriptors(feature_sets[i])
                for i in nonempty
            ]
            batched_keys = self._shards[0].hash_keys(np.concatenate(packed, axis=0))
            offsets = np.cumsum([0] + [rows.shape[0] for rows in packed])
            for position, i in enumerate(nonempty):
                keys = batched_keys[offsets[position] : offsets[position + 1]]
                votes = self._merged_votes_from_keys(keys)
                results[i] = self._query_from_votes(feature_sets[i], votes)
        return results

    # -- introspection -------------------------------------------------------

    def features_of(self, image_id: str) -> FeatureSet:
        """The stored feature set of one indexed image."""
        return self._shards[self.shard_of(image_id)].features_of(image_id)

    def image_ids(self) -> "list[str]":
        """All indexed image ids, sorted (stable under arrival order)."""
        merged: "list[str]" = []
        for shard in self._shards:
            merged.extend(shard.image_ids())
        return sorted(merged)
