"""Server-side index substrate: LSH descriptor index + image store."""

from .dedup import DedupStore, content_defined_chunks, image_payload
from .index import FeatureIndex, QueryResult
from .lsh import HammingLSH, float_sketch_planes, sketch_float_descriptors
from .persistence import restore_index, snapshot_index
from .store import ImageStore, StoredImage
from .vocab import BagOfWordsIndex, VocabularyTree

__all__ = [
    "BagOfWordsIndex",
    "DedupStore",
    "FeatureIndex",
    "HammingLSH",
    "ImageStore",
    "QueryResult",
    "StoredImage",
    "VocabularyTree",
    "content_defined_chunks",
    "image_payload",
    "restore_index",
    "snapshot_index",
    "float_sketch_planes",
    "sketch_float_descriptors",
]
