"""Server-side index substrate: LSH descriptor index + image store."""

from .dedup import DedupStore, content_defined_chunks, image_payload
from .index import FeatureIndex, QueryResult, rank_votes, verify_candidates
from .lsh import HammingLSH, float_sketch_planes, sketch_float_descriptors
from .persistence import restore_index, snapshot_index
from .procpool import ProcessShardedIndex, WorkerCrashedError
from .segments import ShardSegmentStore
from .sharded import ShardedFeatureIndex, shard_of
from .store import ImageStore, StoredImage
from .vocab import BagOfWordsIndex, VocabularyTree

__all__ = [
    "BagOfWordsIndex",
    "DedupStore",
    "FeatureIndex",
    "HammingLSH",
    "ImageStore",
    "ProcessShardedIndex",
    "QueryResult",
    "ShardSegmentStore",
    "ShardedFeatureIndex",
    "StoredImage",
    "VocabularyTree",
    "WorkerCrashedError",
    "content_defined_chunks",
    "image_payload",
    "rank_votes",
    "restore_index",
    "shard_of",
    "snapshot_index",
    "float_sketch_planes",
    "sketch_float_descriptors",
    "verify_candidates",
]
