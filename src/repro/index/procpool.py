"""Process-parallel sharded feature index.

:class:`~repro.index.sharded.ShardedFeatureIndex` removes the lock
serialization point, but every shard still competes for the one GIL —
vote gathering, Hamming verification and descriptor hashing are all
CPython-bound, so thread shards cannot scale the server stage of Fig. 2
past a single core.  :class:`ProcessShardedIndex` promotes each shard
to a **worker process** that owns its LSH tables and descriptor data,
with three properties the thread version cannot offer:

* **True parallelism.**  Vote and verify requests fan out over pipes
  and execute concurrently in *K* interpreters; the coordinator only
  merges small vote/score dicts.
* **Zero-copy descriptor residency.**  A worker appends every indexed
  payload into a :class:`~repro.kernels.arena.SharedArena` block and
  its :class:`~repro.features.base.FeatureSet` entries are numpy views
  into that shared memory, so the Hamming kernel scores stored rows in
  place — and the coordinator *attaches* the same blocks to serve
  :meth:`ProcessShardedIndex.features_of` without any IPC round-trip.
* **Durability.**  With a ``segment_dir``, a worker journals each
  payload to an append-only segment store
  (:mod:`repro.index.segments`) *before* acknowledging the add, so a
  killed worker is rebuilt from its sealed segments
  (:meth:`ProcessShardedIndex.recover_workers`) and the rebuild is
  checkable by content fingerprint.

**Equivalence.**  Everything decision-relevant survives the hop: the
wire format round-trips descriptor bytes losslessly, shard routing is
the same stable blake2b (:func:`~repro.index.sharded.shard_of`), all
workers share one LSH geometry so the coordinator hashes and groups a
query's keys **once** (:func:`~repro.kernels.voting.group_query_keys`),
votes merge exactly, and candidates are verified with the same
Equation-2 code and ranked with the same ``(score desc, id asc)``
tie-break.  Answers are therefore byte-identical to a single
:class:`~repro.index.index.FeatureIndex` over the same images — the
property the fleet differential suites pin for process mode too.

The default start method is ``spawn``: the fleet runner may launch
runs from helper threads (``repro top``), where ``fork`` risks cloning
a locked allocator.  Tests that spawn many short-lived pools can opt
into ``fork`` via the ``mp_context`` parameter or the
``REPRO_INDEX_MP_CONTEXT`` environment variable.
"""

from __future__ import annotations

import functools
import hashlib
import os
import pathlib
import threading
import time
import weakref
from dataclasses import dataclass
from multiprocessing import get_context
from typing import TYPE_CHECKING, Any, Callable, Optional, TypeVar

import numpy as np

from ..errors import IndexError_
from ..features.base import FeatureSet
from ..features.serialize import deserialize_features_view, serialize_features
from ..features.similarity import jaccard_similarity
from ..kernels.arena import ArenaReader, ArenaRef, SharedArena, unlink_block
from ..kernels.cache import descriptor_fingerprint
from ..kernels.voting import GroupedKeys, group_query_keys
from ..obs import get_obs
from ..obs.journal import get_journal
from .index import FeatureIndex, QueryResult, rank_votes
from .segments import DEFAULT_ROLL_BYTES, ShardSegmentStore
from .sharded import DEFAULT_N_SHARDS, shard_of

#: Environment override for the multiprocessing start method.
MP_CONTEXT_ENV = "REPRO_INDEX_MP_CONTEXT"
DEFAULT_MP_CONTEXT = "spawn"

_CLOSE_TIMEOUT_SECONDS = 10.0


class WorkerCrashedError(IndexError_):
    """A shard worker process died mid-conversation.

    With a ``segment_dir`` configured the shard is recoverable:
    :meth:`ProcessShardedIndex.recover_workers` respawns the worker and
    replays its sealed segments.  The successful replies of *surviving*
    workers in the same round are absorbed before this is raised (see
    :meth:`ProcessShardedIndex._round`), so the coordinator's id/ref
    maps never diverge from what live shards actually indexed.
    """


# --------------------------------------------------------------------------
# worker side
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class _WorkerConfig:
    """Everything a spawned shard worker needs to build itself."""

    shard_no: int
    kind: str
    verify_top_k: int
    n_tables: int
    bits_per_key: int
    seed: int
    segment_dir: "str | None"
    roll_bytes: int


class _ShardWorker:
    """The in-process state of one shard: index + arena + segments."""

    def __init__(self, config: _WorkerConfig) -> None:
        self.config = config
        self.index = FeatureIndex(
            kind=config.kind,
            verify_top_k=config.verify_top_k,
            n_tables=config.n_tables,
            bits_per_key=config.bits_per_key,
            seed=config.seed,
        )
        self.arena = SharedArena(name_prefix=f"beesix{config.shard_no}")
        self.refs: "dict[str, ArenaRef]" = {}
        self.store: "ShardSegmentStore | None" = None
        self.recovered: "list[tuple[str, ArenaRef]]" = []
        if config.segment_dir is not None:
            self.store = ShardSegmentStore(
                pathlib.Path(config.segment_dir),
                kind=config.kind,
                shard=config.shard_no,
                roll_bytes=config.roll_bytes,
            )
            for payload in self.store.recover():
                image_id, ref = self._ingest(payload)
                self.recovered.append((image_id, ref))

    def _ingest(self, payload: bytes) -> "tuple[str, ArenaRef]":
        """Arena-resident entry from one wire payload (no journaling)."""
        ref = self.arena.append(payload)
        features = deserialize_features_view(self.arena.view(ref))
        self.index.add(features)
        self.refs[features.image_id] = ref
        return features.image_id, ref

    def stats(self) -> "dict[str, Any]":
        stats: "dict[str, Any]" = {
            "n_entries": len(self.index),
            "arena_bytes": self.arena.allocated_bytes,
            "blocks": self.arena.block_names(),
        }
        if self.store is not None:
            stats["segments"] = self.store.stats()
        return stats

    def content_fingerprint(self) -> str:
        """Order-independent digest of (image id, descriptor bytes).

        A clean build and a rebuild-from-segments of the same adds hash
        identically regardless of arrival order — the recovery
        invariant the crash tests and ``--verify`` pin.
        """
        digest = hashlib.blake2b(digest_size=16)
        for image_id in sorted(self.refs):
            features = self.index.features_of(image_id)
            digest.update(image_id.encode("utf-8"))
            digest.update(descriptor_fingerprint(features.descriptors))
        return digest.hexdigest()

    def handle(self, request: tuple) -> "Any":
        op = request[0]
        if op == "add":
            added = []
            for payload in request[1]:
                image_id, ref = self._ingest(payload)
                if self.store is not None:
                    self.store.append(payload)
                added.append((image_id, ref))
            return {"added": added, "stats": self.stats()}
        if op == "vote":
            return [
                self.index.vote_counts_from_grouped(grouped)
                for grouped in request[1]
            ]
        if op == "verify":
            scored = []
            for payload, candidate_ids in request[1]:
                query = deserialize_features_view(payload)
                scored.append(
                    [
                        (
                            candidate_id,
                            jaccard_similarity(
                                query, self.index.features_of(candidate_id)
                            ),
                        )
                        for candidate_id in candidate_ids
                    ]
                )
            return scored
        if op == "seal":
            if self.store is not None:
                self.store.seal_active()
            return {"stats": self.stats()}
        if op == "compact":
            if self.store is not None:
                self.store.compact()
            return {"stats": self.stats()}
        if op == "fingerprint":
            return {
                "content": self.content_fingerprint(),
                "segments": (
                    self.store.fingerprint() if self.store is not None else None
                ),
            }
        raise IndexError_(f"unknown worker op {op!r}")

    def close(self) -> None:
        if self.store is not None:
            self.store.close()
        # Drop the arena-view entries before closing the arena so the
        # blocks unmap immediately rather than with the process.
        self.index = FeatureIndex(kind=self.config.kind)
        self.refs = {}
        self.recovered = []
        self.arena.close(unlink=True)


def _worker_main(conn: "Any", config: _WorkerConfig) -> None:
    """Entry point of a shard worker process: handshake, serve, exit."""
    try:
        worker = _ShardWorker(config)
    except Exception as exc:  # startup failure reaches the coordinator
        conn.send(("fatal", f"{type(exc).__name__}: {exc}"))
        conn.close()
        return
    conn.send(("ok", {"recovered": worker.recovered, "stats": worker.stats()}))
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):  # coordinator went away
            break
        if request[0] == "close":
            worker.close()
            conn.send(("ok", {}))
            break
        try:
            conn.send(("ok", worker.handle(request)))
        except Exception as exc:
            conn.send(("err", f"{type(exc).__name__}: {exc}"))
    conn.close()


# --------------------------------------------------------------------------
# coordinator side
# --------------------------------------------------------------------------


class _WorkerHandle:
    """Coordinator-side bookkeeping for one shard worker."""

    __slots__ = ("shard_no", "process", "conn", "blocks")

    def __init__(self, shard_no: int, process: "Any", conn: "Any") -> None:
        self.shard_no = shard_no
        self.process = process
        self.conn = conn
        #: Shared-memory block names this worker has reported — the
        #: coordinator's sweep list if the worker dies without
        #: unlinking them itself.
        self.blocks: "set[str]" = set()


def _sweep_handles(handles: "list[_WorkerHandle]") -> None:
    """Last-resort cleanup: kill workers, unlink their shared memory."""
    for handle in handles:
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if handle.process.is_alive():
            handle.process.terminate()
            handle.process.join(timeout=_CLOSE_TIMEOUT_SECONDS)
        for name in handle.blocks:
            unlink_block(name)


if TYPE_CHECKING:
    # ParamSpec/Concatenate land in 3.10; the project supports 3.9, so
    # keep them out of the runtime import path (annotations here are
    # strings under ``from __future__ import annotations``).
    from typing import Concatenate, ParamSpec

    _P = ParamSpec("_P")

_R = TypeVar("_R")


def _locked(
    method: "Callable[Concatenate[ProcessShardedIndex, _P], _R]",
) -> "Callable[Concatenate[ProcessShardedIndex, _P], _R]":
    """Serialize a coordinator operation on the instance lock.

    Worker pipes are plain request/response streams with no request
    ids, so two threads interleaving a multi-phase operation (vote →
    verify) would cross-deliver replies.  The lock is re-entrant:
    ``add``/``query`` compose the locked batch forms.
    """

    @functools.wraps(method)
    def wrapper(
        self: "ProcessShardedIndex", *args: _P.args, **kwargs: _P.kwargs
    ) -> _R:
        with self._lock:
            return method(self, *args, **kwargs)

    return wrapper


class ProcessShardedIndex:
    """K shard-worker processes behind the :class:`FeatureIndex` API.

    Drop-in compatible with :class:`~repro.index.sharded.
    ShardedFeatureIndex` for everything the server touches (``add`` /
    ``query`` / ``query_top`` / ``query_batch`` / ``__len__`` /
    ``__contains__`` / ``features_of`` / ``image_ids`` / shard
    introspection), plus segment persistence and worker recovery.
    Public operations serialize on one coordinator lock — the worker
    pipes are strictly request/response, so two threads interleaving a
    multi-phase query would cross-deliver replies.  Parallelism lives
    *inside* an operation (the per-shard fan-out), which is where the
    work is; concurrent fleet devices queue for microseconds at the
    coordinator and the workers still run all cores.
    """

    def __init__(
        self,
        kind: str = "orb",
        n_shards: int = DEFAULT_N_SHARDS,
        verify_top_k: int = 5,
        n_tables: int = 8,
        bits_per_key: int = 16,
        seed: int = 7,
        segment_dir: "str | os.PathLike | None" = None,
        mp_context: "str | None" = None,
        roll_bytes: int = DEFAULT_ROLL_BYTES,
    ) -> None:
        if n_shards < 1:
            raise IndexError_(f"n_shards must be >= 1, got {n_shards}")
        self.kind = kind
        self.n_shards = n_shards
        self.verify_top_k = verify_top_k
        self.n_tables = n_tables
        self.bits_per_key = bits_per_key
        self.seed = seed
        self.segment_dir = (
            pathlib.Path(segment_dir) if segment_dir is not None else None
        )
        self.roll_bytes = int(roll_bytes)
        self.mp_context = (
            mp_context
            or os.environ.get(MP_CONTEXT_ENV)
            or DEFAULT_MP_CONTEXT
        )
        self._ctx = get_context(self.mp_context)
        # Hash/pack geometry only — never stores an entry.  Same
        # (n_tables, bits_per_key, seed) as every worker, so keys
        # computed here are valid in all of them.
        self._hasher = FeatureIndex(
            kind=kind,
            verify_top_k=verify_top_k,
            n_tables=n_tables,
            bits_per_key=bits_per_key,
            seed=seed,
        )
        self._ids: "dict[str, int]" = {}
        self._refs: "dict[str, ArenaRef]" = {}
        self._sizes = [0] * n_shards
        self._reader = ArenaReader()
        self._lock = threading.RLock()
        self._closed = False
        self._handles: "list[_WorkerHandle]" = [
            self._spawn(shard_no) for shard_no in range(n_shards)
        ]
        self._finalizer = weakref.finalize(
            self, _sweep_handles, self._handles
        )
        for handle in self._handles:  # startup handshakes, in parallel
            self._register_recovered(handle, self._recv(handle, op="control"))

    # -- worker lifecycle ----------------------------------------------------

    def _spawn(self, shard_no: int) -> _WorkerHandle:
        config = _WorkerConfig(
            shard_no=shard_no,
            kind=self.kind,
            verify_top_k=self.verify_top_k,
            n_tables=self.n_tables,
            bits_per_key=self.bits_per_key,
            seed=self.seed,
            segment_dir=(
                str(self.segment_dir / f"shard-{shard_no:03d}")
                if self.segment_dir is not None
                else None
            ),
            roll_bytes=self.roll_bytes,
        )
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, config),
            name=f"bees-index-shard{shard_no}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _WorkerHandle(shard_no, process, parent_conn)

    def _register_recovered(
        self, handle: _WorkerHandle, handshake: "dict[str, Any]"
    ) -> None:
        for image_id, ref in handshake["recovered"]:
            self._ids[image_id] = handle.shard_no
            self._refs[image_id] = ref
        self._absorb_stats(handle, handshake["stats"])

    def _absorb_stats(
        self, handle: _WorkerHandle, stats: "dict[str, Any]"
    ) -> None:
        shard_no = handle.shard_no
        self._sizes[shard_no] = stats["n_entries"]
        handle.blocks.update(stats["blocks"])
        obs = get_obs()
        if obs.enabled:
            obs.shard_entries.set(stats["n_entries"], shard=shard_no)
            obs.index_arena_bytes.set(stats["arena_bytes"], shard=shard_no)
            segments = stats.get("segments")
            if segments is not None:
                obs.index_segments.set(
                    segments["n_sealed_segments"], shard=shard_no
                )

    @_locked
    def recover_workers(self) -> "list[int]":
        """Respawn dead shard workers; returns the shards rebuilt.

        Each respawned worker replays its sealed segment files (plus
        any torn-tail prefix) back into a fresh index and arena, and
        the coordinator reconciles its id/ref maps from the worker's
        handshake — so with a ``segment_dir`` every acknowledged add
        survives a worker kill.  Without one the shard restarts empty.
        Stale shared-memory blocks of the dead worker are unlinked
        before the respawn.
        """
        rebuilt: "list[int]" = []
        for shard_no, handle in enumerate(self._handles):
            if handle.process.is_alive():
                continue
            handle.process.join(timeout=_CLOSE_TIMEOUT_SECONDS)
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            self._reader.forget(handle.blocks)
            for name in handle.blocks:
                unlink_block(name)
            for image_id in [
                image_id
                for image_id, owner in self._ids.items()
                if owner == shard_no
            ]:
                del self._ids[image_id]
                self._refs.pop(image_id, None)
            self._sizes[shard_no] = 0
            fresh = self._spawn(shard_no)
            self._handles[shard_no] = fresh
            self._register_recovered(fresh, self._recv(fresh, op="control"))
            rebuilt.append(shard_no)
        return rebuilt

    @_locked
    def close(self) -> None:
        """Shut down every worker and release shared memory.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._reader.close()  # detach before workers unlink their blocks
        for handle in self._handles:
            if not handle.process.is_alive():
                continue
            try:
                handle.conn.send(("close",))
            except (BrokenPipeError, OSError):  # pragma: no cover - raced
                continue
        for handle in self._handles:
            if handle.process.is_alive():
                try:
                    handle.conn.recv()
                except (EOFError, OSError):  # pragma: no cover - raced
                    pass
            handle.process.join(timeout=_CLOSE_TIMEOUT_SECONDS)
        self._finalizer()  # terminate stragglers, sweep leaked blocks

    def __enter__(self) -> "ProcessShardedIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- request plumbing ----------------------------------------------------

    def _send(self, handle: _WorkerHandle, request: tuple) -> None:
        try:
            handle.conn.send(request)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerCrashedError(
                f"shard {handle.shard_no} worker died (send: {exc})"
            ) from exc

    def _recv_raw(
        self, handle: _WorkerHandle, op: str
    ) -> "tuple[str, Any]":
        obs = get_obs()
        t0 = time.perf_counter()
        try:
            status, payload = handle.conn.recv()
        except (EOFError, OSError) as exc:
            raise WorkerCrashedError(
                f"shard {handle.shard_no} worker died (recv: {exc})"
            ) from exc
        finally:
            if obs.enabled:
                elapsed = time.perf_counter() - t0  # beeslint: disable=raw-timing (feeds the bees_index_ipc_seconds histogram below)
                obs.index_ipc_seconds.observe(elapsed, op=op)
        return status, payload

    def _recv(self, handle: _WorkerHandle, op: str) -> "Any":
        status, payload = self._recv_raw(handle, op)
        if status == "err":
            raise IndexError_(f"shard {handle.shard_no} worker: {payload}")
        if status == "fatal":
            raise WorkerCrashedError(
                f"shard {handle.shard_no} worker failed to start: {payload}"
            )
        return payload

    def _round(
        self,
        requests: "dict[int, tuple]",
        op: str,
        on_ok: "Callable[[dict[int, Any]], None] | None" = None,
    ) -> "dict[int, Any]":
        """One batched fan-out: send to every shard, then gather.

        All requests are written before any reply is read, so workers
        execute concurrently; the recorded IPC latency is the
        coordinator-observed round-trip (queue wait included).  When a
        worker dies (or replies with an error) mid-round, the replies
        of every *surviving* worker are still drained first, so the
        request/response streams of the survivors stay in lock-step —
        and ``on_ok`` is invoked with the successful replies *before*
        the raise: live shards may already have indexed (and journaled)
        their part of the round, and discarding those replies would
        permanently desynchronize the coordinator's maps (a later vote
        naming an orphaned id would KeyError during verification).
        """
        obs = get_obs()
        crashed: "list[int]" = []
        sent: "list[int]" = []
        for shard_no in requests:
            try:
                self._send(self._handles[shard_no], requests[shard_no])
            except WorkerCrashedError:
                crashed.append(shard_no)
                continue
            sent.append(shard_no)
            if obs.enabled:
                obs.index_worker_queue_depth.set(1, shard=shard_no)
        raw: "dict[int, tuple[str, Any]]" = {}
        for shard_no in sent:
            try:
                raw[shard_no] = self._recv_raw(self._handles[shard_no], op=op)
            except WorkerCrashedError:
                crashed.append(shard_no)
            finally:
                if obs.enabled:
                    obs.index_worker_queue_depth.set(0, shard=shard_no)
        replies: "dict[int, Any]" = {}
        errors: "list[str]" = []
        for shard_no, (status, payload) in raw.items():
            if status == "ok":
                replies[shard_no] = payload
            else:
                errors.append(f"shard {shard_no}: {payload}")
        if on_ok is not None and replies:
            on_ok(replies)
        if crashed:
            raise WorkerCrashedError(
                f"shard worker(s) {sorted(crashed)} died during {op!r}; "
                "recover_workers() rebuilds them from their segments"
            )
        if errors:
            raise IndexError_(
                f"worker error during {op!r}: " + "; ".join(errors)
            )
        return replies

    # -- sizing / routing ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, image_id: str) -> bool:
        return image_id in self._ids

    def shard_of(self, image_id: str) -> int:
        """The shard index *image_id* routes to (same hash as threads)."""
        return shard_of(image_id, self.n_shards)

    def shard_sizes(self) -> "list[int]":
        """Entries per shard, in shard order (coordinator-tracked)."""
        return list(self._sizes)

    def shard_skew(self) -> float:
        """Occupancy skew: max shard size over the mean (1.0 = even)."""
        sizes = self.shard_sizes()
        total = sum(sizes)
        if total == 0:
            return 1.0
        return max(sizes) / (total / len(sizes))

    # -- mutation ------------------------------------------------------------

    def add(self, features: FeatureSet) -> None:
        """Index one image's features on its shard worker.

        The payload is journaled to the shard's segment store before
        the worker acknowledges, so a successful return means the add
        survives a worker kill and is rebuilt by
        :meth:`recover_workers` (when segments are configured; sealed
        segments additionally survive OS crash/power loss — see
        :mod:`repro.index.segments` for the exact contract).
        """
        self.add_batch([features])

    @_locked
    def add_batch(self, feature_sets: "list[FeatureSet]") -> None:
        """Index many feature sets with one request per touched shard."""
        if not feature_sets:
            return
        payloads_by_shard: "dict[int, list[bytes]]" = {}
        routed: "list[tuple[str, int]]" = []
        seen: "set[str]" = set()
        for features in feature_sets:
            image_id = features.image_id
            if not image_id:
                raise IndexError_(
                    "features must carry an image_id to be indexed"
                )
            if image_id in self._ids or image_id in seen:
                raise IndexError_(f"image {image_id!r} is already indexed")
            seen.add(image_id)
            shard_no = self.shard_of(image_id)
            payloads_by_shard.setdefault(shard_no, []).append(
                serialize_features(features)
            )
            routed.append((image_id, shard_no))
        # on_ok registers every successful shard's adds even when a
        # sibling shard crashes or errors in the same round — those
        # workers indexed (and journaled) their part of the batch, and
        # the coordinator's maps must reflect it.
        self._round(
            {
                shard_no: ("add", payloads)
                for shard_no, payloads in payloads_by_shard.items()
            },
            op="add",
            on_ok=self._absorb_add_replies,
        )
        journal = get_journal()
        if journal.enabled:
            for image_id, shard_no in routed:
                journal.emit(
                    "index.route",
                    image_id=image_id,
                    shard=shard_no,
                    n_shards=self.n_shards,
                    shard_size=self._sizes[shard_no],
                )

    def _absorb_add_replies(self, replies: "dict[int, Any]") -> None:
        for shard_no, reply in replies.items():
            for image_id, ref in reply["added"]:
                self._ids[image_id] = shard_no
                self._refs[image_id] = ref
            self._absorb_stats(self._handles[shard_no], reply["stats"])

    # -- queries -------------------------------------------------------------

    def _live_shards(self) -> "list[int]":
        return [
            shard_no
            for shard_no in range(self.n_shards)
            if self._sizes[shard_no]
        ]

    def _merged_votes(
        self, grouped_queries: "list[GroupedKeys]"
    ) -> "list[dict[str, int]]":
        """One merged vote dict per grouped query, via one fan-out."""
        live = self._live_shards()
        merged: "list[dict[str, int]]" = [
            {} for _ in range(len(grouped_queries))
        ]
        if not live:
            return merged
        replies = self._round(
            {shard_no: ("vote", grouped_queries) for shard_no in live},
            op="vote",
        )
        for shard_no in live:
            for position, votes in enumerate(replies[shard_no]):
                merged[position].update(votes)
        return merged

    def _verify_round(
        self,
        queries: "list[FeatureSet]",
        shortlists: "list[list[str]]",
    ) -> "list[list[tuple[str, float]]]":
        """Exact scores for each query's shortlist, verified in-shard.

        Ships each query's payload once per shard holding any of its
        candidates; every shard scores with the same Equation-2 code
        the single index runs, and the per-query merge re-sorts with
        the shared ``(score desc, id asc)`` tie-break.
        """
        requests: "dict[int, list]" = {}
        positions: "dict[int, list[int]]" = {}
        payload_cache: "dict[int, bytes]" = {}
        for position, shortlist in enumerate(shortlists):
            if not shortlist:
                continue
            by_shard: "dict[int, list[str]]" = {}
            for candidate_id in shortlist:
                by_shard.setdefault(self._ids[candidate_id], []).append(
                    candidate_id
                )
            if position not in payload_cache:
                payload_cache[position] = serialize_features(
                    queries[position]
                )
            for shard_no, candidate_ids in by_shard.items():
                requests.setdefault(shard_no, []).append(
                    (payload_cache[position], candidate_ids)
                )
                positions.setdefault(shard_no, []).append(position)
        scored: "list[list[tuple[str, float]]]" = [
            [] for _ in range(len(shortlists))
        ]
        if not requests:
            return scored
        replies = self._round(
            {
                shard_no: ("verify", items)
                for shard_no, items in requests.items()
            },
            op="verify",
        )
        for shard_no, reply in replies.items():
            for position, pairs in zip(positions[shard_no], reply):
                scored[position].extend(pairs)
        for pairs in scored:
            pairs.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored

    @_locked
    def query_top(
        self, features: FeatureSet, k: int
    ) -> "list[tuple[str, float]]":
        """The *k* most similar stored images, merged across workers.

        Byte-identical to :meth:`FeatureIndex.query_top` over the same
        image set (see the module docstring for why).
        """
        if k < 1:
            raise IndexError_(f"k must be >= 1, got {k}")
        if not len(self) or len(features) == 0:
            return []
        keys = self._hasher.hash_keys(
            self._hasher.packed_descriptors(features)
        )
        votes = self._merged_votes([group_query_keys(keys)])[0]
        if not votes:
            return []
        shortlist = rank_votes(votes, max(k, self.verify_top_k))
        scored = self._verify_round([features], [shortlist])[0]
        return scored[:k]

    def query(self, features: FeatureSet) -> QueryResult:
        """Maximum similarity against all shards (CBRD's primitive)."""
        top = self.query_top(features, 1) if len(self) else []
        checked = min(len(self), self.verify_top_k)
        if not top:
            return QueryResult(
                best_id=None, best_similarity=0.0, candidates_checked=0
            )
        best_id, best_similarity = top[0]
        return QueryResult(
            best_id=best_id,
            best_similarity=best_similarity,
            candidates_checked=checked,
        )

    @_locked
    def query_batch(
        self, feature_sets: "list[FeatureSet]"
    ) -> "list[QueryResult]":
        """One :meth:`query` result per input, in input order.

        Two batched fan-outs serve the whole round: the coordinator
        packs, hashes and groups every query's keys **once**, ships the
        grouped keys to all live shards (vote phase), then partitions
        each shortlist by owning shard and ships the query payloads for
        in-worker verification (verify phase).  Answers are identical
        to calling :meth:`query` per feature set.
        """
        empty = QueryResult(
            best_id=None, best_similarity=0.0, candidates_checked=0
        )
        if not feature_sets:
            return []
        if not len(self):
            return [empty] * len(feature_sets)
        results: "list[QueryResult]" = [empty] * len(feature_sets)
        nonempty = [
            i for i, features in enumerate(feature_sets) if len(features)
        ]
        if not nonempty:
            return results
        with get_obs().span(
            "index.proc.query_batch",
            n_queries=len(nonempty),
            n_shards=self.n_shards,
            n_entries=len(self),
        ):
            packed = [
                self._hasher.packed_descriptors(feature_sets[i])
                for i in nonempty
            ]
            batched_keys = self._hasher.hash_keys(
                np.concatenate(packed, axis=0)
            )
            offsets = np.cumsum([0] + [rows.shape[0] for rows in packed])
            grouped = [
                group_query_keys(
                    batched_keys[offsets[position] : offsets[position + 1]]
                )
                for position in range(len(nonempty))
            ]
            merged = self._merged_votes(grouped)
            shortlists = [
                rank_votes(votes, max(1, self.verify_top_k)) if votes else []
                for votes in merged
            ]
            queries = [feature_sets[i] for i in nonempty]
            scored = self._verify_round(queries, shortlists)
            checked = min(len(self), self.verify_top_k)
            for position, pairs in enumerate(scored):
                if not pairs:
                    continue
                best_id, best_similarity = pairs[0]
                results[nonempty[position]] = QueryResult(
                    best_id=best_id,
                    best_similarity=best_similarity,
                    candidates_checked=checked,
                )
        return results

    # -- introspection -------------------------------------------------------

    @_locked
    def features_of(self, image_id: str) -> FeatureSet:
        """The stored feature set of one indexed image — zero-copy.

        Decoded from the owning worker's shared-memory arena block via
        a local attach: no pipe round-trip, and the descriptor matrix
        is a view into the worker-resident bytes.
        """
        ref = self._refs.get(image_id)
        if ref is None:
            raise IndexError_(f"image {image_id!r} is not indexed")
        return deserialize_features_view(self._reader.view(ref))

    def image_ids(self) -> "list[str]":
        """All indexed image ids, sorted (stable under arrival order)."""
        return sorted(self._ids)

    # -- segments ------------------------------------------------------------

    @_locked
    def seal(self) -> None:
        """Seal every shard's active segment (makes the tail immutable)."""
        self._segment_round("seal")

    @_locked
    def compact(self) -> None:
        """Merge every shard's sealed segments into one per shard."""
        replies = self._segment_round("compact")
        obs = get_obs()
        if obs.enabled:
            for shard_no in replies:
                obs.index_segment_compactions.inc(shard=shard_no)

    def _segment_round(self, op: str) -> "dict[int, Any]":
        if self.segment_dir is None:
            return {}
        replies = self._round(
            {
                shard_no: (op,)
                for shard_no in range(self.n_shards)
            },
            op="control",
        )
        for shard_no, reply in replies.items():
            self._absorb_stats(self._handles[shard_no], reply["stats"])
        return replies

    @_locked
    def fingerprints(self) -> "list[dict[str, Optional[str]]]":
        """Per-shard content + segment-chain fingerprints, shard order.

        ``content`` is order-independent over (id, descriptor bytes) —
        equal for a clean build and a segment rebuild of the same adds;
        ``segments`` is the insertion-order durability chain (``None``
        without a ``segment_dir``).
        """
        replies = self._round(
            {shard_no: ("fingerprint",) for shard_no in range(self.n_shards)},
            op="control",
        )
        return [replies[shard_no] for shard_no in range(self.n_shards)]
