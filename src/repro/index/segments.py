"""Immutable on-disk index segments: append → seal → compact.

Disaster deployments restart servers mid-build; the process-parallel
index (:mod:`repro.index.procpool`) therefore journals every indexed
feature payload to an **append-only segment file** before the add is
acknowledged.  The durability contract is two-tiered: appends are
*flushed* (they survive a worker/process kill, the failure mode the
recovery tests exercise), and segments are *fsynced at seal* (sealed
data additionally survives an OS crash or power loss); an acknowledged
add in the active tail is not yet power-loss durable.  Sealed segments are immutable and mmap-ed on load, so a
restarted shard worker rebuilds its LSH tables by replaying payloads
straight out of the page cache, and verifies the rebuild against the
**content fingerprint chain** recorded at seal time — the same
blake2b-over-payload-bytes discipline the kernel cache uses for
descriptors (:func:`repro.kernels.cache.descriptor_fingerprint`).

On-disk layout (little-endian), one directory per shard::

    seg-<seq>.bseg := header record* [footer]

    header   magic b"BSG1" | u8 version | u8 kind | u16 reserved
             | u32 shard | u64 base_records | u32 crc32(header)
    record   u32 length | u32 crc32(payload) | payload
    footer   u32 0xFFFFFFFF (sentinel) | magic b"BSGF" | u64 n_records
             | 16B segment chain | 16B cumulative chain | u32 crc32(footer)

A file with a valid footer is **sealed**; a file without one is the
**active tail**.  Recovery rules, in order of strictness:

* every sealed segment must be internally consistent — a corrupt
  interior is fatal (the data genuinely existed and is gone), and this
  includes a final segment whose footer is intact at EOF;
* the final segment may be torn **only when it carries no footer**: the
  valid record prefix is kept, the torn suffix (an append that never
  finished) is discarded;
* ``base_records`` must chain contiguously across segments, and each
  footer's cumulative fingerprint must extend the previous one — except
  that a later segment restarting at record 0 is an interrupted
  compaction's output, which recovery verifies against and then
  substitutes for the superseded inputs it duplicates.

Compaction merges every sealed segment into one (payload order
preserved, so all fingerprints are unchanged), writes it to a temp
file, fsyncs, and atomically renames before deleting the inputs — a
crash mid-compaction leaves the old set, the new file, or briefly
both (rename done, inputs not yet unlinked), and recovery resolves
each case to the same record sequence, never less than the data.
"""

from __future__ import annotations

import hashlib
import mmap
import os
import pathlib
import struct
import zlib
from dataclasses import dataclass
from typing import Iterator

from ..errors import IndexError_

MAGIC = b"BSG1"
FOOTER_MAGIC = b"BSGF"
VERSION = 1
#: Record-length sentinel introducing the footer (payloads are bounded
#: far below 4 GiB by the u32 wire format).
_SENTINEL = 0xFFFFFFFF

_HEADER = struct.Struct("<4sBBHIQI")
_RECORD = struct.Struct("<II")
_FOOTER = struct.Struct("<I4sQ16s16sI")

_KIND_CODES = {"orb": 0, "sift": 1, "pca-sift": 2}
_KIND_NAMES = {code: kind for kind, code in _KIND_CODES.items()}

#: Fingerprint width (matches the kernel cache's content digests).
DIGEST_SIZE = 16

#: Default size at which the pool rolls (seals) an active segment.
DEFAULT_ROLL_BYTES = 8 << 20


class FingerprintChain:
    """A running blake2b over length-framed payloads, cloneable."""

    def __init__(self, state: "hashlib._Hash | None" = None) -> None:
        self._digest = (
            hashlib.blake2b(digest_size=DIGEST_SIZE) if state is None else state
        )

    def update(self, payload: "bytes | memoryview") -> None:
        payload = memoryview(payload)
        self._digest.update(payload.nbytes.to_bytes(8, "little"))
        self._digest.update(payload)

    def value(self) -> bytes:
        return self._digest.digest()

    def hex(self) -> str:
        return self._digest.hexdigest()

    def clone(self) -> "FingerprintChain":
        return FingerprintChain(self._digest.copy())


def _crc(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def _sealed_at_eof(view: memoryview) -> bool:
    """True if the file *ends* with a structurally valid footer.

    Distinguishes a genuinely torn tail (the file simply stops where
    the crash cut it off — no footer) from bitrot inside a sealed
    segment (the footer is intact at EOF but an interior record fails
    its CRC).  Only the former may be prefix-truncated; the latter is
    acknowledged data that is gone, which must be fatal.
    """
    total = len(view)
    if total < _HEADER.size + _FOOTER.size:
        return False
    offset = total - _FOOTER.size
    sentinel, fmagic, _, _, _, footer_crc = _FOOTER.unpack_from(view, offset)
    return (
        sentinel == _SENTINEL
        and fmagic == FOOTER_MAGIC
        and footer_crc == _crc(bytes(view[offset : offset + _FOOTER.size - 4]))
    )


def _pack_header(kind: str, shard: int, base_records: int) -> bytes:
    kind_code = _KIND_CODES.get(kind)
    if kind_code is None:
        raise IndexError_(f"cannot persist segments of kind {kind!r}")
    body = _HEADER.pack(MAGIC, VERSION, kind_code, 0, shard, base_records, 0)
    return body[:-4] + struct.pack("<I", _crc(body[:-4]))


@dataclass(frozen=True)
class SegmentInfo:
    """One discovered segment file, parsed and verified."""

    path: pathlib.Path
    kind: str
    shard: int
    base_records: int
    n_records: int
    sealed: bool
    #: Chain over this segment's own records (sealed segments only).
    segment_fingerprint: "bytes | None"
    #: Chain over all records up to and including this segment.
    cumulative_fingerprint: "bytes | None"
    size_bytes: int


class SegmentWriter:
    """The active (unsealed) tail of one shard's segment sequence."""

    def __init__(
        self, path: pathlib.Path, kind: str, shard: int, base_records: int,
        cumulative: FingerprintChain,
    ) -> None:
        self.path = path
        self.kind = kind
        self.shard = shard
        self.base_records = base_records
        self.n_records = 0
        self._segment_chain = FingerprintChain()
        self._cumulative = cumulative
        self._file = open(path, "xb")
        self._file.write(_pack_header(kind, shard, base_records))
        self._file.flush()
        self.size_bytes = _HEADER.size

    def append(self, payload: "bytes | memoryview") -> None:
        """Frame one payload, flushed to the OS before returning.

        Flush (no fsync) means the record survives a worker/process
        kill but not an OS crash or power loss until the segment is
        sealed — :meth:`seal` is the fsync point.  See the module
        docstring for the exact durability contract.
        """
        payload = memoryview(payload)
        if payload.nbytes >= _SENTINEL:
            raise IndexError_("payload too large for the segment wire format")
        self._file.write(_RECORD.pack(payload.nbytes, _crc(bytes(payload))))
        self._file.write(payload)
        self._file.flush()
        self._segment_chain.update(payload)
        self._cumulative.update(payload)
        self.n_records += 1
        self.size_bytes += _RECORD.size + payload.nbytes

    def seal(self) -> SegmentInfo:
        """Write the footer, fsync, close; the file is now immutable."""
        segment_fp = self._segment_chain.value()
        cumulative_fp = self._cumulative.value()
        body = _FOOTER.pack(
            _SENTINEL, FOOTER_MAGIC, self.n_records, segment_fp, cumulative_fp, 0
        )
        self._file.write(body[:-4] + struct.pack("<I", _crc(body[:-4])))
        self._file.flush()
        os.fsync(self._file.fileno())
        self._file.close()
        return SegmentInfo(
            path=self.path,
            kind=self.kind,
            shard=self.shard,
            base_records=self.base_records,
            n_records=self.n_records,
            sealed=True,
            segment_fingerprint=segment_fp,
            cumulative_fingerprint=cumulative_fp,
            size_bytes=self.path.stat().st_size,
        )

    def abort(self) -> None:
        """Close without sealing (the file stays a recoverable tail)."""
        if not self._file.closed:
            self._file.flush()
            self._file.close()


class Segment:
    """A read-only, mmap-backed view of one segment file."""

    def __init__(self, path: pathlib.Path, final: bool) -> None:
        self.path = path
        self._file = open(path, "rb")
        size = os.fstat(self._file.fileno()).st_size
        if size < _HEADER.size:
            self._file.close()
            raise IndexError_(f"{path.name}: truncated segment header")
        self._map = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
        self._view = memoryview(self._map)
        try:
            self.info = self._parse(final)
        except Exception:
            self.close()
            raise

    def _parse(self, final: bool) -> SegmentInfo:
        view = self._view
        magic, version, kind_code, _, shard, base_records, header_crc = (
            _HEADER.unpack_from(view, 0)
        )
        if magic != MAGIC:
            raise IndexError_(f"{self.path.name}: bad segment magic {magic!r}")
        if version != VERSION:
            raise IndexError_(
                f"{self.path.name}: unsupported segment version {version}"
            )
        kind = _KIND_NAMES.get(kind_code)
        if kind is None:
            raise IndexError_(f"{self.path.name}: unknown kind code {kind_code}")
        if header_crc != _crc(bytes(view[: _HEADER.size - 4])):
            raise IndexError_(f"{self.path.name}: segment header CRC mismatch")

        offsets: "list[tuple[int, int]]" = []
        chain = FingerprintChain()
        offset = _HEADER.size
        total = len(view)
        sealed = False
        segment_fp: "bytes | None" = None
        cumulative_fp: "bytes | None" = None
        # A final segment may only be prefix-truncated when it really is
        # a torn tail.  If a valid footer sits at EOF the file was
        # sealed, and any parse failure before reaching that footer is
        # interior corruption — fatal, exactly as for non-final
        # segments.
        sealed_eof = final and _sealed_at_eof(view)

        def interior_corruption(detail: str) -> None:
            if sealed_eof:
                raise IndexError_(
                    f"{self.path.name}: {detail} inside a sealed segment "
                    "(valid footer at EOF; refusing to truncate)"
                )

        while True:
            if offset + 4 > total:
                interior_corruption("truncated record length")
                break  # torn mid record-length
            (length,) = struct.unpack_from("<I", view, offset)
            if length == _SENTINEL:
                if offset + _FOOTER.size > total:
                    interior_corruption("misplaced footer sentinel")
                    break  # torn mid footer
                _, fmagic, n_records, segment_fp, cumulative_fp, footer_crc = (
                    _FOOTER.unpack_from(view, offset)
                )
                expected = _crc(bytes(view[offset : offset + _FOOTER.size - 4]))
                if fmagic != FOOTER_MAGIC or footer_crc != expected:
                    raise IndexError_(
                        f"{self.path.name}: corrupt segment footer"
                    )
                if n_records != len(offsets):
                    raise IndexError_(
                        f"{self.path.name}: footer claims {n_records} records, "
                        f"file holds {len(offsets)}"
                    )
                if segment_fp != chain.value():
                    raise IndexError_(
                        f"{self.path.name}: segment fingerprint mismatch "
                        "(content does not match what was sealed)"
                    )
                sealed = True
                break
            if offset + _RECORD.size + length > total:
                interior_corruption("record overruns the file")
                break  # torn mid payload
            _, payload_crc = _RECORD.unpack_from(view, offset)
            start = offset + _RECORD.size
            payload = view[start : start + length]
            if _crc(bytes(payload)) != payload_crc:
                if final and not sealed_eof:
                    break  # torn tail: keep the valid prefix
                raise IndexError_(
                    f"{self.path.name}: record {len(offsets)} CRC mismatch "
                    "inside a "
                    + ("sealed" if sealed_eof else "non-final")
                    + " segment"
                )
            chain.update(payload)
            offsets.append((start, length))
            offset = start + length
        if not sealed and not final:
            raise IndexError_(
                f"{self.path.name}: unsealed segment before the final one"
            )
        self._offsets = offsets
        self._chain = chain
        return SegmentInfo(
            path=self.path,
            kind=kind,
            shard=shard,
            base_records=base_records,
            n_records=len(offsets),
            sealed=sealed,
            segment_fingerprint=segment_fp,
            cumulative_fingerprint=cumulative_fp,
            size_bytes=total,
        )

    def payloads(self) -> "Iterator[memoryview]":
        """Every record payload, in append order, zero-copy from mmap."""
        for start, length in self._offsets:
            yield self._view[start : start + length]

    def segment_chain(self) -> FingerprintChain:
        """The verified chain over this segment's records."""
        return self._chain.clone()

    def close(self) -> None:
        self._view.release()
        try:
            self._map.close()
        except BufferError:  # a payload view still alive; freed with it
            pass
        self._file.close()

    def __enter__(self) -> "Segment":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _segment_paths(directory: pathlib.Path) -> "list[pathlib.Path]":
    return sorted(directory.glob("seg-*.bseg"))


class ShardSegmentStore:
    """One shard's segment directory: append, seal, recover, compact."""

    def __init__(
        self,
        directory: "pathlib.Path | str",
        kind: str,
        shard: int = 0,
        roll_bytes: int = DEFAULT_ROLL_BYTES,
    ) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.kind = kind
        self.shard = shard
        self.roll_bytes = int(roll_bytes)
        self.sealed: "list[SegmentInfo]" = []
        self._writer: "SegmentWriter | None" = None
        self._chain = FingerprintChain()
        self.n_records = 0
        self._next_seq = 0
        self.compactions = 0
        self.recovered_tail_records = 0

    # -- recovery ------------------------------------------------------------

    def recover(self) -> "list[bytes]":
        """Load every durable payload; leaves the store ready to append.

        Returns the payloads **in insertion order** (the caller replays
        them into its index).  Verifies cross-segment contiguity and
        the fingerprint chain.  A torn final segment is truncated to
        its valid record prefix and atomically rewritten **in place**
        as a sealed segment (write sibling ``.tmp``, fsync, rename), so
        recovery itself is crash-safe: interrupted at any point, the
        directory still recovers to the same record sequence.  A
        compaction interrupted between renaming the merged segment and
        unlinking its inputs leaves both on disk; recovery detects the
        merged segment (a later file restarting at ``base_records`` 0),
        verifies it duplicates the leftover inputs, and drops them.
        """
        for stale in self.directory.glob("*.bseg.tmp"):
            stale.unlink()  # a rewrite that never reached its rename
        paths = self._drop_superseded(_segment_paths(self.directory))
        payloads: "list[bytes]" = []
        expected_base = 0
        chain_before_tail = self._chain.clone()
        torn_path: "pathlib.Path | None" = None
        torn_payloads: "list[bytes]" = []
        for position, path in enumerate(paths):
            with Segment(path, final=position == len(paths) - 1) as segment:
                info = segment.info
                if info.kind != self.kind or info.shard != self.shard:
                    raise IndexError_(
                        f"{path.name}: segment belongs to shard "
                        f"{info.shard}/{info.kind}, store is "
                        f"{self.shard}/{self.kind}"
                    )
                if info.base_records != expected_base:
                    raise IndexError_(
                        f"{path.name}: base_records {info.base_records} "
                        f"breaks the chain (expected {expected_base})"
                    )
                chain_before_tail = self._chain.clone()
                segment_payloads = [bytes(p) for p in segment.payloads()]
                for payload in segment_payloads:
                    self._chain.update(payload)
                if info.sealed:
                    if info.cumulative_fingerprint != self._chain.value():
                        raise IndexError_(
                            f"{path.name}: cumulative fingerprint mismatch — "
                            "segment chain does not extend its predecessors"
                        )
                    self.sealed.append(info)
                else:
                    torn_path = path
                    torn_payloads = segment_payloads
                payloads.extend(segment_payloads)
                expected_base += info.n_records
        self.n_records = expected_base
        self._next_seq = (
            max(
                (int(path.stem.split("-")[1]) for path in paths),
                default=-1,
            )
            + 1
        )
        if torn_path is not None:
            self.recovered_tail_records = len(torn_payloads)
            self._reseal_torn_tail(torn_path, torn_payloads, chain_before_tail)
        return payloads

    def _drop_superseded(
        self, paths: "list[pathlib.Path]"
    ) -> "list[pathlib.Path]":
        """Resolve an interrupted compaction before chain verification.

        ``compact()`` seals the merged segment (``base_records`` 0),
        atomically renames it into place, *then* unlinks its inputs — a
        crash in that window leaves the merged segment plus some suffix
        of the old sealed segments, whose record ranges overlap it.
        The merged file always sorts after its inputs (it takes the
        next sequence number), so any segment restarting the chain at
        record 0 at a non-first position marks everything before it as
        superseded.  Before dropping those files, verify the merged
        segment really duplicates them: replaying its payloads must
        reproduce each leftover input's sealed *cumulative* fingerprint
        at the matching record count (both chains hash records from 0,
        so the comparison holds even when a prefix of the inputs was
        already unlinked).  On any mismatch, refuse and raise — that is
        genuine divergence, not compaction residue.
        """
        restart = 0
        for position, path in enumerate(paths):
            if position == 0:
                continue
            with open(path, "rb") as handle:
                header = handle.read(_HEADER.size)
            if len(header) < _HEADER.size:
                continue  # the main pass reports truncation properly
            magic, _, _, _, _, base_records, _ = _HEADER.unpack(header)
            if magic == MAGIC and base_records == 0:
                restart = position
        if restart == 0:
            return paths
        superseded = paths[:restart]
        # Record count → (input path, its sealed cumulative fingerprint).
        checkpoints: "dict[int, tuple[pathlib.Path, bytes]]" = {}
        for path in superseded:
            with Segment(path, final=False) as segment:
                end = segment.info.base_records + segment.info.n_records
                checkpoints[end] = (path, segment.info.cumulative_fingerprint)
        merged_path = paths[restart]
        with Segment(merged_path, final=restart == len(paths) - 1) as merged:
            if not merged.info.sealed:
                raise IndexError_(
                    f"{merged_path.name}: chain restarts at record 0 but the "
                    "segment is unsealed — cannot supersede earlier segments"
                )
            chain = FingerprintChain()
            count = 0
            for payload in merged.payloads():
                chain.update(payload)
                count += 1
                checkpoint = checkpoints.pop(count, None)
                if checkpoint is not None and chain.value() != checkpoint[1]:
                    raise IndexError_(
                        f"{merged_path.name}: does not duplicate superseded "
                        f"segment {checkpoint[0].name} — refusing to drop it"
                    )
        if checkpoints:
            leftover = ", ".join(
                path.name for path, _ in sorted(checkpoints.values())
            )
            raise IndexError_(
                f"{merged_path.name}: superseded segment(s) {leftover} hold "
                "records beyond the merged segment — refusing to drop them"
            )
        for path in superseded:
            path.unlink()
        return paths[restart:]

    def _reseal_torn_tail(
        self,
        path: pathlib.Path,
        tail_payloads: "list[bytes]",
        chain_before: FingerprintChain,
    ) -> None:
        """Atomically replace a torn tail with its sealed valid prefix."""
        tmp_path = path.with_name(path.name + ".tmp")
        writer = SegmentWriter(
            tmp_path,
            self.kind,
            self.shard,
            self.n_records - len(tail_payloads),
            chain_before,
        )
        for payload in tail_payloads:
            writer.append(payload)
        info = writer.seal()
        os.replace(tmp_path, path)
        self.sealed.append(
            SegmentInfo(
                path=path,
                kind=info.kind,
                shard=info.shard,
                base_records=info.base_records,
                n_records=info.n_records,
                sealed=True,
                segment_fingerprint=info.segment_fingerprint,
                cumulative_fingerprint=info.cumulative_fingerprint,
                size_bytes=path.stat().st_size,
            )
        )

    # -- appends -------------------------------------------------------------

    def _open_writer(
        self,
        base_records: "int | None" = None,
        cumulative: "FingerprintChain | None" = None,
    ) -> None:
        path = self.directory / f"seg-{self._next_seq:08d}.bseg"
        self._next_seq += 1
        self._writer = SegmentWriter(
            path,
            self.kind,
            self.shard,
            self.n_records if base_records is None else base_records,
            self._chain.clone() if cumulative is None else cumulative.clone(),
        )

    def append(self, payload: "bytes | memoryview") -> None:
        """Append one payload (rolls and fsyncs the segment when large).

        Durable against process kill immediately; durable against OS
        crash/power loss once the segment seals (fsync happens at seal).
        """
        if self._writer is None:
            self._open_writer()
        assert self._writer is not None
        self._writer.append(payload)
        self._chain.update(payload)
        self.n_records += 1
        if self._writer.size_bytes >= self.roll_bytes:
            self.seal_active()

    def seal_active(self) -> "SegmentInfo | None":
        """Seal the active segment, if any; returns its info."""
        if self._writer is None or self._writer.n_records == 0:
            return None
        info = self._writer.seal()
        self.sealed.append(info)
        self._writer = None
        return info

    # -- maintenance ---------------------------------------------------------

    def compact(self) -> "SegmentInfo | None":
        """Merge every sealed segment into one; fingerprints unchanged."""
        self.seal_active()
        if len(self.sealed) <= 1:
            return self.sealed[0] if self.sealed else None
        tmp_path = self.directory / f"seg-{self._next_seq:08d}.bseg.tmp"
        final_path = self.directory / f"seg-{self._next_seq:08d}.bseg"
        self._next_seq += 1
        # Write the merged file under the temp name, then rename: a crash
        # mid-merge leaves the sealed inputs untouched.
        merged = SegmentWriter(
            tmp_path, self.kind, self.shard, 0, FingerprintChain()
        )
        old = list(self.sealed)
        for info in old:
            with Segment(info.path, final=False) as segment:
                for payload in segment.payloads():
                    merged.append(payload)
        merged_info = merged.seal()
        os.replace(tmp_path, final_path)
        for info in old:
            info.path.unlink()
        self.sealed = [
            SegmentInfo(
                path=final_path,
                kind=merged_info.kind,
                shard=merged_info.shard,
                base_records=0,
                n_records=merged_info.n_records,
                sealed=True,
                segment_fingerprint=merged_info.segment_fingerprint,
                cumulative_fingerprint=merged_info.cumulative_fingerprint,
                size_bytes=final_path.stat().st_size,
            )
        ]
        self.compactions += 1
        return self.sealed[0]

    # -- introspection -------------------------------------------------------

    def fingerprint(self) -> str:
        """Hex chain over every appended payload, in insertion order.

        Invariant under seal and compact; equal across a clean build
        and a rebuild-from-segments of the same adds — the recovery
        check the process index's ``--verify`` path pins.
        """
        return self._chain.hex()

    def stats(self) -> "dict[str, int]":
        active_records = self._writer.n_records if self._writer else 0
        return {
            "n_records": self.n_records,
            "n_sealed_segments": len(self.sealed),
            "active_records": active_records,
            "compactions": self.compactions,
            "disk_bytes": sum(info.size_bytes for info in self.sealed)
            + (self._writer.size_bytes if self._writer else 0),
        }

    def close(self) -> None:
        """Seal the tail and release resources.  Idempotent."""
        self.seal_active()
        if self._writer is not None:  # empty active file
            self._writer.abort()
            self._writer.path.unlink(missing_ok=True)
            self._writer = None
