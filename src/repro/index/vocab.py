"""A vocabulary-tree (bag-of-visual-words) index alternative.

The Kentucky dataset's own paper (Nister & Stewenius, CVPR 2006 — the
paper's reference [20]) retrieves images with a hierarchical visual
vocabulary: descriptors are quantised to "visual words", an image
becomes a TF-IDF-weighted word histogram, and retrieval is histogram
scoring against inverted lists.

BEES itself uses direct descriptor matching (Equation 2); this module
provides the vocabulary-tree approach as a drop-in alternative index so
the two retrieval strategies can be compared (`tests/index/test_vocab.py`
and the ablation discussion in DESIGN.md).  It works on ORB's binary
descriptors with Hamming-space k-medoids at each tree level.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from ..errors import IndexError_
from ..features.base import FeatureSet
from ..features.matching import hamming_distance_matrix


def _majority_centroid(descriptors: np.ndarray) -> np.ndarray:
    """The bitwise-majority 'mean' of packed binary descriptors."""
    bits = np.unpackbits(descriptors, axis=1)
    majority = bits.mean(axis=0) >= 0.5
    return np.packbits(majority[None, :], axis=1)[0]


def _kmeans_binary(
    descriptors: np.ndarray, k: int, rng: np.random.Generator, iterations: int = 6
) -> "tuple[np.ndarray, np.ndarray]":
    """Hamming k-means over packed descriptors.

    Returns ``(centroids, assignments)``.  Empty clusters are reseeded
    from the farthest points, the standard fix.
    """
    n = len(descriptors)
    k = min(k, n)
    choice = rng.choice(n, size=k, replace=False)
    centroids = descriptors[choice].copy()
    assignments = np.zeros(n, dtype=np.int64)
    for _ in range(iterations):
        distances = hamming_distance_matrix(descriptors, centroids)
        assignments = distances.argmin(axis=1)
        for cluster in range(k):
            members = descriptors[assignments == cluster]
            if len(members):
                centroids[cluster] = _majority_centroid(members)
            else:
                farthest = distances.min(axis=1).argmax()
                centroids[cluster] = descriptors[farthest]
    return centroids, assignments


@dataclass
class VocabularyTree:
    """A hierarchical visual vocabulary over binary descriptors."""

    branching: int = 8
    depth: int = 3
    seed: int = 5
    _centroids: list = field(default_factory=list, init=False, repr=False)
    _children: list = field(default_factory=list, init=False, repr=False)
    _is_trained: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        if self.branching < 2:
            raise IndexError_(f"branching must be >= 2, got {self.branching}")
        if self.depth < 1:
            raise IndexError_(f"depth must be >= 1, got {self.depth}")

    @property
    def n_words(self) -> int:
        """Leaf count — the vocabulary size."""
        return self.branching**self.depth

    # -- training -------------------------------------------------------------

    def train(self, descriptors: np.ndarray) -> None:
        """Build the tree from a training descriptor sample."""
        descriptors = np.asarray(descriptors, dtype=np.uint8)
        if descriptors.ndim != 2 or len(descriptors) < self.branching:
            raise IndexError_(
                f"need at least {self.branching} training descriptors, "
                f"got shape {descriptors.shape}"
            )
        rng = np.random.default_rng(self.seed)
        # Flat layout: node 0 is the root; each split appends children.
        self._centroids = [None]
        self._children = [[]]
        self._split(0, descriptors, level=0, rng=rng)
        self._is_trained = True

    def _split(self, node: int, descriptors: np.ndarray, level: int, rng) -> None:
        if level == self.depth or len(descriptors) < self.branching:
            return
        centroids, assignments = _kmeans_binary(descriptors, self.branching, rng)
        for cluster in range(len(centroids)):
            child = len(self._centroids)
            self._centroids.append(centroids[cluster])
            self._children[node].append(child)
            self._children.append([])
            members = descriptors[assignments == cluster]
            if len(members):
                self._split(child, members, level + 1, rng)

    # -- quantisation -----------------------------------------------------------

    def words(self, descriptors: np.ndarray) -> np.ndarray:
        """Quantise descriptors to leaf-node ids ("visual words")."""
        if not self._is_trained:
            raise IndexError_("vocabulary tree is not trained")
        descriptors = np.asarray(descriptors, dtype=np.uint8)
        if len(descriptors) == 0:
            return np.zeros(0, dtype=np.int64)
        words = np.zeros(len(descriptors), dtype=np.int64)
        for index, descriptor in enumerate(descriptors):
            node = 0
            while self._children[node]:
                children = self._children[node]
                child_centroids = np.stack([self._centroids[c] for c in children])
                distances = hamming_distance_matrix(descriptor[None, :], child_centroids)
                node = children[int(distances.argmin())]
            words[index] = node
        return words


@dataclass
class BagOfWordsIndex:
    """TF-IDF inverted-file retrieval over a vocabulary tree."""

    tree: VocabularyTree = field(default_factory=VocabularyTree)
    _inverted: dict = field(default_factory=lambda: defaultdict(list), init=False, repr=False)
    _vectors: dict = field(default_factory=dict, init=False, repr=False)
    _document_frequency: dict = field(default_factory=lambda: defaultdict(int), init=False, repr=False)

    def __len__(self) -> int:
        return len(self._vectors)

    def _tf(self, words: np.ndarray) -> dict:
        counts: dict[int, float] = defaultdict(float)
        for word in words.tolist():
            counts[word] += 1.0
        total = max(1.0, float(len(words)))
        return {word: count / total for word, count in counts.items()}

    def add(self, features: FeatureSet) -> None:
        """Index one image's quantised descriptors."""
        if not features.image_id:
            raise IndexError_("features must carry an image_id")
        if features.image_id in self._vectors:
            raise IndexError_(f"image {features.image_id!r} already indexed")
        words = self.tree.words(features.descriptors)
        vector = self._tf(words)
        self._vectors[features.image_id] = vector
        for word in vector:
            self._inverted[word].append(features.image_id)
            self._document_frequency[word] += 1

    def _idf(self, word: int) -> float:
        n_docs = max(1, len(self._vectors))
        df = self._document_frequency.get(word, 0)
        return float(np.log((n_docs + 1) / (df + 1)) + 1.0)

    def query_top(self, features: FeatureSet, k: int) -> "list[tuple[str, float]]":
        """Top-*k* images by TF-IDF cosine score via the inverted file."""
        if k < 1:
            raise IndexError_(f"k must be >= 1, got {k}")
        if not self._vectors or len(features) == 0:
            return []
        query = self._tf(self.tree.words(features.descriptors))
        scores: dict[str, float] = defaultdict(float)
        query_norm = 0.0
        for word, weight in query.items():
            idf = self._idf(word)
            weighted = weight * idf
            query_norm += weighted * weighted
            for image_id in set(self._inverted.get(word, [])):
                scores[image_id] += weighted * self._vectors[image_id].get(word, 0.0) * idf
        query_norm = np.sqrt(max(query_norm, 1e-12))
        ranked = []
        for image_id, dot in scores.items():
            doc = self._vectors[image_id]
            doc_norm = np.sqrt(
                sum((w * self._idf(word)) ** 2 for word, w in doc.items())
            )
            ranked.append((image_id, dot / (query_norm * max(doc_norm, 1e-12))))
        ranked.sort(key=lambda pair: pair[1], reverse=True)
        return ranked[:k]
