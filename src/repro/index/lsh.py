"""Locality-sensitive hashing for descriptor lookup.

The server index must answer "which stored images share descriptors with
this query image?" without brute-forcing every stored image.  For binary
(ORB) descriptors we bit-sample: each table hashes a random subset of
bit positions, so descriptors within a small Hamming ball collide with
useful probability while random pairs almost never do.  Float (SIFT
family) descriptors are first binarised by random-hyperplane signs and
then go through the same machinery.

The index uses LSH to *shortlist* candidate images by descriptor votes;
the exact Jaccard similarity (Equation 2) is then computed only against
the top-voted candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import IndexError_
from ..kernels.voting import BucketStore, GroupedKeys

DEFAULT_N_TABLES = 8
DEFAULT_BITS_PER_KEY = 16
#: Width of the binary sketch used for float descriptors.
FLOAT_SKETCH_BITS = 128


@dataclass
class HammingLSH:
    """Multi-table bit-sampling LSH over packed binary descriptors."""

    n_bits: int
    n_tables: int = DEFAULT_N_TABLES
    bits_per_key: int = DEFAULT_BITS_PER_KEY
    seed: int = 7
    _store: BucketStore = field(init=False, repr=False)
    _samples: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_bits < 8:
            raise IndexError_(f"n_bits must be >= 8, got {self.n_bits}")
        if self.n_tables < 1:
            raise IndexError_(f"n_tables must be >= 1, got {self.n_tables}")
        if not 1 <= self.bits_per_key <= min(self.n_bits, 62):
            raise IndexError_(
                f"bits_per_key must be in [1, min(n_bits, 62)], got {self.bits_per_key}"
            )
        rng = np.random.default_rng(self.seed)
        self._samples = np.stack(
            [
                rng.choice(self.n_bits, size=self.bits_per_key, replace=False)
                for _ in range(self.n_tables)
            ]
        )
        self._store = BucketStore(n_tables=self.n_tables)

    # -- keys --------------------------------------------------------------

    def keys(self, packed: np.ndarray) -> np.ndarray:
        """Hash keys for packed descriptors; shape (n_desc, n_tables).

        Keys depend only on the sampled bit positions (seeded), so two
        LSH instances built with the same ``(n_bits, n_tables,
        bits_per_key, seed)`` accept each other's keys — the sharing the
        sharded index uses to hash a query once across all shards.
        """
        packed = np.asarray(packed, dtype=np.uint8)
        if packed.ndim != 2 or packed.shape[1] * 8 != self.n_bits:
            raise IndexError_(
                f"expected (n, {self.n_bits // 8}) packed rows, got {packed.shape}"
            )
        bits = np.unpackbits(packed, axis=1)  # (n, n_bits)
        sampled = bits[:, self._samples]  # (n, n_tables, bits_per_key)
        weights = (1 << np.arange(self.bits_per_key, dtype=np.int64))[None, None, :]
        return (sampled.astype(np.int64) * weights).sum(axis=2)

    # -- mutation / lookup --------------------------------------------------

    def add(self, packed: np.ndarray, ref: int) -> None:
        """Insert every descriptor row under reference id *ref*.

        Buckets are deduplicated at insert time: however many of the
        image's descriptors hash to the same (table, key) bucket, the
        ref lands in it once — so hot buckets stay bounded by the
        number of *images* and lookups never pay a dedup pass.
        """
        self._store.insert(self.keys(packed), ref)

    def votes(self, packed: np.ndarray) -> dict[int, int]:
        """Reference-id vote counts for a query descriptor set.

        A reference gets at most one vote per (query descriptor, table)
        bucket hit; strongly overlapping images accumulate many votes.
        """
        if len(packed) == 0:
            return {}
        return self.votes_from_keys(self.keys(packed))

    def votes_from_keys(self, keys: np.ndarray) -> dict[int, int]:
        """Vote counts for precomputed :meth:`keys` output.

        Aggregated by the vectorized kernel store
        (:class:`repro.kernels.voting.BucketStore`): hit buckets are
        gathered as int arrays and reduced with one weighted
        ``bincount`` — the counts are identical to the historical
        per-key Python loop.
        """
        return self._store.votes(keys)

    def votes_from_grouped(self, grouped: "GroupedKeys") -> dict[int, int]:
        """Vote counts for keys already deduplicated per table.

        The sharded coordinator's fast path: it runs
        :func:`~repro.kernels.voting.group_query_keys` **once** per
        query and ships the grouped form to every shard, so no shard
        repeats the per-table unique pass.  Counts are identical to
        :meth:`votes_from_keys` on the ungrouped keys.
        """
        return self._store.votes_from_grouped(grouped)


def float_sketch_planes(dim: int, n_bits: int = FLOAT_SKETCH_BITS, seed: int = 11) -> np.ndarray:
    """Random hyperplanes that binarise float descriptors for LSH."""
    if dim < 1:
        raise IndexError_(f"descriptor dim must be >= 1, got {dim}")
    rng = np.random.default_rng(seed)
    return rng.normal(size=(dim, n_bits))


def sketch_float_descriptors(descriptors: np.ndarray, planes: np.ndarray) -> np.ndarray:
    """Sign-binarise float descriptors; returns packed uint8 rows."""
    descriptors = np.asarray(descriptors, dtype=np.float64)
    if descriptors.ndim != 2 or descriptors.shape[1] != planes.shape[0]:
        raise IndexError_(
            f"descriptor dim {descriptors.shape} does not match planes {planes.shape}"
        )
    bits = (descriptors @ planes) > 0
    return np.packbits(bits, axis=1)
