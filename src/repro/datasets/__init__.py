"""Synthetic stand-ins for the paper's three real imagesets."""

from .base import ImageDataset, LabeledPair, batched
from .disaster import DisasterDataset
from .folder import FolderDataset
from .geo import PARIS_TEST_BOX, BoundingBox, unique_locations
from .kentucky import FULL_SCALE_GROUPS, VIEWS_PER_GROUP, SyntheticKentucky
from .paris import FULL_SCALE_IMAGES, FULL_SCALE_LOCATIONS, SyntheticParis

__all__ = [
    "BoundingBox",
    "DisasterDataset",
    "FolderDataset",
    "FULL_SCALE_GROUPS",
    "FULL_SCALE_IMAGES",
    "FULL_SCALE_LOCATIONS",
    "ImageDataset",
    "LabeledPair",
    "PARIS_TEST_BOX",
    "SyntheticKentucky",
    "SyntheticParis",
    "VIEWS_PER_GROUP",
    "batched",
    "unique_locations",
]
