"""The synthetic Paris imageset.

The real dataset (Weyand et al.) holds 501,356 geotagged Flickr/
Panoramio photos; the paper's Figure-12 subset covers 165,539 images at
58,818 unique locations inside the inner-city bounding box, with the
densest location holding 5,399 photos.  What the coverage experiment
depends on is exactly that *shape*: a heavy-tailed images-per-location
distribution over a finite set of locations, where photos at the same
location show the same scene (hence are mutually redundant).

``SyntheticParis`` reproduces the shape at a configurable scale: a
Zipf-like allocation of ``n_images`` over ``n_locations`` points drawn
uniformly inside the box.  Every image at a location is a perturbed
view of the location's scene and carries the location as its geotag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..errors import DatasetError
from ..imaging.image import Image
from ..imaging.synth import SceneGenerator
from .geo import BoundingBox

#: Seed offset separating Paris scenes from other datasets'.
_SCENE_BASE = 3_000_000

#: Full-scale parameters from the paper (for reference and scaling).
FULL_SCALE_IMAGES = 165_539
FULL_SCALE_LOCATIONS = 58_818


@dataclass
class SyntheticParis:
    """Geotagged, location-clustered synthetic photo collection."""

    n_images: int = 2000
    n_locations: int = 700
    zipf_exponent: float = 1.1
    seed: int = 0
    box: BoundingBox = field(default_factory=BoundingBox.paris_test)
    generator: SceneGenerator = field(default_factory=SceneGenerator)
    family_size: int = 10
    shared_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.n_images < 1:
            raise DatasetError(f"n_images must be >= 1, got {self.n_images}")
        if not 1 <= self.n_locations <= self.n_images:
            raise DatasetError(
                f"n_locations must be in [1, n_images], got {self.n_locations}"
            )
        if self.zipf_exponent <= 0:
            raise DatasetError(
                f"zipf_exponent must be positive, got {self.zipf_exponent}"
            )
        rng = np.random.default_rng(self.seed)
        # Zipf-like allocation: every location gets one image, the rest
        # go to locations proportionally to rank^-s (heavy head, long
        # tail — the paper's densest location holds 3% of all images).
        ranks = np.arange(1, self.n_locations + 1, dtype=np.float64)
        weights = ranks ** (-self.zipf_exponent)
        weights /= weights.sum()
        extra = self.n_images - self.n_locations
        counts = np.ones(self.n_locations, dtype=np.int64)
        if extra > 0:
            counts += rng.multinomial(extra, weights)
        self._counts = counts
        self._lons = rng.uniform(self.box.lon_min, self.box.lon_max, self.n_locations)
        self._lats = rng.uniform(self.box.lat_min, self.box.lat_max, self.n_locations)

    def __len__(self) -> int:
        return self.n_images

    # -- structure -----------------------------------------------------------

    @property
    def location_counts(self) -> np.ndarray:
        """Images per location (descending by construction)."""
        return self._counts.copy()

    def location(self, index: int) -> "tuple[float, float]":
        """The (lon, lat) of location *index*."""
        if not 0 <= index < self.n_locations:
            raise DatasetError(f"location index out of range: {index}")
        return (float(self._lons[index]), float(self._lats[index]))

    def image(self, location: int, view: int) -> Image:
        """View *view* of the scene at *location*."""
        if not 0 <= location < self.n_locations:
            raise DatasetError(f"location index out of range: {location}")
        if not 0 <= view < int(self._counts[location]):
            raise DatasetError(
                f"location {location} has {self._counts[location]} images, "
                f"requested view {view}"
            )
        family = location // self.family_size
        image = self.generator.view(
            _SCENE_BASE + location,
            view,
            image_id=f"paris-l{location}-v{view}",
            group_id=f"paris-l{location}",
            shared_seed=_SCENE_BASE + family,
            shared_fraction=self.shared_fraction,
        )
        return Image(
            bitmap=image.bitmap,
            image_id=image.image_id,
            group_id=image.group_id,
            geotag=self.location(location),
            nominal_bytes=image.nominal_bytes,
            nominal_resolution=image.nominal_resolution,
        )

    def __iter__(self) -> Iterator[Image]:
        for location in range(self.n_locations):
            for view in range(int(self._counts[location])):
                yield self.image(location, view)

    def image_refs(self) -> "list[tuple[int, int]]":
        """All ``(location, view)`` pairs, location-major order."""
        return [
            (location, view)
            for location in range(self.n_locations)
            for view in range(int(self._counts[location]))
        ]

    def shuffled_refs(self, seed: int = 42) -> "list[tuple[int, int]]":
        """The same refs in a seeded random order (upload sequencing)."""
        refs = self.image_refs()
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(refs))
        return [refs[i] for i in order]
