"""A dataset backed by a directory of real image files.

Drop PPM/PGM files in a folder (``convert photo.jpg photo.ppm``), point
:class:`FolderDataset` at it, and the whole pipeline — feature
extraction, CBRD, SSMM, AIU, every scheme — runs on real photographs
instead of synthetic scenes.

Group labels (for precision/elimination ground truth) come from file
names: everything before the last ``-`` is the group, so
``bridge-1.ppm`` and ``bridge-2.ppm`` are two views of scene
``bridge``.  Files without a dash form singleton groups.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Iterator

from ..errors import DatasetError
from ..imaging.image import DEFAULT_NOMINAL_BYTES, Image
from ..imaging.io import read_netpbm

SUPPORTED_SUFFIXES = (".ppm", ".pgm")


def group_from_name(stem: str) -> str:
    """``bridge-2`` → ``bridge``; ``tower`` → ``tower``."""
    head, separator, tail = stem.rpartition("-")
    if separator and head:
        return head
    return stem


@dataclass
class FolderDataset:
    """All supported images under one directory (sorted by name)."""

    root: "str | pathlib.Path"
    nominal_bytes: int = DEFAULT_NOMINAL_BYTES
    _paths: "list[pathlib.Path]" = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.root = pathlib.Path(self.root)
        if not self.root.is_dir():
            raise DatasetError(f"{self.root} is not a directory")
        self._paths = sorted(
            path
            for path in self.root.iterdir()
            if path.suffix.lower() in SUPPORTED_SUFFIXES
        )
        if not self._paths:
            raise DatasetError(
                f"{self.root} holds no {'/'.join(SUPPORTED_SUFFIXES)} files"
            )

    def __len__(self) -> int:
        return len(self._paths)

    def paths(self) -> "list[pathlib.Path]":
        """The image files this dataset covers, sorted by name."""
        return list(self._paths)

    def load(self, path: pathlib.Path) -> Image:
        """Load one file with group metadata from its name."""
        image = read_netpbm(path)
        return Image(
            bitmap=image.bitmap,
            image_id=path.stem,
            group_id=group_from_name(path.stem),
            nominal_bytes=self.nominal_bytes,
        )

    def __iter__(self) -> Iterator[Image]:
        for path in self._paths:
            yield self.load(path)

    def groups(self) -> "dict[str, list[str]]":
        """Group label → image ids, from the file-name convention."""
        out: dict[str, list[str]] = {}
        for path in self._paths:
            out.setdefault(group_from_name(path.stem), []).append(path.stem)
        return out
