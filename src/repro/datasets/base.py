"""Dataset abstractions shared by the three synthetic imagesets."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Protocol

from ..errors import DatasetError
from ..imaging.image import Image


class ImageDataset(Protocol):
    """Minimal dataset interface: sized iteration over images."""

    def __len__(self) -> int:  # pragma: no cover - protocol
        ...

    def __iter__(self) -> Iterator[Image]:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class LabeledPair:
    """A ground-truth-labelled image pair (Figure 4's raw material)."""

    first: Image
    second: Image
    similar: bool


def batched(images: "list[Image]", batch_size: int) -> "list[list[Image]]":
    """Split a flat image list into upload batches.

    The final batch may be short; an empty input yields no batches.
    """
    if batch_size < 1:
        raise DatasetError(f"batch_size must be >= 1, got {batch_size}")
    return [images[i : i + batch_size] for i in range(0, len(images), batch_size)]
