"""The synthetic Kentucky imageset.

The real University of Kentucky benchmark (Nister & Stewenius, CVPR
2006) contains 10,200 images in 2,550 groups of four views of one
object.  Its synthetic stand-in keeps exactly that structure: ``n_groups``
scenes, four perturbed views each, plus *scene families* (nearby groups
sharing a fraction of content) so the dissimilar-pair similarity
distribution has the realistic moderate tail of Figure 4.

The paper uses Kentucky for the precision experiments (Figures 3 and 6)
and the similar/dissimilar pair statistics (Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..errors import DatasetError
from ..imaging.image import Image
from ..imaging.synth import SceneGenerator
from .base import LabeledPair

VIEWS_PER_GROUP = 4
FULL_SCALE_GROUPS = 2550

#: Seed offset so Kentucky scenes never collide with other datasets'.
_SCENE_BASE = 1_000_000


@dataclass
class SyntheticKentucky:
    """Groups-of-four synthetic scenes with family structure."""

    n_groups: int = 50
    family_size: int = 5
    shared_fraction: float = 0.8
    generator: SceneGenerator = field(default_factory=SceneGenerator)

    def __post_init__(self) -> None:
        if self.n_groups < 1:
            raise DatasetError(f"n_groups must be >= 1, got {self.n_groups}")
        if self.family_size < 1:
            raise DatasetError(f"family_size must be >= 1, got {self.family_size}")
        if not 0.0 <= self.shared_fraction <= 1.0:
            raise DatasetError(
                f"shared_fraction must be in [0, 1], got {self.shared_fraction}"
            )

    def __len__(self) -> int:
        return self.n_groups * VIEWS_PER_GROUP

    # -- access -----------------------------------------------------------

    def group_id(self, group: int) -> str:
        """The stable label of group *group*."""
        return f"kentucky-g{group}"

    def image(self, group: int, view: int) -> Image:
        """View *view* (0-3) of group *group*."""
        if not 0 <= group < self.n_groups:
            raise DatasetError(f"group must be in [0, {self.n_groups}), got {group}")
        if not 0 <= view < VIEWS_PER_GROUP:
            raise DatasetError(f"view must be in [0, {VIEWS_PER_GROUP}), got {view}")
        family = group // self.family_size
        return self.generator.view(
            _SCENE_BASE + group,
            view,
            image_id=f"{self.group_id(group)}-v{view}",
            group_id=self.group_id(group),
            shared_seed=_SCENE_BASE + family,
            shared_fraction=self.shared_fraction,
        )

    def group(self, group: int) -> "list[Image]":
        """All four views of one group."""
        return [self.image(group, view) for view in range(VIEWS_PER_GROUP)]

    def __iter__(self) -> Iterator[Image]:
        for group in range(self.n_groups):
            yield from self.group(group)

    def query_images(self) -> "list[Image]":
        """One query image per group (the paper picks one per group)."""
        return [self.image(group, 0) for group in range(self.n_groups)]

    # -- labelled pairs (Figure 4) ------------------------------------------

    def similar_pairs(self, n_pairs: int, seed: int = 0) -> "list[LabeledPair]":
        """Pairs of views from the same group — ground-truth similar."""
        if n_pairs < 0:
            raise DatasetError(f"n_pairs must be >= 0, got {n_pairs}")
        rng = np.random.default_rng(seed)
        pairs = []
        for _ in range(n_pairs):
            group = int(rng.integers(self.n_groups))
            va, vb = rng.choice(VIEWS_PER_GROUP, size=2, replace=False)
            pairs.append(
                LabeledPair(
                    first=self.image(group, int(va)),
                    second=self.image(group, int(vb)),
                    similar=True,
                )
            )
        return pairs

    def dissimilar_pairs(self, n_pairs: int, seed: int = 1) -> "list[LabeledPair]":
        """Pairs of views from different groups — ground-truth dissimilar."""
        if n_pairs < 0:
            raise DatasetError(f"n_pairs must be >= 0, got {n_pairs}")
        if self.n_groups < 2 and n_pairs > 0:
            raise DatasetError("need at least two groups for dissimilar pairs")
        rng = np.random.default_rng(seed)
        pairs = []
        for _ in range(n_pairs):
            ga, gb = rng.choice(self.n_groups, size=2, replace=False)
            pairs.append(
                LabeledPair(
                    first=self.image(int(ga), int(rng.integers(VIEWS_PER_GROUP))),
                    second=self.image(int(gb), int(rng.integers(VIEWS_PER_GROUP))),
                    similar=False,
                )
            )
        return pairs
