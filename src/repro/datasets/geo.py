"""Geospatial helpers for the geotagged (Paris-like) dataset.

The paper's coverage experiment (Figure 12) works on a geographic
bounding box around inner Paris — 2.31 to 2.34 degrees east longitude,
48.855 to 48.872 degrees north latitude — and counts *unique locations*
covered by the uploaded images.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DatasetError

#: The paper's test bounding box (lon_min, lon_max, lat_min, lat_max).
PARIS_TEST_BOX = (2.31, 2.34, 48.855, 48.872)


@dataclass(frozen=True)
class BoundingBox:
    """A longitude/latitude rectangle."""

    lon_min: float
    lon_max: float
    lat_min: float
    lat_max: float

    def __post_init__(self) -> None:
        if self.lon_min >= self.lon_max or self.lat_min >= self.lat_max:
            raise DatasetError(
                f"degenerate bounding box ({self.lon_min}, {self.lon_max}, "
                f"{self.lat_min}, {self.lat_max})"
            )

    def contains(self, lon: float, lat: float) -> bool:
        """Whether a point lies inside (inclusive) the box."""
        return self.lon_min <= lon <= self.lon_max and self.lat_min <= lat <= self.lat_max

    @classmethod
    def paris_test(cls) -> "BoundingBox":
        """The paper's Figure-12 test box."""
        return cls(*PARIS_TEST_BOX)


def unique_locations(geotags: "list[tuple[float, float] | None]") -> int:
    """Count distinct (lon, lat) pairs, ignoring untagged images.

    Locations are compared exactly: the synthetic dataset assigns every
    image one of a finite set of locations, mirroring the paper's
    "58,818 unique locations" accounting.
    """
    return len({tag for tag in geotags if tag is not None})
