"""The synthetic disaster imageset.

Stands in for the paper's crawl of 1,000 Nepal-earthquake photos.  The
energy/bandwidth/delay experiments (Figures 7, 8, 10, 11) use it as "a
batch of 100 images with X% cross-batch redundancy and 10 in-batch
similar images", so the generator's job is to produce batches with
exactly controllable redundancy structure:

* ``make_batch`` returns ``n_images`` photos of which
  ``n_inbatch_similar`` are second views of scenes already in the batch
  (the in-batch redundancy only BEES eliminates);
* ``cross_batch_partners`` returns high-similarity partner images for a
  chosen fraction of the batch's *singleton* scenes — these are seeded
  into the server before the run, exactly how the paper "sets different
  cross-batch redundancy ratios by adding redundant images into the
  servers".  Partners never target in-batch-duplicated scenes ("10
  in-batch similar images ... do not have similar images in the
  servers").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import DatasetError
from ..imaging.image import Image
from ..imaging.synth import SceneGenerator

#: Seed offset separating disaster scenes from other datasets'.
_SCENE_BASE = 2_000_000

#: Disaster scenes share family content like any real photo crawl.
FAMILY_SIZE = 10
SHARED_FRACTION = 0.2


@dataclass
class DisasterDataset:
    """Deterministic disaster-scene batches with controllable redundancy."""

    generator: SceneGenerator = field(default_factory=SceneGenerator)
    family_size: int = FAMILY_SIZE
    shared_fraction: float = SHARED_FRACTION

    def _view(self, scene: int, view: int, image_id: str) -> Image:
        family = scene // self.family_size
        return self.generator.view(
            _SCENE_BASE + scene,
            view,
            image_id=image_id,
            group_id=f"disaster-s{scene}",
            shared_seed=_SCENE_BASE + family,
            shared_fraction=self.shared_fraction,
        )

    def make_batch(
        self,
        n_images: int = 100,
        n_inbatch_similar: int = 10,
        seed: int = 0,
        scene_offset: int = 0,
    ) -> "list[Image]":
        """A batch with the paper's in-batch redundancy structure.

        The batch holds ``n_images - n_inbatch_similar`` distinct scenes;
        ``n_inbatch_similar`` of them contribute a second view.  Image
        order is shuffled (seeded) so duplicates are not adjacent.
        ``scene_offset`` lets successive batches use fresh scenes.
        """
        if n_images < 1:
            raise DatasetError(f"n_images must be >= 1, got {n_images}")
        if not 0 <= n_inbatch_similar <= n_images // 2:
            raise DatasetError(
                f"n_inbatch_similar must be in [0, {n_images // 2}], "
                f"got {n_inbatch_similar}"
            )
        n_scenes = n_images - n_inbatch_similar
        rng = np.random.default_rng(seed)
        duplicated = rng.choice(n_scenes, size=n_inbatch_similar, replace=False)

        images = []
        for local in range(n_scenes):
            scene = scene_offset + local
            images.append(self._view(scene, 0, f"batch{seed}-s{scene}-v0"))
        for local in duplicated:
            scene = scene_offset + int(local)
            images.append(self._view(scene, 1, f"batch{seed}-s{scene}-v1"))
        order = rng.permutation(len(images))
        return [images[i] for i in order]

    def cross_batch_partners(
        self, batch: "list[Image]", redundancy_ratio: float, seed: int = 99
    ) -> "list[Image]":
        """Server-seed partners that make *ratio* of the batch redundant.

        Picks ``round(ratio * len(batch))`` scenes that appear exactly
        once in the batch and returns a different (high-similarity) view
        of each; seeding these into the server index makes exactly those
        batch images cross-batch redundant.
        """
        if not 0.0 <= redundancy_ratio <= 1.0:
            raise DatasetError(
                f"redundancy_ratio must be in [0, 1], got {redundancy_ratio}"
            )
        counts: dict[str, int] = {}
        for image in batch:
            counts[image.group_id] = counts.get(image.group_id, 0) + 1
        singles = sorted(group for group, count in counts.items() if count == 1)
        n_target = int(round(redundancy_ratio * len(batch)))
        if n_target > len(singles):
            raise DatasetError(
                f"ratio {redundancy_ratio} needs {n_target} singleton scenes, "
                f"batch only has {len(singles)}"
            )
        rng = np.random.default_rng(seed)
        chosen = rng.choice(len(singles), size=n_target, replace=False)
        partners = []
        for idx in sorted(int(i) for i in chosen):
            group = singles[idx]
            scene = int(group.rsplit("s", 1)[1])
            partners.append(self._view(scene, 3, f"server-{group}-v3"))
        return partners
