"""Epidemic routing over a seeded contact process.

A minimal DTN: mobile relay nodes meet pairwise at random (the contact
process), exchange a bounded number of images per contact (contact
bandwidth), and occasionally meet the *gateway*, which drains whatever
they carry into the server side.  Combined with the buffer policies of
:mod:`repro.dtn.node` this reproduces the environment PhotoNet and CARE
were designed for, and lets the CARE-vs-FIFO information-delivery
comparison be measured (``benchmarks/bench_ext_dtn_care.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SimulationError
from ..obs.journal import get_journal
from ..obs.runtime import get_obs
from .node import CarriedImage, DropPolicy, DtnNode


@dataclass(frozen=True)
class DeliveryReport:
    """What reached the gateway by the end of the run."""

    delivered_ids: tuple
    delivered_groups: tuple
    transmissions: int
    drops: int
    rejections: int

    @property
    def n_delivered(self) -> int:
        return len(self.delivered_ids)

    @property
    def n_unique_groups(self) -> int:
        """Distinct scenes delivered — the information metric."""
        return len(set(self.delivered_groups))


@dataclass
class EpidemicSimulation:
    """Pairwise random contacts + gateway drains."""

    n_nodes: int
    buffer_capacity: int
    policy_factory: "type[DropPolicy] | None" = None
    contact_bandwidth: int = 3
    contacts_per_round: int = 2
    gateway_probability: float = 0.15
    seed: int = 0
    nodes: "list[DtnNode]" = field(init=False)
    delivered: "list[CarriedImage]" = field(default_factory=list, init=False)
    transmissions: int = field(default=0, init=False)
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise SimulationError(f"need >= 2 nodes, got {self.n_nodes}")
        if self.contact_bandwidth < 1:
            raise SimulationError("contact_bandwidth must be >= 1")
        if not 0.0 <= self.gateway_probability <= 1.0:
            raise SimulationError("gateway_probability must be in [0, 1]")
        self._rng = np.random.default_rng(self.seed)
        self.nodes = []
        for index in range(self.n_nodes):
            if self.policy_factory is None:
                node = DtnNode(node_id=f"node-{index}", capacity=self.buffer_capacity)
            else:
                node = DtnNode(
                    node_id=f"node-{index}",
                    capacity=self.buffer_capacity,
                    policy=self.policy_factory(),
                )
            self.nodes.append(node)

    # -- workload ---------------------------------------------------------------

    def inject(self, node_index: int, carried: CarriedImage) -> bool:
        """A node takes a new photo (enters the DTN at that node)."""
        if not 0 <= node_index < self.n_nodes:
            raise SimulationError(f"node index out of range: {node_index}")
        return self.nodes[node_index].offer(carried)

    # -- dynamics ---------------------------------------------------------------

    def _exchange(self, sender: DtnNode, receiver: DtnNode) -> None:
        """One-way epidemic transfer under the contact bandwidth."""
        sent = 0
        forwarded: "list[str]" = []
        for carried in list(sender.buffer):
            if sent >= self.contact_bandwidth:
                break
            if receiver.carries(carried.image_id):
                continue
            self.transmissions += 1
            sent += 1
            forwarded.append(carried.image_id)
            receiver.offer(carried)
        obs = get_obs()
        if obs.enabled and sent:
            obs.dtn_transmissions.inc(sent, kind="relay")
        journal = get_journal()
        if journal.enabled and forwarded:
            journal.emit(
                "dtn.forward",
                sender=sender.node_id,
                receiver=receiver.node_id,
                image_ids=forwarded,
            )

    def step(self) -> None:
        """One round: a few pairwise contacts + possible gateway visits."""
        for _ in range(self.contacts_per_round):
            a, b = self._rng.choice(self.n_nodes, size=2, replace=False)
            self._exchange(self.nodes[int(a)], self.nodes[int(b)])
            self._exchange(self.nodes[int(b)], self.nodes[int(a)])
        obs = get_obs()
        journal = get_journal()
        for node in self.nodes:
            if self._rng.random() < self.gateway_probability:
                drained = node.take_all()
                self.transmissions += len(drained)
                self.delivered.extend(drained)
                if obs.enabled and drained:
                    obs.dtn_transmissions.inc(len(drained), kind="gateway")
                    obs.dtn_delivered.inc(len(drained))
                if journal.enabled and drained:
                    journal.emit(
                        "dtn.deliver",
                        node=node.node_id,
                        image_ids=[carried.image_id for carried in drained],
                    )

    def run(self, rounds: int) -> DeliveryReport:
        """Advance *rounds* steps and report what the gateway received."""
        if rounds < 0:
            raise SimulationError(f"rounds must be >= 0, got {rounds}")
        with get_obs().span(
            "dtn.run", rounds=rounds, n_nodes=self.n_nodes
        ) as span:
            for _ in range(rounds):
                self.step()
            span.set_attribute("delivered", len(self.delivered))
            span.set_attribute("transmissions", self.transmissions)
        unique: dict[str, CarriedImage] = {}
        for carried in self.delivered:
            unique.setdefault(carried.image_id, carried)
        return DeliveryReport(
            delivered_ids=tuple(unique),
            delivered_groups=tuple(
                carried.image.group_id for carried in unique.values()
            ),
            transmissions=self.transmissions,
            drops=sum(node.drops for node in self.nodes),
            rejections=sum(node.rejections for node in self.nodes),
        )
