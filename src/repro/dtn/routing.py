"""Epidemic routing over a seeded contact process.

A minimal DTN: mobile relay nodes meet pairwise at random (the contact
process), exchange a bounded number of images per contact (contact
bandwidth), and occasionally meet the *gateway*, which drains whatever
they carry into the server side.  Combined with the buffer policies of
:mod:`repro.dtn.node` this reproduces the environment PhotoNet and CARE
were designed for, and lets the CARE-vs-FIFO information-delivery
comparison be measured (``benchmarks/bench_ext_dtn_care.py``).

Contacts may be *lossy* (:class:`repro.network.lossy.ContactLoss`): a
forwarded copy can vanish mid-contact or arrive bit-damaged, which
clears its :attr:`~repro.dtn.node.CarriedImage.intact` flag.  Epidemic
spread makes every image a natural k-replica scheme, so the gateway
reconciles per image id — an image is delivered intact if *any* of its
copies arrived intact — mirroring the uplink's replica-voting recovery
(:mod:`repro.network.transfer`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..errors import SimulationError
from ..network.lossy import ContactLoss
from ..obs.journal import get_journal
from ..obs.runtime import get_obs
from .node import CarriedImage, DropPolicy, DtnNode


@dataclass(frozen=True)
class DeliveryReport:
    """What reached the gateway by the end of the run."""

    delivered_ids: tuple
    delivered_groups: tuple
    transmissions: int
    drops: int
    rejections: int
    corrupt_ids: tuple = ()
    repaired: int = 0

    @property
    def n_delivered(self) -> int:
        return len(self.delivered_ids)

    @property
    def n_unique_groups(self) -> int:
        """Distinct scenes delivered — the information metric."""
        return len(set(self.delivered_groups))

    @property
    def n_intact(self) -> int:
        """Delivered images with at least one uncorrupted copy."""
        return len(self.delivered_ids) - len(self.corrupt_ids)

    @property
    def n_intact_groups(self) -> int:
        """Distinct scenes with at least one intact delivery —
        the information metric a damaged network actually yields."""
        corrupt = set(self.corrupt_ids)
        return len(
            {
                group
                for image_id, group in zip(
                    self.delivered_ids, self.delivered_groups
                )
                if image_id not in corrupt
            }
        )


@dataclass
class EpidemicSimulation:
    """Pairwise random contacts + gateway drains."""

    n_nodes: int
    buffer_capacity: int
    policy_factory: "type[DropPolicy] | None" = None
    contact_bandwidth: int = 3
    contacts_per_round: int = 2
    gateway_probability: float = 0.15
    seed: int = 0
    loss: "ContactLoss | None" = None
    nodes: "list[DtnNode]" = field(init=False)
    delivered: "list[CarriedImage]" = field(default_factory=list, init=False)
    transmissions: int = field(default=0, init=False)
    dropped_transmissions: int = field(default=0, init=False)
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise SimulationError(f"need >= 2 nodes, got {self.n_nodes}")
        if self.contact_bandwidth < 1:
            raise SimulationError("contact_bandwidth must be >= 1")
        if not 0.0 <= self.gateway_probability <= 1.0:
            raise SimulationError("gateway_probability must be in [0, 1]")
        self._rng = np.random.default_rng(self.seed)
        self.nodes = []
        for index in range(self.n_nodes):
            if self.policy_factory is None:
                node = DtnNode(node_id=f"node-{index}", capacity=self.buffer_capacity)
            else:
                node = DtnNode(
                    node_id=f"node-{index}",
                    capacity=self.buffer_capacity,
                    policy=self.policy_factory(),
                )
            self.nodes.append(node)

    # -- workload ---------------------------------------------------------------

    def inject(self, node_index: int, carried: CarriedImage) -> bool:
        """A node takes a new photo (enters the DTN at that node)."""
        if not 0 <= node_index < self.n_nodes:
            raise SimulationError(f"node index out of range: {node_index}")
        return self.nodes[node_index].offer(carried)

    # -- dynamics ---------------------------------------------------------------

    def _exchange(self, sender: DtnNode, receiver: DtnNode) -> None:
        """One-way epidemic transfer under the contact bandwidth.

        With lossy contacts each forwarded copy draws a fate from the
        simulation's generator: a *drop* consumes contact bandwidth but
        never reaches the receiver; a *corruption* arrives with its
        ``intact`` flag cleared.  With ``loss=None`` (or all-zero
        rates) no draw happens, so loss-free dynamics — and journal
        payloads — are untouched.
        """
        sent = 0
        forwarded: "list[str]" = []
        lost: "list[str]" = []
        corrupted: "list[str]" = []
        for carried in list(sender.buffer):
            if sent >= self.contact_bandwidth:
                break
            if receiver.carries(carried.image_id):
                continue
            self.transmissions += 1
            sent += 1
            fate = "ok" if self.loss is None else self.loss.fate(self._rng)
            if fate == "drop":
                self.dropped_transmissions += 1
                lost.append(carried.image_id)
                continue
            if fate == "corrupt":
                corrupted.append(carried.image_id)
                carried = replace(carried, intact=False)
            forwarded.append(carried.image_id)
            receiver.offer(carried)
        obs = get_obs()
        if obs.enabled and sent:
            obs.dtn_transmissions.inc(sent, kind="relay")
            if lost:
                obs.dtn_transmissions.inc(len(lost), kind="lost")
        journal = get_journal()
        if journal.enabled and (forwarded or lost):
            data: "dict[str, object]" = {
                "sender": sender.node_id,
                "receiver": receiver.node_id,
                "image_ids": forwarded,
            }
            if self.loss is not None:
                data["lost"] = lost
                data["corrupted"] = corrupted
            journal.emit("dtn.forward", **data)

    def step(self) -> None:
        """One round: a few pairwise contacts + possible gateway visits."""
        for _ in range(self.contacts_per_round):
            a, b = self._rng.choice(self.n_nodes, size=2, replace=False)
            self._exchange(self.nodes[int(a)], self.nodes[int(b)])
            self._exchange(self.nodes[int(b)], self.nodes[int(a)])
        obs = get_obs()
        journal = get_journal()
        for node in self.nodes:
            if self._rng.random() < self.gateway_probability:
                drained = node.take_all()
                self.transmissions += len(drained)
                self.delivered.extend(drained)
                if obs.enabled and drained:
                    obs.dtn_transmissions.inc(len(drained), kind="gateway")
                    obs.dtn_delivered.inc(len(drained))
                if journal.enabled and drained:
                    journal.emit(
                        "dtn.deliver",
                        node=node.node_id,
                        image_ids=[carried.image_id for carried in drained],
                    )

    def run(self, rounds: int) -> DeliveryReport:
        """Advance *rounds* steps and report what the gateway received."""
        if rounds < 0:
            raise SimulationError(f"rounds must be >= 0, got {rounds}")
        with get_obs().span(
            "dtn.run", rounds=rounds, n_nodes=self.n_nodes
        ) as span:
            for _ in range(rounds):
                self.step()
            span.set_attribute("delivered", len(self.delivered))
            span.set_attribute("transmissions", self.transmissions)
        unique: dict[str, CarriedImage] = {}
        intact_by_id: dict[str, bool] = {}
        saw_corrupt: dict[str, bool] = {}
        for carried in self.delivered:
            unique.setdefault(carried.image_id, carried)
            intact_by_id[carried.image_id] = (
                intact_by_id.get(carried.image_id, False) or carried.intact
            )
            saw_corrupt[carried.image_id] = (
                saw_corrupt.get(carried.image_id, False) or not carried.intact
            )
        # Gateway-side reconciliation: epidemic copies are replicas, so
        # one intact arrival repairs the image; ids with no intact copy
        # stay corrupt (counted, not hidden).
        corrupt_ids = tuple(
            image_id for image_id in unique if not intact_by_id[image_id]
        )
        repaired = sum(
            1
            for image_id in unique
            if intact_by_id[image_id] and saw_corrupt[image_id]
        )
        return DeliveryReport(
            delivered_ids=tuple(unique),
            delivered_groups=tuple(
                carried.image.group_id for carried in unique.values()
            ),
            transmissions=self.transmissions,
            drops=sum(node.drops for node in self.nodes),
            rejections=sum(node.rejections for node in self.nodes),
            corrupt_ids=corrupt_ids,
            repaired=repaired,
        )
