"""Delay-tolerant-network substrate (the PhotoNet/CARE environment)."""

from .node import CareDropPolicy, CarriedImage, DropPolicy, DtnNode, FifoDropPolicy
from .routing import DeliveryReport, EpidemicSimulation

__all__ = [
    "CareDropPolicy",
    "CarriedImage",
    "DeliveryReport",
    "DropPolicy",
    "DtnNode",
    "EpidemicSimulation",
    "FifoDropPolicy",
]
