"""Delay-tolerant-network nodes with buffer-drop policies.

The paper's related work (Section V) contrasts BEES with DTN schemes —
PhotoNet (RTSS'11) and CARE (HotNets'12) — that eliminate redundant
images *inside the network*: relay nodes have small buffers, and when a
buffer fills, the drop policy decides what survives.  CARE's insight is
to drop by *content*: evict from the most-similar pair so the buffer
stays diverse; the baseline drops FIFO.

These nodes carry images with pre-extracted features (a relay cannot
afford re-extraction; features ride along with the image, exactly as in
CARE).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from ..core.config import EDR_THRESHOLD_MAX
from ..errors import SimulationError
from ..features.base import FeatureSet
from ..features.similarity import jaccard_similarity
from ..imaging.image import Image
from ..obs.journal import get_journal


@dataclass(frozen=True)
class CarriedImage:
    """An image in flight: payload + its features (for content drops).

    ``intact`` marks whether this *copy* survived its relay hops
    uncorrupted; lossy contacts (:class:`repro.network.lossy.
    ContactLoss`) clear it.  Epidemic routing naturally spreads several
    copies of the same image, so the gateway treats those copies as
    replicas and reconciles per image id — one intact copy repairs the
    delivery.
    """

    image: Image
    features: FeatureSet
    intact: bool = True

    @property
    def image_id(self) -> str:
        return self.image.image_id


class DropPolicy(abc.ABC):
    """Decides what to evict when a full buffer receives a new image."""

    name: str = "abstract"

    @abc.abstractmethod
    def select_victim(
        self, buffer: "list[CarriedImage]", candidate: CarriedImage
    ) -> "int | None":
        """Index of the buffer entry to evict, or ``None`` to reject
        *candidate* instead."""


class FifoDropPolicy(DropPolicy):
    """Content-blind baseline: evict the oldest carried image."""

    name = "fifo"

    def select_victim(self, buffer, candidate):
        return 0


class CareDropPolicy(DropPolicy):
    """CARE-style content-aware drop.

    Find the most similar pair among ``buffer + [candidate]`` and evict
    one side of it: if the candidate belongs to the pair it is simply
    rejected (it adds no information); otherwise the buffer member of
    the pair goes.  Ties and the no-similarity case fall back to FIFO.
    """

    name = "care"

    def __init__(self, similarity_floor: float = EDR_THRESHOLD_MAX) -> None:
        if similarity_floor < 0:
            raise SimulationError("similarity_floor must be >= 0")
        self.similarity_floor = similarity_floor

    def select_victim(self, buffer, candidate):
        best_pair: "tuple[int, int] | None" = None
        best_similarity = self.similarity_floor
        entries = list(buffer) + [candidate]
        candidate_index = len(entries) - 1
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                similarity = jaccard_similarity(
                    entries[i].features, entries[j].features
                )
                if similarity > best_similarity:
                    best_similarity = similarity
                    best_pair = (i, j)
        if best_pair is None:
            return 0  # nothing redundant: FIFO fallback
        i, j = best_pair
        if j == candidate_index:
            # The candidate duplicates a carried image: reject it.
            return None
        return j  # evict the newer member of the redundant pair


@dataclass
class DtnNode:
    """A buffer-constrained relay."""

    node_id: str
    capacity: int
    policy: DropPolicy = field(default_factory=CareDropPolicy)
    buffer: "list[CarriedImage]" = field(default_factory=list)
    drops: int = field(default=0, init=False)
    rejections: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {self.capacity}")
        if len(self.buffer) > self.capacity:
            raise SimulationError("initial buffer exceeds capacity")

    def carries(self, image_id: str) -> bool:
        """Whether this node already holds *image_id*."""
        return any(entry.image_id == image_id for entry in self.buffer)

    def offer(self, carried: CarriedImage) -> bool:
        """Hand *carried* to this node; returns True if it was kept."""
        if self.carries(carried.image_id):
            return False
        if len(self.buffer) < self.capacity:
            self.buffer.append(carried)
            return True
        victim = self.policy.select_victim(self.buffer, carried)
        journal = get_journal()
        if victim is None:
            self.rejections += 1
            if journal.enabled:
                journal.emit(
                    "dtn.drop",
                    image_id=carried.image_id,
                    node=self.node_id,
                    policy=self.policy.name,
                    kind="rejected",
                    victim=None,
                )
            return False
        if not 0 <= victim < len(self.buffer):
            raise SimulationError(
                f"policy returned invalid victim index {victim}"
            )
        evicted = self.buffer[victim]
        del self.buffer[victim]
        self.drops += 1
        self.buffer.append(carried)
        if journal.enabled:
            journal.emit(
                "dtn.drop",
                image_id=evicted.image_id,
                node=self.node_id,
                policy=self.policy.name,
                kind="evicted",
                victim=evicted.image_id,
            )
        return True

    def take_all(self) -> "list[CarriedImage]":
        """Drain the buffer (delivery to a gateway)."""
        drained = self.buffer
        self.buffer = []
        return drained
