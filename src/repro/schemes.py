"""The scheme registry: name → fresh scheme instance.

One neutral home for the mapping the CLI, the fleet runtime, and the
benchmarks all need, so none of them import each other for it.  Scheme
instances are *not* shareable across concurrent devices —
``process_batch`` wires the device's cost model into the scheme's
stages — which is why the registry deals in factories, not singletons:
every caller gets its own instance.
"""

from __future__ import annotations

from typing import Callable

from .baselines import DirectUpload, Mrc, PhotoNet, SmartEye, make_bees_ea
from .baselines.base import SharingScheme
from .core.client import BeesScheme
from .errors import SimulationError

SCHEME_FACTORIES: "dict[str, Callable[[], SharingScheme]]" = {
    "direct": DirectUpload,
    "smarteye": SmartEye,
    "mrc": Mrc,
    "photonet": PhotoNet,
    "bees-ea": make_bees_ea,
    "bees": BeesScheme,
}


def scheme_names() -> "list[str]":
    """The registered scheme names, sorted."""
    return sorted(SCHEME_FACTORIES)


def make_scheme(name: str) -> SharingScheme:
    """A fresh instance of the named scheme."""
    try:
        factory = SCHEME_FACTORIES[name]
    except KeyError:
        raise SimulationError(
            f"unknown scheme {name!r}; choose from {scheme_names()}"
        ) from None
    return factory()
