"""SmartEye (Hua et al., INFOCOM 2015) — the PCA-SIFT baseline.

SmartEye eliminates *cross-batch* redundancy at the source: the client
extracts PCA-SIFT features from every image (full bitmap — no AFE),
uploads them, and skips images whose server-side maximum similarity
exceeds a fixed threshold.  There is no in-batch elimination, no
adaptive behaviour, and no upload compression, which is why BEES beats
it on every axis in Figures 7-11 while PCA-SIFT's extraction cost makes
it the most energy-hungry detector of the three.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import EDR_THRESHOLD_MAX
from ..features.base import FeatureSet
from ..features.pca_sift import PcaSiftExtractor
from ..imaging.image import Image
from .cross_batch import CrossBatchOnlyScheme

#: SmartEye's fixed similarity threshold — the paper's full-battery EDR
#: value, so all schemes detect the same planted redundancy.
SMARTEYE_THRESHOLD = EDR_THRESHOLD_MAX


@dataclass
class SmartEye(CrossBatchOnlyScheme):
    """Cross-batch elimination with PCA-SIFT features."""

    threshold: float = SMARTEYE_THRESHOLD
    extractor: PcaSiftExtractor = field(default_factory=PcaSiftExtractor)
    name: str = "SmartEye"

    def extract(self, image: Image) -> FeatureSet:
        return self.extractor.extract(image)

    @property
    def feature_kind(self) -> str:
        return self.extractor.kind
