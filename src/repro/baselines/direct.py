"""Direct Upload — the no-intelligence baseline.

Every image in the batch is transmitted at full size: no features, no
queries, no compression.  The paper's energy, bandwidth, delay, and
lifetime experiments all measure the other schemes against this.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.server import BeesServer
from ..energy import IMAGE_UPLOAD
from ..features.orb import OrbExtractor
from ..imaging.image import Image
from ..sim.device import Smartphone
from .base import BatchReport, SharingScheme


@dataclass
class DirectUpload(SharingScheme):
    """Upload everything, ask nothing."""

    name: str = "Direct Upload"
    #: Uploaded images are still indexed server-side (the server always
    #: extracts features from what it receives), so later CBRD-capable
    #: schemes in the same experiment see a consistent index.
    index_on_server: bool = True

    def __post_init__(self) -> None:
        self._server_extractor = OrbExtractor()

    def process_batch(
        self, device: Smartphone, server: BeesServer, images: "list[Image]"
    ) -> BatchReport:
        report = BatchReport(scheme=self.name, n_images=len(images))
        before = device.meter.snapshot()
        before_bytes = device.uplink.sent_bytes
        for image in images:
            if not device.alive:
                report.halted = True
                break
            transfer = device.upload(image.nominal_bytes, IMAGE_UPLOAD)
            if transfer is None:
                report.halted = True
                break
            report.per_image_seconds.append(transfer.seconds)
            report.uploaded_ids.append(image.image_id)
            if self.index_on_server:
                features = self._server_extractor.extract(image)
                server.receive_image(image, features)
            else:
                server.store.add(image)
        report.total_seconds = float(sum(report.per_image_seconds))
        report.sent_bytes = device.uplink.sent_bytes - before_bytes
        report.energy_by_category = device.meter.since(before)
        return self.observe_batch(report)
