"""Shared skeleton of the cross-batch-only baselines (SmartEye, MRC).

Both schemes follow the traditional architecture of Figure 1: extract
features for the *whole batch*, query the server index, then upload the
unique images.  The two-phase protocol matters: queries run against the
index as it stood when the batch arrived, so two similar images inside
one batch both look "unique" — the in-batch blindness BEES fixes with
SSMM.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import EDR_THRESHOLD_MAX
from ..core.server import BeesServer
from ..energy import FEATURE_EXTRACTION, FEATURE_UPLOAD, IMAGE_UPLOAD
from ..features.base import FeatureSet
from ..features.sizes import nominal_feature_bytes
from ..imaging.image import Image
from ..sim.device import Smartphone
from .base import BatchReport, SharingScheme


@dataclass
class CrossBatchOnlyScheme(SharingScheme):
    """Extract -> query (batch-start index) -> upload unique."""

    threshold: float = EDR_THRESHOLD_MAX
    name: str = "cross-batch-only"

    # -- hooks ----------------------------------------------------------------

    def extract(self, image: Image) -> FeatureSet:  # pragma: no cover - abstract
        """Extract this scheme's features from *image*."""
        raise NotImplementedError

    @property
    def feature_kind(self) -> str:  # pragma: no cover - abstract
        """The descriptor kind, for cost and payload accounting."""
        raise NotImplementedError

    def query_extra_bytes(self) -> int:
        """Extra per-query payload (MRC's thumbnail feedback)."""
        return 0

    def query_extra_cost(self, device: Smartphone, image: Image) -> "tuple[float, bool]":
        """Extra per-query CPU work; returns (seconds, still_alive)."""
        return (0.0, True)

    # -- the two-phase protocol ---------------------------------------------

    def process_batch(
        self, device: Smartphone, server: BeesServer, images: "list[Image]"
    ) -> BatchReport:
        report = BatchReport(scheme=self.name, n_images=len(images))
        before = device.meter.snapshot()
        before_bytes = device.uplink.sent_bytes

        # Phase 1: extract + upload features + query, for the whole batch,
        # against the index as it stood at batch arrival.
        verdicts: list[tuple[Image, FeatureSet, float]] = []
        for image in images:
            if not device.alive:
                report.halted = True
                break
            features = self.extract(image)
            cost = device.cost_model.extraction_cost(
                self.feature_kind, image.nominal_pixels
            )
            seconds = cost.seconds
            if not device.spend(cost, FEATURE_EXTRACTION):
                report.halted = True
                break
            extra_seconds, alive = self.query_extra_cost(device, image)
            seconds += extra_seconds
            if not alive:
                report.halted = True
                break
            payload = nominal_feature_bytes(
                features.kind, len(features), max(1, image.pixels), image.nominal_pixels
            )
            transfer = device.upload(
                payload + self.query_extra_bytes() + server.query_response_bytes,
                FEATURE_UPLOAD,
            )
            if transfer is None:
                report.halted = True
                break
            seconds += transfer.seconds
            result = server.query_features(features)
            verdicts.append((image, features, seconds))
            if result.best_similarity > self.threshold:
                report.eliminated_cross_batch.append(image.image_id)

        eliminated = set(report.eliminated_cross_batch)

        # Phase 2: upload the unique images at full size.
        for image, features, seconds in verdicts:
            if image.image_id in eliminated:
                report.per_image_seconds.append(seconds)
                continue
            if not device.alive:
                report.halted = True
                break
            transfer = device.upload(image.nominal_bytes, IMAGE_UPLOAD)
            if transfer is None:
                report.halted = True
                break
            server.receive_image(image, features)
            report.uploaded_ids.append(image.image_id)
            report.per_image_seconds.append(seconds + transfer.seconds)

        report.total_seconds = float(sum(report.per_image_seconds))
        report.sent_bytes = device.uplink.sent_bytes - before_bytes
        report.energy_by_category = device.meter.since(before)
        return self.observe_batch(report)
