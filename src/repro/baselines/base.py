"""The sharing-scheme interface and its per-batch report.

Every scheme the paper evaluates — Direct Upload, SmartEye, MRC,
BEES-EA, and BEES itself — implements :class:`SharingScheme`: given a
smartphone, a cloud server, and a batch of images, process the batch
(extract, query, upload) while charging all work to the phone's battery
and meter, and return an accounting of what happened.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..obs.runtime import get_obs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..core.server import BeesServer
    from ..imaging.image import Image
    from ..sim.device import Smartphone


@dataclass
class BatchReport:
    """What a scheme did with one batch."""

    scheme: str
    n_images: int
    uploaded_ids: list = field(default_factory=list)
    eliminated_cross_batch: list = field(default_factory=list)
    eliminated_in_batch: list = field(default_factory=list)
    sent_bytes: int = 0
    total_seconds: float = 0.0
    per_image_seconds: list = field(default_factory=list)
    #: Detection-phase seconds spent on images that were *eliminated*
    #: before upload — kept out of ``per_image_seconds`` so per-image
    #: delays describe only images that went through the pipeline.
    elimination_seconds: float = 0.0
    energy_by_category: dict = field(default_factory=dict)
    halted: bool = False

    @property
    def n_uploaded(self) -> int:
        """Number of images actually transmitted."""
        return len(self.uploaded_ids)

    @property
    def total_energy_joules(self) -> float:
        """Total joules this batch cost (all categories)."""
        return float(sum(self.energy_by_category.values()))

    @property
    def pipeline_seconds(self) -> float:
        """All simulated seconds the batch cost, elimination included."""
        return self.total_seconds + self.elimination_seconds

    @property
    def average_image_seconds(self) -> float:
        """Mean per-image delay across the *whole* batch.

        The paper's "average delay of uploading an image" (Figure 11)
        divides the batch's total processing time by the batch size —
        eliminated images count with their (small) detection-only cost,
        carried by ``elimination_seconds``.
        """
        if self.n_images == 0:
            return 0.0
        return self.pipeline_seconds / self.n_images


class SharingScheme(abc.ABC):
    """Interface of an image-sharing scheme."""

    #: Human-readable scheme name, as used in the paper's figures.
    name: str = "abstract"

    @abc.abstractmethod
    def process_batch(
        self, device: "Smartphone", server: "BeesServer", images: "list[Image]"
    ) -> BatchReport:
        """Process one batch of images end to end.

        Implementations must charge every joule through ``device`` and
        must stop (setting ``halted``) when the battery dies mid-batch.
        """

    def observe_batch(self, report: BatchReport) -> BatchReport:
        """The shared observability hook: fold *report* into the global
        metric set (bytes, joules, eliminations, uploads per scheme).

        Every scheme — BEES and baselines alike — returns its finished
        report through this, so per-scheme totals stay comparable no
        matter how a scheme structures its pipeline.  A no-op while
        observability is disabled (the default).
        """
        obs = get_obs()
        if obs.enabled:
            obs.observe_batch_report(report)
        return report
