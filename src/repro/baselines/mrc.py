"""MRC (Dao et al., CoNEXT 2014) — the ORB + thumbnail baseline.

MRC ("Managing Redundant Content") also eliminates cross-batch
redundancy at the source, using cheap ORB features plus global
features, and — unlike SmartEye — confirms candidate matches through a
*thumbnail feedback* round: a small downscaled copy of each candidate
image travels up so the server can verify the match.  That feedback is
why MRC spends a little more bandwidth than SmartEye (Figure 10) while
its ORB extraction keeps its energy below SmartEye's (Figure 7).

The paper implemented MRC from its description; we do the same.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import EDR_THRESHOLD_MAX
from ..energy import COMPRESSION
from ..features.base import FeatureSet
from ..features.orb import OrbExtractor
from ..imaging.image import Image
from ..sim.device import Smartphone
from .cross_batch import CrossBatchOnlyScheme

#: MRC's fixed similarity threshold (same operating point as SmartEye).
MRC_THRESHOLD = EDR_THRESHOLD_MAX

#: Size of the thumbnail each queried image sends for verification.
THUMBNAIL_BYTES = 16 * 1024


@dataclass
class Mrc(CrossBatchOnlyScheme):
    """Cross-batch elimination with ORB features + thumbnail feedback."""

    threshold: float = MRC_THRESHOLD
    thumbnail_bytes: int = THUMBNAIL_BYTES
    extractor: OrbExtractor = field(default_factory=OrbExtractor)
    name: str = "MRC"

    def extract(self, image: Image) -> FeatureSet:
        return self.extractor.extract(image)

    @property
    def feature_kind(self) -> str:
        return self.extractor.kind

    def query_extra_bytes(self) -> int:
        return self.thumbnail_bytes

    def query_extra_cost(self, device: Smartphone, image: Image) -> "tuple[float, bool]":
        # Producing the thumbnail is one cheap resample pass.
        cost = device.cost_model.compression_cost(image.nominal_pixels)
        alive = device.spend(cost, COMPRESSION)
        return (cost.seconds, alive)
