"""BEES-EA — BEES without the energy-aware adaptive schemes.

Section IV-B3(3): "BEES-EA represents BEES without energy-aware adaptive
schemes in which BEES does not adjust its behaviors based on the
remaining energy."  Every policy is pinned at its full-battery value:
no bitmap compression (C = 0), the strictest threshold (T = 0.019), and
no resolution compression (Cr = 0); the fixed quality compression and
SSMM remain.  Comparing against it isolates what EAAS itself buys
(~20% extra lifetime in Figure 9).
"""

from __future__ import annotations

from ..core.client import BeesScheme
from ..core.config import BeesConfig


def make_bees_ea(**config_overrides) -> BeesScheme:
    """Construct the BEES-EA scheme."""
    config = BeesConfig.ea_disabled(**config_overrides)
    scheme = BeesScheme(config=config)
    scheme.name = "BEES-EA"
    return scheme
