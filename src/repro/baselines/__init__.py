"""The comparison schemes of the paper's evaluation."""

from .base import BatchReport, SharingScheme
from .bees_ea import make_bees_ea
from .direct import DirectUpload
from .mrc import MRC_THRESHOLD, Mrc
from .photonet import PHOTONET_THRESHOLD, PhotoNet
from .smarteye import SMARTEYE_THRESHOLD, SmartEye

__all__ = [
    "BatchReport",
    "DirectUpload",
    "MRC_THRESHOLD",
    "Mrc",
    "PHOTONET_THRESHOLD",
    "PhotoNet",
    "SMARTEYE_THRESHOLD",
    "SharingScheme",
    "SmartEye",
    "make_bees_ea",
]
