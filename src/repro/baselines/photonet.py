"""PhotoNet-style metadata baseline (Uddin et al., RTSS 2011).

The related-work section's other family: redundancy elimination from
cheap image *metadata* — colour histograms (and geotags when present) —
instead of local features.  PhotoNet runs inside a delay-tolerant
network; here its detector rides the same source-side two-phase
protocol as SmartEye/MRC so the comparison isolates the detector.

Metadata detection is nearly free to compute and tiny to upload, but
colour histograms confuse different scenes with similar palettes and
miss same-scene shots under lighting changes — measured against BEES in
``tests/baselines/test_photonet.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import FeatureError
from ..features.base import FeatureSet
from ..imaging.image import Image
from .cross_batch import CrossBatchOnlyScheme

#: Histogram bins per RGB channel (PhotoNet uses coarse histograms).
BINS_PER_CHANNEL = 8

#: Histogram-intersection similarity above which two images are
#: declared redundant.  Far looser than Equation 2's scale: histograms
#: of unrelated images already intersect substantially (~0.6 mean on
#: the synthetic scenes; same-scene pairs score ~0.88, min ~0.78).
PHOTONET_THRESHOLD = 0.75


def colour_histogram(image: Image) -> np.ndarray:
    """A normalised per-channel colour histogram (3 x BINS, flattened)."""
    bitmap = image.bitmap
    channels = []
    for channel in range(3):
        histogram, _ = np.histogram(
            bitmap[:, :, channel], bins=BINS_PER_CHANNEL, range=(0, 256)
        )
        total = histogram.sum()
        if total == 0:
            raise FeatureError("cannot build a histogram of an empty image")
        # Each channel normalises to unit mass, so the intersection of
        # two histograms lies in [0, 1] per channel.
        channels.append(histogram.astype(np.float64) / total)
    return np.concatenate(channels)


def histogram_intersection(a: np.ndarray, b: np.ndarray) -> float:
    """Histogram intersection in [0, 1] (1 = identical palettes)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise FeatureError(f"histogram shape mismatch: {a.shape} vs {b.shape}")
    # Intersections compare per-channel mass, normalised already.
    return float(np.minimum(a, b).sum()) / 3.0


def histogram_feature_set(image: Image) -> FeatureSet:
    """Wrap the histogram as a single-descriptor float FeatureSet.

    This lets PhotoNet ride the existing index/query plumbing: the
    index's float path sketches the one descriptor, and Equation 2 on a
    1-element set degenerates to a match/no-match verdict.
    """
    histogram = colour_histogram(image).astype(np.float32)[None, :]
    return FeatureSet(
        kind="photonet",
        descriptors=histogram,
        xs=np.zeros(1),
        ys=np.zeros(1),
        pixels_processed=image.pixels,
        image_id=image.image_id,
    )


@dataclass
class PhotoNet(CrossBatchOnlyScheme):
    """Histogram-metadata cross-batch elimination."""

    threshold: float = PHOTONET_THRESHOLD
    name: str = "PhotoNet"
    #: Stored histograms of everything the server has (metadata index).
    _histograms: dict = field(default_factory=dict, repr=False)

    # PhotoNet's "features" are its histograms; the energy model has no
    # rate for them (they cost one pass over the pixels, like a resize).
    @property
    def feature_kind(self) -> str:
        return "orb"  # charged like the cheapest extractor

    def extract(self, image: Image) -> FeatureSet:
        return histogram_feature_set(image)

    def process_batch(self, device, server, images):
        # The generic two-phase loop assumes the scheme's features can
        # be indexed/queried by the shared FeatureIndex; PhotoNet's
        # histogram store is simpler, so it implements the loop itself.
        from ..energy import FEATURE_EXTRACTION, FEATURE_UPLOAD, IMAGE_UPLOAD
        from .base import BatchReport

        report = BatchReport(scheme=self.name, n_images=len(images))
        before = device.meter.snapshot()
        before_bytes = device.uplink.sent_bytes

        verdicts = []
        snapshot = dict(self._histograms)  # batch-start metadata index
        for image in images:
            if not device.alive:
                report.halted = True
                break
            histogram = colour_histogram(image)
            cost = device.cost_model.compression_cost(image.nominal_pixels)
            seconds = cost.seconds
            if not device.spend(cost, FEATURE_EXTRACTION):
                report.halted = True
                break
            payload = histogram.nbytes + server.query_response_bytes
            transfer = device.upload(payload, FEATURE_UPLOAD)
            if transfer is None:
                report.halted = True
                break
            seconds += transfer.seconds
            best = max(
                (histogram_intersection(histogram, other) for other in snapshot.values()),
                default=0.0,
            )
            verdicts.append((image, histogram, seconds, best > self.threshold))

        for image, histogram, seconds, redundant in verdicts:
            if redundant:
                report.eliminated_cross_batch.append(image.image_id)
                report.per_image_seconds.append(seconds)
                continue
            if not device.alive:
                report.halted = True
                break
            transfer = device.upload(image.nominal_bytes, IMAGE_UPLOAD)
            if transfer is None:
                report.halted = True
                break
            self._histograms[image.image_id] = histogram
            server.store.add(image)
            report.uploaded_ids.append(image.image_id)
            report.per_image_seconds.append(seconds + transfer.seconds)

        report.total_seconds = float(sum(report.per_image_seconds))
        report.sent_bytes = device.uplink.sent_bytes - before_bytes
        report.energy_by_category = device.meter.since(before)
        return self.observe_batch(report)
