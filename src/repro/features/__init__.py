"""Feature substrate: local feature extraction, matching, and similarity.

Replaces the OpenCV ``features2d`` primitives the BEES prototype uses —
ORB (the algorithm BEES selects, Section III-D), plus the SIFT and
PCA-SIFT baselines it compares against.
"""

from .base import FeatureSet
from .keypoints import Keypoints, detect_fast
from .minhash import MinHasher
from .matching import (
    DEFAULT_HAMMING_THRESHOLD,
    DEFAULT_L2_THRESHOLD,
    cached_match_count,
    hamming_distance_matrix,
    l2_distance_matrix,
    match_count,
    mutual_matches,
    resolve_threshold,
)
from .orb import OrbExtractor
from .serialize import deserialize_features, serialize_features
from .pca_sift import PcaSiftExtractor
from .sift import SiftExtractor
from .similarity import jaccard_similarity
from .sizes import DESCRIPTOR_BYTES, SpaceOverhead, feature_bytes, space_overheads

__all__ = [
    "DEFAULT_HAMMING_THRESHOLD",
    "DEFAULT_L2_THRESHOLD",
    "DESCRIPTOR_BYTES",
    "FeatureSet",
    "Keypoints",
    "MinHasher",
    "OrbExtractor",
    "PcaSiftExtractor",
    "SiftExtractor",
    "SpaceOverhead",
    "cached_match_count",
    "deserialize_features",
    "detect_fast",
    "feature_bytes",
    "resolve_threshold",
    "hamming_distance_matrix",
    "jaccard_similarity",
    "l2_distance_matrix",
    "match_count",
    "mutual_matches",
    "serialize_features",
    "space_overheads",
]
