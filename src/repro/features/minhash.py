"""MinHash sketches of descriptor sets.

Equation 2 measures the *Jaccard similarity* of two feature sets — the
quantity MinHash was invented to estimate from constant-size sketches.
A client that keeps only a k-value sketch per uploaded image can answer
"roughly how similar?" without storing (or shipping) descriptors at
all: sketch agreement is an unbiased estimator of the Jaccard index
with standard error ``1/sqrt(k)``.

Descriptors are first quantised to tokens by LSH bit-sampling (so two
*near*-duplicate descriptors usually map to the same token, mirroring
the fuzzy intersection of Equation 2), then the token sets are
MinHashed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import FeatureError
from .base import FeatureSet

DEFAULT_SKETCH_SIZE = 64
#: Bits sampled per token; 32 of 256 keeps near-duplicates colliding.
TOKEN_BITS = 32

_PRIME = (1 << 61) - 1


@dataclass
class MinHasher:
    """Produces fixed-size MinHash sketches of ORB feature sets."""

    sketch_size: int = DEFAULT_SKETCH_SIZE
    seed: int = 17
    _token_positions: np.ndarray = field(init=False, repr=False)
    _hash_a: np.ndarray = field(init=False, repr=False)
    _hash_b: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.sketch_size < 1:
            raise FeatureError(f"sketch_size must be >= 1, got {self.sketch_size}")
        rng = np.random.default_rng(self.seed)
        self._token_positions = rng.choice(256, size=TOKEN_BITS, replace=False)
        self._hash_a = rng.integers(1, _PRIME, size=self.sketch_size, dtype=np.uint64)
        self._hash_b = rng.integers(0, _PRIME, size=self.sketch_size, dtype=np.uint64)

    # -- internals ----------------------------------------------------------

    def _tokens(self, features: FeatureSet) -> np.ndarray:
        """Quantise descriptors to integer tokens (deduplicated)."""
        if features.kind != "orb":
            raise FeatureError(
                f"MinHash sketches require orb features, got {features.kind!r}"
            )
        if len(features) == 0:
            return np.zeros(0, dtype=np.uint64)
        bits = np.unpackbits(features.descriptors, axis=1)[:, self._token_positions]
        weights = (1 << np.arange(TOKEN_BITS, dtype=np.uint64))[None, :]
        tokens = (bits.astype(np.uint64) * weights).sum(axis=1)
        return np.unique(tokens)

    # -- public API -----------------------------------------------------------

    def sketch(self, features: FeatureSet) -> np.ndarray:
        """The (sketch_size,) uint64 MinHash signature of *features*.

        An empty feature set sketches to all-max values, which matches
        nothing (estimated similarity 0 against any non-empty sketch).
        """
        tokens = self._tokens(features)
        if len(tokens) == 0:
            return np.full(self.sketch_size, np.iinfo(np.uint64).max, dtype=np.uint64)
        # Universal hashing: h_i(t) = (a_i * t + b_i) mod p, minimised
        # over the token set per row.
        products = (
            self._hash_a[:, None] * tokens[None, :] + self._hash_b[:, None]
        ) % np.uint64(_PRIME)
        return products.min(axis=1)

    def estimate_similarity(self, sketch_a: np.ndarray, sketch_b: np.ndarray) -> float:
        """The MinHash Jaccard estimate: fraction of agreeing rows."""
        sketch_a = np.asarray(sketch_a, dtype=np.uint64)
        sketch_b = np.asarray(sketch_b, dtype=np.uint64)
        if sketch_a.shape != (self.sketch_size,) or sketch_b.shape != (self.sketch_size,):
            raise FeatureError(
                f"sketches must have shape ({self.sketch_size},), got "
                f"{sketch_a.shape} and {sketch_b.shape}"
            )
        empty = np.iinfo(np.uint64).max
        if (sketch_a == empty).all() and (sketch_b == empty).all():
            return 0.0
        return float((sketch_a == sketch_b).mean())

    def token_jaccard(self, features_a: FeatureSet, features_b: FeatureSet) -> float:
        """The exact Jaccard of the two token sets (the estimation target)."""
        tokens_a = set(self._tokens(features_a).tolist())
        tokens_b = set(self._tokens(features_b).tolist())
        if not tokens_a and not tokens_b:
            return 0.0
        return len(tokens_a & tokens_b) / len(tokens_a | tokens_b)
