"""Wire serialization of feature sets.

The client uploads its features to the server; this module defines the
byte format those uploads use, so the payload sizes the energy/network
models charge for correspond to an actual encodable message.

Format (little-endian):

    magic   4 bytes   b"BEF1"
    kind    1 byte    0 = orb, 1 = sift, 2 = pca-sift, 3 = other
    id_len  2 bytes   length of the UTF-8 image id
    id      id_len    image id bytes
    n       4 bytes   descriptor count
    width   4 bytes   descriptor row width (bytes for orb, floats else)
    pixels  8 bytes   pixels_processed
    xs, ys  n*4 each  float32 keypoint coordinates
    desc    payload   uint8 rows (orb) or float32 rows (sift family)
"""

from __future__ import annotations

import struct

import numpy as np

from ..errors import FeatureError
from .base import FeatureSet

MAGIC = b"BEF1"
_KIND_CODES = {"orb": 0, "sift": 1, "pca-sift": 2}
_KIND_NAMES = {code: kind for kind, code in _KIND_CODES.items()}
_HEADER = struct.Struct("<4sBH")
_COUNTS = struct.Struct("<IIQ")


def serialize_features(features: FeatureSet) -> bytes:
    """Encode *features* into the wire format."""
    kind_code = _KIND_CODES.get(features.kind)
    if kind_code is None:
        raise FeatureError(f"cannot serialise feature kind {features.kind!r}")
    image_id = features.image_id.encode("utf-8")
    if len(image_id) > 0xFFFF:
        raise FeatureError("image id too long to serialise")
    if features.kind == "orb":
        descriptors = np.ascontiguousarray(features.descriptors, dtype=np.uint8)
    else:
        descriptors = np.ascontiguousarray(features.descriptors, dtype=np.float32)
    parts = [
        _HEADER.pack(MAGIC, kind_code, len(image_id)),
        image_id,
        _COUNTS.pack(
            descriptors.shape[0], descriptors.shape[1], features.pixels_processed
        ),
        np.asarray(features.xs, dtype=np.float32).tobytes(),
        np.asarray(features.ys, dtype=np.float32).tobytes(),
        descriptors.tobytes(),
    ]
    return b"".join(parts)


def deserialize_features_view(payload: "bytes | memoryview | np.ndarray") -> FeatureSet:
    """Decode the wire format **without copying the descriptor matrix**.

    The returned feature set's ``descriptors`` are a view into
    *payload*'s buffer, so a payload resident in a shared-memory arena
    (:mod:`repro.kernels.arena`) or an mmap-ed segment is scored by the
    Hamming/L2 kernels in place.  The caller owns the buffer's
    lifetime: the view must not outlive it.  Keypoint coordinates are
    still widened to float64 (tiny, and the similarity kernels never
    read them).
    """
    return _deserialize(np.frombuffer(payload, dtype=np.uint8), copy=False)


def deserialize_features(payload: bytes) -> FeatureSet:
    """Decode the wire format back into a :class:`FeatureSet`."""
    return _deserialize(payload, copy=True)


def _deserialize(payload: "bytes | np.ndarray", copy: bool) -> FeatureSet:
    buffer = memoryview(payload)
    total = buffer.nbytes
    if total < _HEADER.size:
        raise FeatureError("feature payload truncated (header)")
    magic, kind_code, id_len = _HEADER.unpack_from(buffer, 0)
    if magic != MAGIC:
        raise FeatureError(f"bad magic {magic!r}")
    kind = _KIND_NAMES.get(kind_code)
    if kind is None:
        raise FeatureError(f"unknown feature kind code {kind_code}")
    offset = _HEADER.size
    image_id = bytes(buffer[offset : offset + id_len]).decode("utf-8")
    offset += id_len
    if total < offset + _COUNTS.size:
        raise FeatureError("feature payload truncated (counts)")
    n, width, pixels = _COUNTS.unpack_from(buffer, offset)
    offset += _COUNTS.size

    coords_bytes = 4 * n
    item = 1 if kind == "orb" else 4
    expected = offset + 2 * coords_bytes + n * width * item
    if total != expected:
        raise FeatureError(
            f"feature payload length {total} != expected {expected}"
        )
    xs = np.frombuffer(buffer, dtype=np.float32, count=n, offset=offset).astype(
        np.float64
    )
    offset += coords_bytes
    ys = np.frombuffer(buffer, dtype=np.float32, count=n, offset=offset).astype(
        np.float64
    )
    offset += coords_bytes
    if kind == "orb":
        descriptors = np.frombuffer(
            buffer, dtype=np.uint8, count=n * width, offset=offset
        ).reshape(n, width)
    else:
        descriptors = np.frombuffer(
            buffer, dtype=np.float32, count=n * width, offset=offset
        ).reshape(n, width)
    return FeatureSet(
        kind=kind,
        descriptors=descriptors.copy() if copy else descriptors,
        xs=xs,
        ys=ys,
        pixels_processed=int(pixels),
        image_id=image_id,
    )
