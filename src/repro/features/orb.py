"""ORB: oriented FAST keypoints + steered BRIEF binary descriptors.

This replaces ``cv2.ORB`` for the BEES pipeline.  The structure follows
Rublee et al. (ICCV 2011):

1. a scale pyramid (factor 1.2),
2. FAST-9 detection with Harris ranking per level,
3. orientation by intensity centroid (oFAST),
4. 256-bit steered-BRIEF descriptors sampled from a smoothed patch.

Descriptors are bit-packed ``(n, 32)`` uint8 rows and are matched with
Hamming distance (:mod:`repro.features.matching`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import FeatureError
from ..imaging.filters import box_blur
from ..imaging.image import Image
from ..imaging.transforms import resize_bilinear
from .base import FeatureSet, traced_extract
from .brief import (
    N_ANGLE_BINS,
    PATCH_RADIUS,
    angle_bins,
    pack_bits,
    rotated_patterns,
    sampling_pattern,
)
from .keypoints import Keypoints, detect_fast


@dataclass
class OrbExtractor:
    """ORB feature extractor.

    Parameters mirror OpenCV's: ``max_features`` is the total keypoint
    budget across all pyramid levels, ``scale_factor``/``n_levels``
    define the pyramid, ``fast_threshold`` the segment-test contrast.
    """

    max_features: int = 300
    n_levels: int = 5
    scale_factor: float = 1.2
    fast_threshold: float = 12.0
    patch_radius: int = PATCH_RADIUS
    smoothing_radius: int = 2
    kind: str = field(default="orb", init=False)

    def __post_init__(self) -> None:
        if self.max_features < 1:
            raise FeatureError(f"max_features must be >= 1, got {self.max_features}")
        if self.n_levels < 1:
            raise FeatureError(f"n_levels must be >= 1, got {self.n_levels}")
        if self.scale_factor <= 1.0:
            raise FeatureError(f"scale_factor must be > 1, got {self.scale_factor}")
        pattern = sampling_pattern(patch_radius=self.patch_radius)
        self._patterns = rotated_patterns(pattern)  # (bins, 256, 2, 2)

    # -- internals --------------------------------------------------------

    def _pyramid(self, plane: np.ndarray) -> list[tuple[np.ndarray, float]]:
        """List of ``(plane, scale)`` pairs, coarsest last."""
        levels = [(plane, 1.0)]
        h, w = plane.shape
        for level in range(1, self.n_levels):
            scale = self.scale_factor**level
            nh, nw = int(round(h / scale)), int(round(w / scale))
            if min(nh, nw) < 2 * self.patch_radius + 8:
                break
            rgb = np.repeat(plane[:, :, None], 3, axis=2)
            resized = resize_bilinear(rgb, nh, nw).astype(np.float64)[:, :, 0]
            levels.append((resized, scale))
        return levels

    def _describe(self, plane: np.ndarray, keypoints: Keypoints) -> np.ndarray:
        """Steered-BRIEF descriptors for *keypoints* on one pyramid level."""
        n = len(keypoints)
        if n == 0:
            return np.zeros((0, 32), dtype=np.uint8)
        smoothed = box_blur(plane, self.smoothing_radius)
        pad = self.patch_radius + 2  # +2 absorbs rotation rounding
        padded = np.pad(smoothed, pad, mode="reflect")

        bins = angle_bins(keypoints.angles, N_ANGLE_BINS)
        offsets = self._patterns[bins]  # (n, 256, 2, 2)
        iy = np.rint(keypoints.ys).astype(np.int64)[:, None] + pad
        ix = np.rint(keypoints.xs).astype(np.int64)[:, None] + pad
        rows_a = iy + offsets[:, :, 0, 0]
        cols_a = ix + offsets[:, :, 0, 1]
        rows_b = iy + offsets[:, :, 1, 0]
        cols_b = ix + offsets[:, :, 1, 1]
        bits = padded[rows_a, cols_a] < padded[rows_b, cols_b]
        return pack_bits(bits)

    # -- public API -------------------------------------------------------

    @traced_extract
    def extract(self, image: Image) -> FeatureSet:
        """Extract ORB features from *image*."""
        base = image.gray()
        pixels = 0
        levels = self._pyramid(base)
        # Budget keypoints across levels proportionally to level area, the
        # same allocation OpenCV uses.
        areas = np.array([p.size for p, _ in levels], dtype=np.float64)
        budgets = np.maximum(1, np.rint(self.max_features * areas / areas.sum())).astype(int)

        all_xs: list[np.ndarray] = []
        all_ys: list[np.ndarray] = []
        all_desc: list[np.ndarray] = []
        all_resp: list[np.ndarray] = []
        for (plane, scale), budget in zip(levels, budgets):
            pixels += plane.size
            kps = detect_fast(
                plane,
                threshold=self.fast_threshold,
                max_keypoints=int(budget),
                border=self.patch_radius + 2,
            )
            desc = self._describe(plane, kps)
            all_desc.append(desc)
            all_xs.append(kps.xs * scale)
            all_ys.append(kps.ys * scale)
            all_resp.append(kps.responses)

        descriptors = (
            np.concatenate(all_desc, axis=0) if all_desc else np.zeros((0, 32), np.uint8)
        )
        xs = np.concatenate(all_xs) if all_xs else np.zeros(0)
        ys = np.concatenate(all_ys) if all_ys else np.zeros(0)
        responses = np.concatenate(all_resp) if all_resp else np.zeros(0)

        if len(descriptors) > self.max_features:
            order = np.argsort(-responses, kind="stable")[: self.max_features]
            descriptors, xs, ys = descriptors[order], xs[order], ys[order]

        return FeatureSet(
            kind=self.kind,
            descriptors=descriptors,
            xs=xs,
            ys=ys,
            pixels_processed=pixels,
            image_id=image.image_id,
        )
