"""Shared feature-extraction types.

Every extractor returns a :class:`FeatureSet` — descriptors plus keypoint
geometry plus the *work accounting* (pixels processed, keypoints
described) the energy model charges for.  Keeping work counts on the
result rather than measuring wall-clock makes the energy simulation
deterministic and machine-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from ..errors import FeatureError
from ..imaging.image import Image

#: Bytes of keypoint geometry stored per feature (x, y as float32).
KEYPOINT_BYTES = 8


@dataclass(frozen=True)
class FeatureSet:
    """Extracted features of one image."""

    kind: str  # "orb" | "sift" | "pca-sift"
    descriptors: np.ndarray  # (n, 32) uint8 for orb; (n, d) float32 otherwise
    xs: np.ndarray
    ys: np.ndarray
    pixels_processed: int
    image_id: str = ""
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.descriptors.ndim != 2:
            raise FeatureError(
                f"descriptors must be 2-D, got {self.descriptors.ndim}-D"
            )
        n = self.descriptors.shape[0]
        if len(self.xs) != n or len(self.ys) != n:
            raise FeatureError(
                f"keypoint arrays ({len(self.xs)}, {len(self.ys)}) do not match "
                f"{n} descriptors"
            )
        if self.pixels_processed < 0:
            raise FeatureError("pixels_processed must be non-negative")

    def __len__(self) -> int:
        return int(self.descriptors.shape[0])

    @property
    def descriptor_bytes(self) -> int:
        """Serialized size of the descriptor matrix."""
        return int(self.descriptors.nbytes)

    @property
    def total_bytes(self) -> int:
        """Descriptor payload + keypoint geometry — what gets uploaded."""
        return self.descriptor_bytes + KEYPOINT_BYTES * len(self)


class FeatureExtractor(Protocol):
    """The extractor interface: ``extract`` an image into a FeatureSet."""

    kind: str

    def extract(self, image: Image) -> FeatureSet:  # pragma: no cover - protocol
        """Extract this algorithm's features from *image*."""
        ...
