"""Shared feature-extraction types.

Every extractor returns a :class:`FeatureSet` — descriptors plus keypoint
geometry plus the *work accounting* (pixels processed, keypoints
described) the energy model charges for.  Keeping work counts on the
result rather than measuring wall-clock makes the energy simulation
deterministic and machine-independent.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from ..errors import FeatureError
from ..imaging.image import Image
from ..obs.runtime import get_obs

#: Bytes of keypoint geometry stored per feature (x, y as float32).
KEYPOINT_BYTES = 8


@dataclass(frozen=True)
class FeatureSet:
    """Extracted features of one image."""

    kind: str  # "orb" | "sift" | "pca-sift"
    descriptors: np.ndarray  # (n, 32) uint8 for orb; (n, d) float32 otherwise
    xs: np.ndarray
    ys: np.ndarray
    pixels_processed: int
    image_id: str = ""
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.descriptors.ndim != 2:
            raise FeatureError(
                f"descriptors must be 2-D, got {self.descriptors.ndim}-D"
            )
        n = self.descriptors.shape[0]
        if len(self.xs) != n or len(self.ys) != n:
            raise FeatureError(
                f"keypoint arrays ({len(self.xs)}, {len(self.ys)}) do not match "
                f"{n} descriptors"
            )
        if self.pixels_processed < 0:
            raise FeatureError("pixels_processed must be non-negative")

    def __len__(self) -> int:
        return int(self.descriptors.shape[0])

    @property
    def descriptor_bytes(self) -> int:
        """Serialized size of the descriptor matrix."""
        return int(self.descriptors.nbytes)

    @property
    def total_bytes(self) -> int:
        """Descriptor payload + keypoint geometry — what gets uploaded."""
        return self.descriptor_bytes + KEYPOINT_BYTES * len(self)


class FeatureExtractor(Protocol):
    """The extractor interface: ``extract`` an image into a FeatureSet."""

    kind: str

    def extract(self, image: Image) -> FeatureSet:  # pragma: no cover - protocol
        """Extract this algorithm's features from *image*."""
        ...


def traced_extract(extract):
    """Wrap an extractor's ``extract`` in a ``features.extract`` child span.

    The span nests under whatever stage span is open (``bees.afe`` for
    the BEES client) and records the extractor kind, the image, and the
    keypoint yield.  The enabled check runs *before* any span plumbing,
    so with observability off (the default) the wrapper costs one global
    read and one attribute check.
    """

    @functools.wraps(extract)
    def wrapper(self, image: Image) -> FeatureSet:
        obs = get_obs()
        if not obs.enabled:
            return extract(self, image)
        with obs.span(
            "features.extract",
            kind=self.kind,
            image_id=image.image_id,
            pixels=image.pixels,
        ) as span:
            features = extract(self, image)
            span.set_attribute("n_features", len(features))
            return features

    return wrapper
