"""A simplified SIFT implementation (Lowe, IJCV 2004).

The BEES paper uses SIFT (via OpenCV) as the high-precision,
high-energy baseline.  This implementation keeps the parts that give
SIFT its character:

* a Gaussian scale space with difference-of-Gaussians (DoG) extrema
  detection across scales,
* low-contrast and edge-response rejection,
* a dominant-gradient-orientation assignment per keypoint,
* the classic 4x4-cell x 8-orientation-bin (= 128-d) descriptor with
  Gaussian spatial weighting, normalisation, 0.2 clipping, and
  renormalisation.

Sub-pixel refinement and full octave handling are simplified: on the
small synthetic bitmaps of this reproduction they change precision by
noise-level amounts while multiplying runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import FeatureError
from ..imaging.filters import gaussian_blur, sobel_gradients
from ..imaging.image import Image
from ..imaging.transforms import resize_bilinear
from .base import FeatureSet, traced_extract

DESCRIPTOR_DIM = 128
_GRID = 4  # 4x4 spatial cells
_ORI_BINS = 8
_PATCH = 16  # 16x16 sample grid
_N_ANGLE_BINS = 36


def _rotated_grids(radius: float = _PATCH / 2.0) -> np.ndarray:
    """Pre-rotated (n_bins, 16*16, 2) float sampling offsets."""
    step = 2.0 * radius / _PATCH
    coords = (np.arange(_PATCH) - _PATCH / 2.0 + 0.5) * step
    dy, dx = np.meshgrid(coords, coords, indexing="ij")
    base = np.stack([dy.ravel(), dx.ravel()], axis=1)  # (256, 2)
    angles = 2.0 * np.pi * np.arange(_N_ANGLE_BINS) / _N_ANGLE_BINS
    cos = np.cos(angles)[:, None]
    sin = np.sin(angles)[:, None]
    ry = base[None, :, 0] * cos - base[None, :, 1] * sin
    rx = base[None, :, 0] * sin + base[None, :, 1] * cos
    return np.stack([ry, rx], axis=2)


_GRIDS = _rotated_grids()

#: Gaussian spatial weights over the 16x16 descriptor grid.
_SPATIAL_WEIGHT = np.exp(
    -(
        (np.arange(_PATCH) - _PATCH / 2.0 + 0.5)[:, None] ** 2
        + (np.arange(_PATCH) - _PATCH / 2.0 + 0.5)[None, :] ** 2
    )
    / (2.0 * (_PATCH / 2.0) ** 2)
).ravel()

#: Which 4x4 cell each of the 16x16 samples belongs to.
_CELL_INDEX = (
    (np.repeat(np.arange(_PATCH), _PATCH) // (_PATCH // _GRID)) * _GRID
    + (np.tile(np.arange(_PATCH), _PATCH) // (_PATCH // _GRID))
)


@dataclass
class SiftExtractor:
    """Simplified SIFT extractor."""

    max_features: int = 300
    n_octaves: int = 2
    scales_per_octave: int = 3
    base_sigma: float = 1.6
    contrast_threshold: float = 2.0
    edge_ratio: float = 10.0
    kind: str = field(default="sift", init=False)

    def __post_init__(self) -> None:
        if self.max_features < 1:
            raise FeatureError(f"max_features must be >= 1, got {self.max_features}")
        if self.n_octaves < 1 or self.scales_per_octave < 1:
            raise FeatureError("octaves and scales_per_octave must be >= 1")

    # -- detection --------------------------------------------------------

    def _dog_extrema(self, plane: np.ndarray) -> tuple[np.ndarray, np.ndarray, int]:
        """Detect DoG extrema on one octave; returns (ys, xs, pixels)."""
        sigmas = [
            self.base_sigma * (2.0 ** (s / self.scales_per_octave))
            for s in range(self.scales_per_octave + 3)
        ]
        stack = np.stack([gaussian_blur(plane, s) for s in sigmas], axis=0)
        dog = stack[1:] - stack[:-1]
        pixels = plane.size * len(sigmas)

        inner = dog[1:-1]
        is_max = np.ones(inner.shape, dtype=bool)
        is_min = np.ones(inner.shape, dtype=bool)
        for ds in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dx in (-1, 0, 1):
                    if ds == dy == dx == 0:
                        continue
                    neighbour = np.roll(dog, (-ds, -dy, -dx), axis=(0, 1, 2))[1:-1]
                    is_max &= inner >= neighbour
                    is_min &= inner <= neighbour
        extrema = (is_max | is_min) & (np.abs(inner) > self.contrast_threshold)
        # Drop the rolled-wrap border and image edges.
        extrema[:, :8, :] = False
        extrema[:, -8:, :] = False
        extrema[:, :, :8] = False
        extrema[:, :, -8:] = False

        ss, ys, xs = np.nonzero(extrema)
        if len(ys) == 0:
            return np.zeros(0, int), np.zeros(0, int), pixels

        # Edge rejection via the 2x2 DoG Hessian trace/det ratio.
        keep = np.zeros(len(ys), dtype=bool)
        for idx in range(len(ys)):
            d = dog[ss[idx] + 1]
            y, x = ys[idx], xs[idx]
            dxx = d[y, x + 1] + d[y, x - 1] - 2 * d[y, x]
            dyy = d[y + 1, x] + d[y - 1, x] - 2 * d[y, x]
            dxy = (d[y + 1, x + 1] - d[y + 1, x - 1] - d[y - 1, x + 1] + d[y - 1, x - 1]) / 4.0
            det = dxx * dyy - dxy * dxy
            trace = dxx + dyy
            r = self.edge_ratio
            keep[idx] = det > 0 and trace * trace / det < (r + 1) ** 2 / r
        ys, xs, ss = ys[keep], xs[keep], ss[keep]

        # Strongest responses first; dedupe positions across scales.
        strengths = np.abs(dog[ss + 1, ys, xs])
        order = np.argsort(-strengths, kind="stable")
        seen: set[tuple[int, int]] = set()
        uy, ux = [], []
        for idx in order:
            key = (int(ys[idx]), int(xs[idx]))
            if key not in seen:
                seen.add(key)
                uy.append(key[0])
                ux.append(key[1])
        return np.array(uy, int), np.array(ux, int), pixels

    # -- orientation and description --------------------------------------

    def _orientations(
        self, magnitude: np.ndarray, orientation: np.ndarray, ys: np.ndarray, xs: np.ndarray
    ) -> np.ndarray:
        """Dominant gradient orientation per keypoint (36-bin histogram)."""
        if len(ys) == 0:
            return np.zeros(0)
        radius = 6
        pad = radius
        mag = np.pad(magnitude, pad, mode="constant")
        ori = np.pad(orientation, pad, mode="constant")
        offs = np.arange(-radius, radius + 1)
        dy, dx = np.meshgrid(offs, offs, indexing="ij")
        weight = np.exp(-(dy * dy + dx * dx) / (2.0 * (radius / 1.5) ** 2)).ravel()

        rows = ys[:, None] + pad + dy.ravel()[None, :]
        cols = xs[:, None] + pad + dx.ravel()[None, :]
        mags = mag[rows, cols] * weight[None, :]
        bins = ((ori[rows, cols] / (2 * np.pi)) % 1.0 * _N_ANGLE_BINS).astype(int) % _N_ANGLE_BINS

        hist = np.zeros((len(ys), _N_ANGLE_BINS))
        np.add.at(hist, (np.repeat(np.arange(len(ys)), bins.shape[1]), bins.ravel()), mags.ravel())
        peak = hist.argmax(axis=1)
        return (peak + 0.5) * 2.0 * np.pi / _N_ANGLE_BINS

    def _describe(
        self,
        magnitude: np.ndarray,
        orientation: np.ndarray,
        ys: np.ndarray,
        xs: np.ndarray,
        angles: np.ndarray,
    ) -> np.ndarray:
        n = len(ys)
        if n == 0:
            return np.zeros((0, DESCRIPTOR_DIM), dtype=np.float32)
        bins = (angles / (2 * np.pi) * _N_ANGLE_BINS).astype(int) % _N_ANGLE_BINS
        offsets = _GRIDS[bins]  # (n, 256, 2) float
        pad = _PATCH  # generous margin for rotated samples
        mag = np.pad(magnitude, pad, mode="constant")
        ori = np.pad(orientation, pad, mode="constant")
        rows = np.rint(ys[:, None] + offsets[:, :, 0]).astype(int) + pad
        cols = np.rint(xs[:, None] + offsets[:, :, 1]).astype(int) + pad
        mags = mag[rows, cols] * _SPATIAL_WEIGHT[None, :]
        rel = (ori[rows, cols] - angles[:, None]) % (2 * np.pi)
        obins = (rel / (2 * np.pi) * _ORI_BINS).astype(int) % _ORI_BINS

        flat_bins = _CELL_INDEX[None, :] * _ORI_BINS + obins  # (n, 256)
        desc = np.zeros((n, DESCRIPTOR_DIM))
        np.add.at(
            desc,
            (np.repeat(np.arange(n), _PATCH * _PATCH), flat_bins.ravel()),
            mags.ravel(),
        )
        norms = np.linalg.norm(desc, axis=1, keepdims=True)
        desc = desc / np.maximum(norms, 1e-9)
        desc = np.minimum(desc, 0.2)
        norms = np.linalg.norm(desc, axis=1, keepdims=True)
        desc = desc / np.maximum(norms, 1e-9)
        return desc.astype(np.float32)

    # -- public API -------------------------------------------------------

    @traced_extract
    def extract(self, image: Image) -> FeatureSet:
        """Extract simplified-SIFT features from *image*."""
        base = image.gray()
        all_xs: list[np.ndarray] = []
        all_ys: list[np.ndarray] = []
        all_desc: list[np.ndarray] = []
        pixels = 0
        for octave in range(self.n_octaves):
            scale = 2**octave
            if octave == 0:
                plane = base
            else:
                h, w = base.shape
                nh, nw = h // scale, w // scale
                if min(nh, nw) < 4 * _PATCH:
                    break
                rgb = np.repeat(base[:, :, None], 3, axis=2)
                plane = resize_bilinear(rgb, nh, nw).astype(np.float64)[:, :, 0]
            ys, xs, octave_pixels = self._dog_extrema(plane)
            pixels += octave_pixels
            if len(ys) == 0:
                continue
            gx, gy = sobel_gradients(gaussian_blur(plane, self.base_sigma))
            magnitude = np.hypot(gx, gy)
            orientation = np.arctan2(gy, gx)
            angles = self._orientations(magnitude, orientation, ys, xs)
            desc = self._describe(magnitude, orientation, ys, xs, angles)
            all_desc.append(desc)
            all_xs.append(xs.astype(np.float64) * scale)
            all_ys.append(ys.astype(np.float64) * scale)

        if all_desc:
            descriptors = np.concatenate(all_desc, axis=0)
            xs = np.concatenate(all_xs)
            ys = np.concatenate(all_ys)
        else:
            descriptors = np.zeros((0, DESCRIPTOR_DIM), dtype=np.float32)
            xs = np.zeros(0)
            ys = np.zeros(0)
        if len(descriptors) > self.max_features:
            descriptors = descriptors[: self.max_features]
            xs = xs[: self.max_features]
            ys = ys[: self.max_features]
        return FeatureSet(
            kind=self.kind,
            descriptors=descriptors,
            xs=xs,
            ys=ys,
            pixels_processed=pixels,
            image_id=image.image_id,
        )
