"""Image similarity — Equation 2 of the paper.

An image is represented as its set of local features; the similarity of
two images is the Jaccard similarity of the two sets,

    sim(I1, I2) = |S1 ∩ S2| / |S1 ∪ S2|,

where the intersection is realised as the number of mutually-matched
descriptors and the union as ``|S1| + |S2| - |S1 ∩ S2|``.
"""

from __future__ import annotations

from ..errors import FeatureError
from ..obs.runtime import get_obs
from .base import FeatureSet
from .matching import cached_match_count


def _jaccard(
    features_a: FeatureSet, features_b: FeatureSet, threshold: float | None
) -> float:
    if features_a.kind != features_b.kind:
        raise FeatureError(
            f"cannot compare {features_a.kind!r} with {features_b.kind!r} features"
        )
    n_a, n_b = len(features_a), len(features_b)
    if n_a == 0 and n_b == 0:
        return 0.0
    # The kernel-layer cache makes repeat scorings of a pair (CBRD
    # verify across rounds, SSMM revisits) a dict lookup; counts are
    # identical to the uncached path for every input.
    matches = cached_match_count(features_a, features_b, threshold)
    union = n_a + n_b - matches
    if union <= 0:
        return 1.0
    return matches / union


def jaccard_similarity(
    features_a: FeatureSet, features_b: FeatureSet, threshold: float | None = None
) -> float:
    """Equation 2: Jaccard similarity of two feature sets in ``[0, 1]``.

    With observability enabled each comparison records a
    ``features.similarity`` child span (kind, set sizes, score); the
    enabled check comes first, so the disabled hot path pays one global
    read and one attribute check on top of the computation.
    """
    obs = get_obs()
    if not obs.enabled:
        return _jaccard(features_a, features_b, threshold)
    with obs.span(
        "features.similarity",
        kind=features_a.kind,
        image_a=features_a.image_id,
        image_b=features_b.image_id,
        n_a=len(features_a),
        n_b=len(features_b),
    ) as span:
        similarity = _jaccard(features_a, features_b, threshold)
        span.set_attribute("similarity", similarity)
        return similarity
