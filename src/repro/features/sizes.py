"""Feature space-overhead accounting — Table I of the paper.

The table compares the serialized size of the feature payload each
algorithm would upload: SIFT carries 128 float32 values per descriptor,
PCA-SIFT 36, and ORB packs 256 bits into 32 bytes.  Each feature also
carries its keypoint geometry.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FeatureError
from .base import KEYPOINT_BYTES

#: Bytes per descriptor by algorithm.
DESCRIPTOR_BYTES = {
    "sift": 128 * 4,
    "pca-sift": 36 * 4,
    "orb": 32,
}


def feature_bytes(kind: str, n_features: int) -> int:
    """Serialized feature payload for *n_features* descriptors of *kind*."""
    if kind not in DESCRIPTOR_BYTES:
        raise FeatureError(f"unknown feature kind {kind!r}")
    if n_features < 0:
        raise FeatureError(f"n_features must be >= 0, got {n_features}")
    return n_features * (DESCRIPTOR_BYTES[kind] + KEYPOINT_BYTES)


#: Feature budget per image at nominal (photo) resolution — OpenCV's
#: customary ``nfeatures=500`` cap, which every scheme's client app
#: applies before uploading its feature payload.
NOMINAL_FEATURE_CAP = 500


def nominal_feature_count(
    detected: int, bitmap_pixels: int, nominal_pixels: int, cap: int = NOMINAL_FEATURE_CAP
) -> int:
    """Extrapolate a detected feature count to photo resolution.

    The extractors run on small synthetic bitmaps; the *payload* a real
    client would upload corresponds to the keypoint density applied to
    the nominal ~2 MP photo, capped at the per-image feature budget.
    """
    if bitmap_pixels < 1 or nominal_pixels < 1:
        raise FeatureError("pixel counts must be positive")
    if detected < 0:
        raise FeatureError(f"detected must be >= 0, got {detected}")
    density = detected / bitmap_pixels
    return min(cap, int(round(density * nominal_pixels)))


def nominal_feature_bytes(
    kind: str,
    detected: int,
    bitmap_pixels: int,
    nominal_pixels: int,
    cap: int = NOMINAL_FEATURE_CAP,
) -> int:
    """The uplink payload of one image's feature set at photo scale."""
    count = nominal_feature_count(detected, bitmap_pixels, nominal_pixels, cap)
    return feature_bytes(kind, count)


@dataclass(frozen=True)
class SpaceOverhead:
    """One row cell of Table I."""

    kind: str
    total_bytes: int
    fraction_of_sift: float


def space_overheads(features_per_image: dict[str, float], n_images: int) -> list[SpaceOverhead]:
    """Compute Table-I style overheads.

    ``features_per_image`` maps algorithm kind to its average feature
    count per image (SIFT typically detects far more keypoints than the
    budgeted ORB, which is the second reason — besides descriptor width —
    BEES' payload is two orders smaller).
    """
    if n_images < 1:
        raise FeatureError(f"n_images must be >= 1, got {n_images}")
    if "sift" not in features_per_image:
        raise FeatureError("Table I normalises to SIFT; provide a 'sift' entry")
    totals = {
        kind: int(round(count * n_images)) * (DESCRIPTOR_BYTES[kind] + KEYPOINT_BYTES)
        for kind, count in features_per_image.items()
    }
    sift_total = max(1, totals["sift"])
    return [
        SpaceOverhead(kind=kind, total_bytes=total, fraction_of_sift=total / sift_total)
        for kind, total in totals.items()
    ]
