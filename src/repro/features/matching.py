"""Descriptor matching: Hamming for binary, L2 for float descriptors.

Matches are mutual nearest neighbours under a distance ceiling — the
conservative scheme that makes the Jaccard set-intersection of Equation 2
meaningful (each descriptor participates in at most one match).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..errors import FeatureError
from ..kernels.cache import MatchCountCache, get_match_cache, match_key
from ..kernels.hamming import hamming_distance_matrix as _kernel_hamming

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .base import FeatureSet

#: Default Hamming ceiling for a 256-bit ORB descriptor match.  28 bits
#: (11% of the descriptor) is a strict "good match" cut-off for rBRIEF;
#: together with the ratio test it keeps accidental matches between
#: *unrelated* images near zero — essential because CBRD takes a max
#: over an ever-growing index, so per-pair false positives compound.
#: The moderate-similarity tail of the dissimilar distribution (the FPR
#: in Figure 4) then comes from genuinely related content: scene-family
#: pairs that share objects, as in real photo collections.
DEFAULT_HAMMING_THRESHOLD = 28

#: Default L2 ceilings for unit-normalised float descriptors, per kind.
#: Like the Hamming ceiling these are calibrated on the synthetic
#: datasets (PCA-SIFT's 36-d space is denser, so its ceiling is lower);
#: the operating point matches ORB's: every same-scene pair scores above
#: the paper's T range while dissimilar-pair FPR stays near 10%.
DEFAULT_L2_THRESHOLD = 0.45
L2_THRESHOLDS = {
    "sift": 0.45,
    "pca-sift": 0.2,
    # PhotoNet's single-histogram "descriptor": an L2 ceiling of 0.25
    # over 24-bin unit-mass histograms ~ matches palettes that
    # histogram-intersection would score ~0.8+.
    "photonet": 0.25,
}

#: Lowe ratio: the best match must beat the second best by this factor.
DEFAULT_RATIO = 0.7


def hamming_distance_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise Hamming distances between packed binary descriptor rows.

    Delegates to the blocked uint64 kernel
    (:func:`repro.kernels.hamming.hamming_distance_matrix`); the
    distances are identical to the historical uint8-XOR + popcount-table
    implementation for every input.
    """
    return _kernel_hamming(a, b)


def l2_distance_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise Euclidean distances between float descriptor rows."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise FeatureError(f"incompatible descriptor shapes {a.shape} / {b.shape}")
    sq = (
        (a * a).sum(axis=1)[:, None]
        + (b * b).sum(axis=1)[None, :]
        - 2.0 * (a @ b.T)
    )
    return np.sqrt(np.maximum(sq, 0.0))


def mutual_matches(
    distances: np.ndarray, threshold: float, ratio: float = DEFAULT_RATIO
) -> np.ndarray:
    """Indices of mutual-nearest-neighbour matches under *threshold*.

    Returns an ``(m, 2)`` array of (row, col) index pairs.  A row matches
    a column when each is the other's nearest neighbour, the distance is
    <= threshold, and the match passes the Lowe ratio test (the best
    distance must be <= ``ratio`` x the second best in its row), which
    discards ambiguous matches between repetitive structures.
    """
    distances = np.asarray(distances)
    if distances.ndim != 2:
        raise FeatureError(f"distance matrix must be 2-D, got {distances.ndim}-D")
    if not 0.0 < ratio <= 1.0:
        raise FeatureError(f"ratio must be in (0, 1], got {ratio}")
    if distances.size == 0:
        return np.zeros((0, 2), dtype=np.int64)
    best_col = distances.argmin(axis=1)
    best_row = distances.argmin(axis=0)
    rows = np.arange(distances.shape[0])
    mutual = best_row[best_col] == rows
    best = distances[rows, best_col]
    close = best <= threshold
    # The ratio test runs in BOTH directions (row-wise and column-wise
    # second-best) so the resulting match set — and hence Equation 2's
    # similarity — is symmetric in its two arguments.
    unambiguous = np.ones_like(mutual)
    if ratio < 1.0:
        if distances.shape[1] >= 2:
            second_row = np.partition(distances, 1, axis=1)[:, :2].max(axis=1)
            unambiguous &= best <= ratio * second_row
        if distances.shape[0] >= 2:
            second_col = np.partition(distances, 1, axis=0)[:2, :].max(axis=0)
            unambiguous &= best <= ratio * second_col[best_col]
    keep = mutual & close & unambiguous
    return np.stack([rows[keep], best_col[keep]], axis=1)


def resolve_threshold(kind: str, threshold: float | None) -> float:
    """The effective match ceiling for *kind* (default or explicit)."""
    if kind == "orb":
        return float(DEFAULT_HAMMING_THRESHOLD if threshold is None else threshold)
    if kind in L2_THRESHOLDS:
        return float(L2_THRESHOLDS[kind] if threshold is None else threshold)
    raise FeatureError(f"unknown descriptor kind {kind!r}")


def match_count(
    desc_a: np.ndarray,
    desc_b: np.ndarray,
    kind: str,
    threshold: float | None = None,
) -> int:
    """Number of mutual matches between two descriptor matrices."""
    if len(desc_a) == 0 or len(desc_b) == 0:
        return 0
    limit = resolve_threshold(kind, threshold)
    if kind == "orb":
        dist = hamming_distance_matrix(desc_a, desc_b)
    else:
        dist = l2_distance_matrix(desc_a, desc_b)
    return int(mutual_matches(dist, limit).shape[0])


def cached_match_count(
    features_a: "FeatureSet",
    features_b: "FeatureSet",
    threshold: float | None = None,
    cache: "MatchCountCache | None" = None,
) -> int:
    """:func:`match_count` behind the process-wide LRU cache.

    Keys combine the image ids with blake2b content fingerprints of
    both descriptor matrices (see :mod:`repro.kernels.cache`), so a hit
    is byte-identical to recomputation by construction; the key is
    canonically ordered, matching the symmetry of mutual matching.
    CBRD verification and repeated fleet rounds re-score the same pairs
    constantly — those become dict lookups.
    """
    if features_a.kind != features_b.kind:
        raise FeatureError(
            f"cannot compare {features_a.kind!r} with {features_b.kind!r} features"
        )
    if len(features_a) == 0 or len(features_b) == 0:
        return 0
    kind = features_a.kind
    limit = resolve_threshold(kind, threshold)
    if cache is None:
        cache = get_match_cache()
    key = match_key(
        kind,
        limit,
        features_a.image_id,
        features_a.descriptors,
        features_b.image_id,
        features_b.descriptors,
    )
    cached = cache.get(key)
    if cached is not None:
        return cached
    count = match_count(features_a.descriptors, features_b.descriptors, kind, limit)
    cache.put(key, count)
    return count
