"""BRIEF sampling patterns and steered (rotation-aware) sampling.

ORB's descriptor is rBRIEF: 256 pixel-pair intensity comparisons inside a
31x31 patch, with the pair pattern rotated to the keypoint's orientation
(discretised to 12-degree steps, as in the original paper) so the
descriptor is rotation invariant.

The canonical ORB pattern was machine-learnt; we draw ours from an
isotropic Gaussian (the construction BRIEF itself recommends and that ORB
started from) with a fixed seed, so every extractor instance in every
process produces identical descriptors.
"""

from __future__ import annotations

import numpy as np

from ..errors import FeatureError

PATCH_RADIUS = 13
N_PAIRS = 256
N_ANGLE_BINS = 30  # 12-degree orientation quantisation, as in ORB.
_PATTERN_SEED = 0xB41EF


def sampling_pattern(
    n_pairs: int = N_PAIRS, patch_radius: int = PATCH_RADIUS, seed: int = _PATTERN_SEED
) -> np.ndarray:
    """Return the base pattern, shape ``(n_pairs, 2, 2)`` of (dy, dx).

    Coordinates are drawn from N(0, (patch_radius/2)^2) and clipped to the
    patch, per the BRIEF G-II construction.
    """
    if n_pairs < 1:
        raise FeatureError(f"n_pairs must be >= 1, got {n_pairs}")
    if patch_radius < 2:
        raise FeatureError(f"patch_radius must be >= 2, got {patch_radius}")
    rng = np.random.default_rng(seed)
    sigma = patch_radius / 2.0
    points = rng.normal(0.0, sigma, size=(n_pairs, 2, 2))
    return np.clip(points, -patch_radius, patch_radius)


def rotated_patterns(
    pattern: np.ndarray, n_bins: int = N_ANGLE_BINS
) -> np.ndarray:
    """Pre-rotate *pattern* for each orientation bin.

    Returns integer offsets of shape ``(n_bins, n_pairs, 2, 2)``; rounding
    to whole pixels after rotation matches ORB's lookup-table approach.
    """
    if n_bins < 1:
        raise FeatureError(f"n_bins must be >= 1, got {n_bins}")
    pattern = np.asarray(pattern, dtype=np.float64)
    angles = 2.0 * np.pi * np.arange(n_bins) / n_bins
    cos = np.cos(angles)[:, None, None]
    sin = np.sin(angles)[:, None, None]
    dy = pattern[None, :, :, 0]
    dx = pattern[None, :, :, 1]
    # Rotate (dx, dy) by the bin angle; image rows grow downward but the
    # convention only needs to be self-consistent with the orientation
    # assignment in keypoints.intensity_centroid_angles.
    rot_dx = dx * cos - dy * sin
    rot_dy = dx * sin + dy * cos
    out = np.stack([rot_dy, rot_dx], axis=-1)
    return np.rint(out).astype(np.int64)


def angle_bins(angles: np.ndarray, n_bins: int = N_ANGLE_BINS) -> np.ndarray:
    """Quantise angles (radians) to pattern-rotation bins."""
    frac = (np.asarray(angles, dtype=np.float64) / (2.0 * np.pi)) % 1.0
    return (np.rint(frac * n_bins).astype(np.int64)) % n_bins


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a boolean ``(n, 256)`` array into ``(n, 32)`` uint8 descriptors."""
    bits = np.asarray(bits, dtype=bool)
    if bits.ndim != 2 or bits.shape[1] % 8 != 0:
        raise FeatureError(f"bits must be (n, multiple-of-8), got {bits.shape}")
    return np.packbits(bits, axis=1)


def unpack_bits(packed: np.ndarray) -> np.ndarray:
    """Inverse of :func:`pack_bits`."""
    packed = np.asarray(packed, dtype=np.uint8)
    if packed.ndim != 2:
        raise FeatureError(f"packed descriptors must be 2-D, got {packed.ndim}-D")
    return np.unpackbits(packed, axis=1).astype(bool)
