"""PCA-SIFT (Ke & Sukthankar, CVPR 2004).

PCA-SIFT projects SIFT's 128-dimensional descriptors onto a compact
basis learnt offline — the paper (and SmartEye, which BEES compares
against) uses 36 dimensions.  The projection shrinks the feature payload
to ~25-28% of SIFT (Table I) but *adds* computation on top of SIFT
extraction, which is why SmartEye costs more energy than the ORB-based
schemes (Figures 7 and 11).

The basis here is learnt once per process from descriptors of a fixed,
seeded set of synthetic scenes — the offline-training step of the real
algorithm, made deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from ..errors import FeatureError
from ..imaging.image import Image
from .base import FeatureSet, traced_extract
from .sift import DESCRIPTOR_DIM, SiftExtractor

PCA_DIM = 36
_TRAIN_SCENES = 12
_TRAIN_SEED_BASE = 90_000


@lru_cache(maxsize=4)
def _trained_basis(dim: int) -> np.ndarray:
    """The (128, dim) PCA projection matrix, learnt from seeded scenes."""
    from ..imaging.synth import SceneGenerator  # local import: avoids cycle

    generator = SceneGenerator()
    extractor = SiftExtractor()
    rows = []
    for offset in range(_TRAIN_SCENES):
        image = generator.view(_TRAIN_SEED_BASE + offset, 0)
        rows.append(extractor.extract(image).descriptors)
    data = np.concatenate(rows, axis=0).astype(np.float64)
    if data.shape[0] < dim:
        raise FeatureError(
            f"not enough training descriptors ({data.shape[0]}) for a {dim}-d basis"
        )
    centred = data - data.mean(axis=0, keepdims=True)
    _, _, vt = np.linalg.svd(centred, full_matrices=False)
    return vt[:dim].T.copy()  # (128, dim)


@dataclass
class PcaSiftExtractor:
    """SIFT extraction followed by a learnt PCA projection to 36-d."""

    dim: int = PCA_DIM
    sift: SiftExtractor = field(default_factory=SiftExtractor)
    kind: str = field(default="pca-sift", init=False)

    def __post_init__(self) -> None:
        if not 1 <= self.dim <= DESCRIPTOR_DIM:
            raise FeatureError(f"dim must be in [1, {DESCRIPTOR_DIM}], got {self.dim}")

    @traced_extract
    def extract(self, image: Image) -> FeatureSet:
        """Extract PCA-SIFT features: SIFT then project."""
        base = self.sift.extract(image)
        basis = _trained_basis(self.dim)
        projected = (base.descriptors.astype(np.float64) @ basis).astype(np.float32)
        norms = np.linalg.norm(projected, axis=1, keepdims=True)
        projected = projected / np.maximum(norms, 1e-9)
        return FeatureSet(
            kind=self.kind,
            descriptors=projected,
            xs=base.xs,
            ys=base.ys,
            pixels_processed=base.pixels_processed,
            image_id=image.image_id,
        )
