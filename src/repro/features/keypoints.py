"""Keypoint detection: FAST-9 segment-test corners with Harris ranking.

This is the detector half of our ORB implementation (Rublee et al. 2011):
FAST finds candidate corners, the Harris measure scores them, non-maximum
suppression thins them, and the strongest ``max_keypoints`` survive —
mirroring OpenCV's ``ORB_create(nfeatures=...)`` behaviour that the BEES
prototype uses.

All stages are vectorised: the 16-pixel Bresenham circle is evaluated via
shifted views of the image, and the contiguous-arc test runs as boolean
reductions over rolled masks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import FeatureError
from ..imaging.filters import box_blur, local_maxima, sobel_gradients

#: Bresenham circle of radius 3 — the 16 FAST test offsets, clockwise
#: from 12 o'clock, as (dy, dx).
FAST_CIRCLE = (
    (-3, 0), (-3, 1), (-2, 2), (-1, 3), (0, 3), (1, 3), (2, 2), (3, 1),
    (3, 0), (3, -1), (2, -2), (1, -3), (0, -3), (-1, -3), (-2, -2), (-3, -1),
)

FAST_ARC_LENGTH = 9
FAST_BORDER = 3


@dataclass(frozen=True)
class Keypoints:
    """Detected keypoints: positions, responses, and patch orientations."""

    xs: np.ndarray  # (n,) float64 column coordinates
    ys: np.ndarray  # (n,) float64 row coordinates
    responses: np.ndarray  # (n,) float64 corner strengths
    angles: np.ndarray  # (n,) float64 radians; NaN until orientation is assigned

    def __len__(self) -> int:
        return int(self.xs.shape[0])

    @classmethod
    def empty(cls) -> "Keypoints":
        zero = np.zeros(0, dtype=np.float64)
        return cls(xs=zero, ys=zero.copy(), responses=zero.copy(), angles=zero.copy())


def _circle_views(plane: np.ndarray) -> np.ndarray:
    """Stack of the 16 circle-shifted interior views, shape (16, h', w')."""
    h, w = plane.shape
    b = FAST_BORDER
    views = [
        plane[b + dy : h - b + dy, b + dx : w - b + dx] for dy, dx in FAST_CIRCLE
    ]
    return np.stack(views, axis=0)


def _contiguous_arc(mask: np.ndarray, arc: int) -> np.ndarray:
    """True where *mask* (16, h, w) has >= *arc* consecutive circular Trues."""
    hit = np.zeros(mask.shape[1:], dtype=bool)
    for start in range(16):
        run = mask[start]
        for step in range(1, arc):
            run = run & mask[(start + step) % 16]
            if not run.any():
                break
        else:
            hit |= run
        if hit.all():
            break
    return hit


def fast_corner_mask(plane: np.ndarray, threshold: float) -> tuple[np.ndarray, np.ndarray]:
    """Run the FAST-9 segment test.

    Returns ``(mask, score)`` over the full plane; the border of 3 pixels
    is never a corner.  The score is the sum of absolute circle-to-centre
    differences beyond the threshold (the standard FAST score used for
    non-maximum suppression).
    """
    plane = np.asarray(plane, dtype=np.float64)
    if plane.ndim != 2:
        raise FeatureError(f"expected a 2-D plane, got {plane.ndim}-D")
    if threshold <= 0:
        raise FeatureError(f"FAST threshold must be positive, got {threshold}")
    h, w = plane.shape
    mask = np.zeros((h, w), dtype=bool)
    score = np.zeros((h, w), dtype=np.float64)
    if h <= 2 * FAST_BORDER or w <= 2 * FAST_BORDER:
        return mask, score

    b = FAST_BORDER
    centre = plane[b : h - b, b : w - b]
    circle = _circle_views(plane)
    brighter = circle > centre[None] + threshold
    darker = circle < centre[None] - threshold

    # Quick rejection: the compass points sit 4 apart on the circle, so
    # any 9-long contiguous arc covers at least 2 of them (an arc of 12
    # would cover 3 — the classic FAST-12 pretest uses 3-of-4).
    compass = [0, 4, 8, 12]
    bright_candidates = brighter[compass].sum(axis=0) >= 2
    dark_candidates = darker[compass].sum(axis=0) >= 2

    corner = np.zeros_like(centre, dtype=bool)
    if bright_candidates.any():
        corner |= _contiguous_arc(brighter & bright_candidates[None], FAST_ARC_LENGTH)
    if dark_candidates.any():
        corner |= _contiguous_arc(darker & dark_candidates[None], FAST_ARC_LENGTH)

    excess = np.abs(circle - centre[None]) - threshold
    inner_score = np.where(brighter | darker, excess, 0.0).sum(axis=0)

    mask[b : h - b, b : w - b] = corner
    score[b : h - b, b : w - b] = np.where(corner, inner_score, 0.0)
    return mask, score


def harris_response(plane: np.ndarray, k: float = 0.04, radius: int = 2) -> np.ndarray:
    """Harris corner response map (used to rank FAST candidates, as ORB does)."""
    gx, gy = sobel_gradients(np.asarray(plane, dtype=np.float64))
    sxx = box_blur(gx * gx, radius)
    syy = box_blur(gy * gy, radius)
    sxy = box_blur(gx * gy, radius)
    det = sxx * syy - sxy * sxy
    trace = sxx + syy
    return det - k * trace * trace


def intensity_centroid_angles(
    plane: np.ndarray, ys: np.ndarray, xs: np.ndarray, radius: int = 7
) -> np.ndarray:
    """Orientation by intensity centroid (the "o" in oFAST).

    The angle of each keypoint is ``atan2(m01, m10)`` of the circular
    patch moments around it.  Keypoints too close to the border get the
    orientation of their clipped patch, matching OpenCV's edge handling.
    """
    plane = np.asarray(plane, dtype=np.float64)
    if len(ys) == 0:
        return np.zeros(0, dtype=np.float64)
    padded = np.pad(plane, radius, mode="reflect")
    offsets = np.arange(-radius, radius + 1, dtype=np.float64)
    dy, dx = np.meshgrid(offsets, offsets, indexing="ij")
    disk = (dy * dy + dx * dx) <= radius * radius
    wy = np.where(disk, dy, 0.0)
    wx = np.where(disk, dx, 0.0)

    iy = np.rint(ys).astype(int) + radius
    ix = np.rint(xs).astype(int) + radius
    rows = iy[:, None, None] + np.arange(-radius, radius + 1)[None, :, None]
    cols = ix[:, None, None] + np.arange(-radius, radius + 1)[None, None, :]
    patches = padded[rows, cols]

    m01 = (patches * wy[None]).sum(axis=(1, 2))
    m10 = (patches * wx[None]).sum(axis=(1, 2))
    return np.arctan2(m01, m10)


def detect_fast(
    plane: np.ndarray,
    threshold: float = 18.0,
    max_keypoints: int = 500,
    nms_radius: int = 2,
    border: int = 0,
) -> Keypoints:
    """Detect FAST-9 corners, rank by Harris, keep the strongest.

    ``border`` excludes a margin (descriptor patches need room).
    """
    if max_keypoints < 1:
        raise FeatureError(f"max_keypoints must be >= 1, got {max_keypoints}")
    plane = np.asarray(plane, dtype=np.float64)
    mask, score = fast_corner_mask(plane, threshold)
    if border > 0:
        h, w = plane.shape
        if 2 * border >= min(h, w):
            return Keypoints.empty()
        edge = np.zeros_like(mask)
        edge[border : h - border, border : w - border] = True
        mask &= edge
    if not mask.any():
        return Keypoints.empty()

    mask &= local_maxima(np.where(mask, score, 0.0), radius=nms_radius)
    if not mask.any():
        return Keypoints.empty()

    ys, xs = np.nonzero(mask)
    harris = harris_response(plane)[ys, xs]
    order = np.argsort(-harris, kind="stable")[:max_keypoints]
    ys = ys[order].astype(np.float64)
    xs = xs[order].astype(np.float64)
    angles = intensity_centroid_angles(plane, ys, xs)
    return Keypoints(xs=xs, ys=ys, responses=harris[order], angles=angles)
