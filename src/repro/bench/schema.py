"""The ``BENCH_*.json`` artifact schema.

One artifact captures one ``repro bench run``: an environment block
(python/numpy/platform/git SHA), and per-case telemetry — wall time,
per-stage latency summaries (p50/p95/p99 from ``bees_stage_seconds``),
bytes sent, energy joules, elimination counts, and the case's own
summary dict.  Artifacts are versioned so the comparator can refuse to
diff across incompatible layouts, and validated on both write and read.
"""

from __future__ import annotations

import json
import pathlib
import platform
import subprocess
import sys

from .. import __version__
from ..errors import BenchError

#: Bump when the artifact layout changes incompatibly.
SCHEMA_VERSION = 1

#: Numeric per-case fields every artifact must carry.
_CASE_SCALARS = ("wall_seconds",)
#: Mapping-valued per-case fields every artifact must carry.
_CASE_MAPPINGS = ("stage_seconds", "bytes_sent", "energy_joules", "eliminations")
#: Keys every stage summary must carry.
_STAGE_KEYS = ("count", "sum", "mean", "p50", "p95", "p99")


def git_sha() -> "str | None":
    """The current git commit, or ``None`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except OSError:
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def environment_block() -> dict:
    """The reproducibility context stamped into every artifact."""
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dep in practice
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "numpy": numpy_version,
        "repro": __version__,
        "git_sha": git_sha(),
        "argv": list(sys.argv),
    }


def validate_artifact(artifact: object) -> dict:
    """Check *artifact* against the schema; returns it on success.

    Raises :class:`BenchError` naming the first offending path — the
    comparator and the CLI both call this before trusting a file.
    """
    if not isinstance(artifact, dict):
        raise BenchError(f"artifact must be a JSON object, got {type(artifact).__name__}")
    version = artifact.get("schema_version")
    if version != SCHEMA_VERSION:
        raise BenchError(
            f"unsupported artifact schema_version {version!r} "
            f"(this build reads version {SCHEMA_VERSION})"
        )
    for key in ("run_id", "env", "cases"):
        if key not in artifact:
            raise BenchError(f"artifact missing required key {key!r}")
    if not isinstance(artifact["env"], dict):
        raise BenchError("artifact 'env' must be an object")
    cases = artifact["cases"]
    if not isinstance(cases, dict):
        raise BenchError("artifact 'cases' must be an object keyed by case id")
    for case_id, case in cases.items():
        where = f"cases[{case_id!r}]"
        if not isinstance(case, dict):
            raise BenchError(f"{where} must be an object")
        for key in _CASE_SCALARS:
            if not isinstance(case.get(key), (int, float)):
                raise BenchError(f"{where}.{key} must be a number")
        for key in _CASE_MAPPINGS:
            if not isinstance(case.get(key), dict):
                raise BenchError(f"{where}.{key} must be an object")
        for series, summary in case["stage_seconds"].items():
            if not isinstance(summary, dict) or any(
                key not in summary for key in _STAGE_KEYS
            ):
                raise BenchError(
                    f"{where}.stage_seconds[{series!r}] must carry {_STAGE_KEYS}"
                )
    return artifact


def write_artifact(artifact: dict, path) -> pathlib.Path:
    """Validate and pretty-print *artifact* to *path*."""
    validate_artifact(artifact)
    path = pathlib.Path(path)
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    return path


def read_artifact(path) -> dict:
    """Load and validate one ``BENCH_*.json`` file."""
    path = pathlib.Path(path)
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        raise BenchError(f"no such artifact: {path}") from None
    except json.JSONDecodeError as exc:
        raise BenchError(f"{path} is not valid JSON: {exc}") from None
    return validate_artifact(data)
