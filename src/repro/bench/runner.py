"""Execute registered bench cases inside an observability context.

For each case the runner installs a fresh in-memory
:class:`~repro.obs.runtime.Observability` (tracer + the standard BEES
metric registry), opens a ``bench.<case_id>`` root span, runs the
case's ``run(params)``, and harvests:

* wall-clock seconds for the whole case,
* ``bees_stage_seconds`` p50/p95/p99 per ``scheme/stage`` series (via
  :meth:`repro.obs.metrics.Histogram.summary`),
* ``bees_bytes_sent_total`` and ``bees_energy_joules_total`` per scheme,
* ``bees_eliminations_total`` per ``scheme/kind``,
* the case's own JSON summary dict.

The harvest goes into a versioned ``BENCH_<runid>.json`` artifact
(:mod:`repro.bench.schema`) that the comparator diffs between commits.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from .. import obs as obs_module
from ..errors import BenchError
from .registry import BenchCase, load_cases
from .schema import SCHEMA_VERSION, environment_block, write_artifact


def _series_key(labels: dict) -> str:
    """``{"scheme": "BEES", "stage": "afe"}`` -> ``"BEES/afe"``.

    Values join in the metric's declared label order (the order
    ``labeled_values`` yields them in), so keys read scheme-first.
    """
    return "/".join(str(value) for value in labels.values())


def _harvest(obs) -> dict:
    """Pull the per-case metric block out of one observability context."""
    stage_seconds = {}
    for labels, _series in obs.stage_seconds.labeled_values():
        stage_seconds[_series_key(labels)] = obs.stage_seconds.summary(**labels)
    return {
        "stage_seconds": stage_seconds,
        "bytes_sent": {
            _series_key(labels): value
            for labels, value in obs.sent_bytes.labeled_values()
        },
        "energy_joules": {
            _series_key(labels): value
            for labels, value in obs.energy_joules.labeled_values()
        },
        "eliminations": {
            _series_key(labels): value
            for labels, value in obs.eliminations.labeled_values()
        },
        "spans": len(obs.tracer.finished),
    }


@dataclass(frozen=True)
class CaseRun:
    """Outcome of one executed case."""

    case: BenchCase
    block: dict  # the artifact's per-case JSON block


def run_case(case: BenchCase, quick: bool = False, params: "dict | None" = None) -> CaseRun:
    """Run one case under a fresh observability context.

    *params* overrides individual keys on top of the quick/full set.
    The global obs context is always restored to the disabled default,
    even when the case raises.
    """
    effective = case.parameters(quick=quick)
    effective.update(params or {})
    obs = obs_module.configure()  # in-memory tracer + metrics, enabled
    started = time.perf_counter()
    try:
        with obs.span("bench." + case.case_id, quick=quick, **{
            f"param_{key}": value for key, value in sorted(effective.items())
        }):
            result = case.run(effective)
        wall = time.perf_counter() - started  # beeslint: disable=raw-timing (the harness wall clock IS the artifact's wall_seconds)
    finally:
        obs_module.disable()
    if not isinstance(result, dict):
        raise BenchError(
            f"bench case {case.case_id!r} returned {type(result).__name__}, "
            "expected a JSON-able dict"
        )
    block = {
        "figure": case.figure,
        "description": case.description,
        "quick": bool(quick),
        "params": {key: effective[key] for key in sorted(effective)},
        "wall_seconds": wall,
        **_harvest(obs),
        "result": result,
    }
    return CaseRun(case=case, block=block)


def run_suite(
    case_ids: "list[str] | None" = None,
    quick: bool = False,
    params: "dict | None" = None,
    progress=None,
) -> dict:
    """Run the selected cases (default: all) and build one artifact.

    *progress*, when given, is called as ``progress(case_id, seconds)``
    after each case — the CLI uses it for live console feedback.
    """
    cases = load_cases(case_ids)
    run_id = time.strftime("%Y%m%d-%H%M%S")
    blocks = {}
    for case in cases:
        outcome = run_case(case, quick=quick, params=params)
        blocks[case.case_id] = outcome.block
        if progress is not None:
            progress(case.case_id, outcome.block["wall_seconds"])
    return {
        "schema_version": SCHEMA_VERSION,
        "run_id": run_id,
        "created_unix": time.time(),
        "quick": bool(quick),
        "env": environment_block(),
        "cases": blocks,
    }


def default_artifact_path(artifact: dict) -> str:
    """The conventional ``BENCH_<runid>.json`` filename for *artifact*."""
    return f"BENCH_{artifact['run_id']}.json"


def save_suite(artifact: dict, out=None) -> str:
    """Write *artifact* (to *out* or the conventional name); returns path."""
    path = out or default_artifact_path(artifact)
    write_artifact(artifact, path)
    return str(path)
