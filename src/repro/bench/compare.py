"""Diff two ``BENCH_*.json`` artifacts and flag regressions.

The comparator scores each case on three headline series — wall-clock
seconds, total bytes sent, and total energy joules — and flags a
regression when the candidate grows past a configurable relative
threshold over the baseline (default: 10%, the figure the paper's own
bandwidth/energy claims are an order of magnitude larger than).  Bytes
and joules are deterministic in this simulation, so any growth there is
a real behaviour change; wall time is hardware-noisy, which is why its
threshold is separate and why CI treats it as a warning first.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import BenchError
from .schema import read_artifact, validate_artifact

#: Relative growth beyond which a metric counts as regressed.
DEFAULT_THRESHOLDS = {"wall_seconds": 0.10, "bytes_sent": 0.10, "energy_joules": 0.10}

#: The exact-count series: identical inputs must reproduce them to the
#: byte and joule.  CI gates on these *blockingly* (``--deterministic``)
#: while wall time stays advisory.
DETERMINISTIC_METRICS = ("bytes_sent", "energy_joules")

#: Ignore absolute values below this when computing relative growth —
#: a 3-byte case doubling to 6 bytes is noise, not a regression.
MIN_BASELINE = {"wall_seconds": 0.05, "bytes_sent": 1024.0, "energy_joules": 0.5}


@dataclass(frozen=True)
class MetricDelta:
    """One metric of one case, in both artifacts."""

    metric: str
    baseline: float
    candidate: float
    regressed: bool

    @property
    def relative(self) -> float:
        """Relative growth (0.1 = +10%); ``inf`` for a zero baseline."""
        if self.baseline == 0:
            return math.inf if self.candidate > 0 else 0.0
        return self.candidate / self.baseline - 1.0


@dataclass
class CaseComparison:
    """All compared metrics of one case."""

    case_id: str
    deltas: "list[MetricDelta]" = field(default_factory=list)

    @property
    def regressed(self) -> bool:
        return any(delta.regressed for delta in self.deltas)


@dataclass
class ComparisonResult:
    """The full diff of two artifacts."""

    cases: "list[CaseComparison]" = field(default_factory=list)
    missing_in_candidate: "list[str]" = field(default_factory=list)
    added_in_candidate: "list[str]" = field(default_factory=list)

    @property
    def regressions(self) -> "list[CaseComparison]":
        return [case for case in self.cases if case.regressed]

    @property
    def ok(self) -> bool:
        """True when nothing regressed and no case disappeared."""
        return not self.regressions and not self.missing_in_candidate


def _case_totals(case_block: dict) -> dict:
    """The three headline series of one case block."""
    return {
        "wall_seconds": float(case_block["wall_seconds"]),
        "bytes_sent": float(sum(case_block["bytes_sent"].values())),
        "energy_joules": float(sum(case_block["energy_joules"].values())),
    }


def compare_artifacts(
    baseline: dict,
    candidate: dict,
    thresholds: "dict | None" = None,
    metrics: "tuple[str, ...] | None" = None,
) -> ComparisonResult:
    """Diff *candidate* against *baseline* (validated artifact dicts).

    *metrics*, when given, restricts the comparison to that subset of
    the headline series — ``DETERMINISTIC_METRICS`` is the blocking CI
    gate that ignores hardware-noisy wall time.
    """
    validate_artifact(baseline)
    validate_artifact(candidate)
    limits = dict(DEFAULT_THRESHOLDS)
    if metrics is not None:
        unknown = sorted(set(metrics) - set(limits))
        if unknown:
            raise BenchError(
                f"unknown comparison metrics {unknown}; choose from {sorted(limits)}"
            )
    for metric, value in (thresholds or {}).items():
        if metric not in limits:
            raise BenchError(
                f"unknown comparison metric {metric!r}; "
                f"choose from {sorted(limits)}"
            )
        limits[metric] = float(value)
    base_cases = baseline["cases"]
    cand_cases = candidate["cases"]
    result = ComparisonResult(
        missing_in_candidate=sorted(set(base_cases) - set(cand_cases)),
        added_in_candidate=sorted(set(cand_cases) - set(base_cases)),
    )
    for case_id in (key for key in base_cases if key in cand_cases):
        base_totals = _case_totals(base_cases[case_id])
        cand_totals = _case_totals(cand_cases[case_id])
        comparison = CaseComparison(case_id=case_id)
        for metric, base_value in base_totals.items():
            if metrics is not None and metric not in metrics:
                continue
            cand_value = cand_totals[metric]
            regressed = (
                base_value >= MIN_BASELINE[metric]
                and cand_value > base_value * (1.0 + limits[metric])
            )
            comparison.deltas.append(
                MetricDelta(
                    metric=metric,
                    baseline=base_value,
                    candidate=cand_value,
                    regressed=regressed,
                )
            )
        result.cases.append(comparison)
    return result


def compare_files(
    baseline_path,
    candidate_path,
    thresholds: "dict | None" = None,
    metrics: "tuple[str, ...] | None" = None,
) -> ComparisonResult:
    """:func:`compare_artifacts` over two artifact files."""
    return compare_artifacts(
        read_artifact(baseline_path),
        read_artifact(candidate_path),
        thresholds,
        metrics=metrics,
    )


def format_comparison(result: ComparisonResult) -> str:
    """Render the per-case delta table plus a verdict line."""
    from ..analysis.reporting import format_table  # lazy: avoids import cycle

    rows = []
    for case in result.cases:
        for delta in case.deltas:
            relative = delta.relative
            shown = "new" if math.isinf(relative) else f"{relative:+.1%}"
            rows.append(
                [
                    case.case_id,
                    delta.metric,
                    f"{delta.baseline:.4g}",
                    f"{delta.candidate:.4g}",
                    shown,
                    "REGRESSED" if delta.regressed else "ok",
                ]
            )
    lines = []
    if rows:
        lines.append(
            format_table(
                ["case", "metric", "baseline", "candidate", "delta", "verdict"], rows
            )
        )
    for case_id in result.missing_in_candidate:
        lines.append(f"MISSING: case {case_id!r} present in baseline only")
    for case_id in result.added_in_candidate:
        lines.append(f"new case {case_id!r} (candidate only, not compared)")
    verdict = (
        "no regressions"
        if result.ok
        else f"{len(result.regressions)} case(s) regressed"
        + (
            f", {len(result.missing_in_candidate)} missing"
            if result.missing_in_candidate
            else ""
        )
    )
    lines.append(verdict)
    return "\n".join(lines)
