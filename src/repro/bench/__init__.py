"""Benchmark telemetry harness: ``repro bench run|list|compare|report``.

The packages under :mod:`repro` implement the BEES pipeline; the scripts
under ``benchmarks/`` reproduce the paper's figures.  This package is
the bridge that turns those scripts into a regression-gated telemetry
suite:

* :mod:`repro.bench.registry` — one :class:`BenchCase` per
  ``bench_fig*`` / ``bench_table*`` / ``bench_ext*`` /
  ``bench_ablation*`` module, with full and ``--quick`` parameter sets;
* :mod:`repro.bench.runner` — executes cases inside a root span with
  the :mod:`repro.obs` metric registry active, harvesting wall time,
  per-stage latency quantiles, bytes, joules, and elimination counts;
* :mod:`repro.bench.schema` — the versioned ``BENCH_<runid>.json``
  artifact (env block, per-case metrics, git SHA);
* :mod:`repro.bench.compare` — diffs two artifacts and flags
  regressions beyond configurable thresholds.
"""

from .compare import (
    DEFAULT_THRESHOLDS,
    DETERMINISTIC_METRICS,
    CaseComparison,
    ComparisonResult,
    MetricDelta,
    compare_artifacts,
    compare_files,
    format_comparison,
)
from .registry import CASE_SPECS, BenchCase, case_ids, find_benchmarks_dir, load_cases
from .runner import CaseRun, default_artifact_path, run_case, run_suite, save_suite
from .schema import (
    SCHEMA_VERSION,
    environment_block,
    git_sha,
    read_artifact,
    validate_artifact,
    write_artifact,
)

__all__ = [
    "CASE_SPECS",
    "DEFAULT_THRESHOLDS",
    "DETERMINISTIC_METRICS",
    "SCHEMA_VERSION",
    "BenchCase",
    "CaseComparison",
    "CaseRun",
    "ComparisonResult",
    "MetricDelta",
    "case_ids",
    "compare_artifacts",
    "compare_files",
    "default_artifact_path",
    "environment_block",
    "find_benchmarks_dir",
    "format_comparison",
    "git_sha",
    "load_cases",
    "read_artifact",
    "run_case",
    "run_suite",
    "save_suite",
    "validate_artifact",
    "write_artifact",
]
