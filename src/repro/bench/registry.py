"""The benchmark-case registry.

Every figure/table/extension benchmark under ``benchmarks/`` is
registered here as a :class:`BenchCase`: a stable case id, the module
that implements it, and the module's ``run(params) -> dict`` entry
point with its full-scale ``PARAMS`` and reduced ``QUICK_PARAMS``.
The bench scripts stay plain pytest files (``pytest benchmarks/``
still works, figures and assertions included); the registry merely
imports their cores so ``repro bench run`` can execute the exact same
code programmatically, inside an observability context.

The ``benchmarks/`` directory is not an installed package — it lives at
the repository root next to ``src/``.  :func:`find_benchmarks_dir`
resolves it from (in order) the ``REPRO_BENCH_DIR`` environment
variable, the repository layout around this file, and the current
working directory.
"""

from __future__ import annotations

import importlib
import os
import pathlib
import sys
from dataclasses import dataclass, field

from ..errors import BenchError

#: (case_id, module, figure, headline metric[, entry prefix]) for every
#: shipped bench.  A module hosts one case by default (``run`` /
#: ``PARAMS`` / ``QUICK_PARAMS``); the optional fifth field registers a
#: *second* case out of the same module under prefixed names —
#: ``<prefix>_run`` / ``<PREFIX>_PARAMS`` / ``<PREFIX>_QUICK_PARAMS``.
CASE_SPECS: "tuple[tuple[str, ...], ...]" = (
    ("fig3_bitmap_compression", "bench_fig3_bitmap_compression",
     "Figure 3", "normalized precision & extraction energy vs. proportion"),
    ("fig4_similarity_distribution", "bench_fig4_similarity_distribution",
     "Figure 4", "TPR/FPR of Equation-2 detection vs. threshold"),
    ("fig5_compression_bandwidth", "bench_fig5_compression_bandwidth",
     "Figure 5", "bytes & SSIM vs. quality/resolution compression"),
    ("fig6_precision", "bench_fig6_precision",
     "Figure 6", "top-4 precision of SIFT/PCA-SIFT/BEES at Ebat levels"),
    ("fig7_energy_overhead", "bench_fig7_energy_overhead",
     "Figure 7", "energy (J) per scheme vs. cross-batch redundancy"),
    ("fig8_energy_adaptation", "bench_fig8_energy_adaptation",
     "Figure 8", "BEES energy breakdown vs. remaining energy"),
    ("fig9_battery_lifetime", "bench_fig9_battery_lifetime",
     "Figure 9", "battery lifetime per scheme"),
    ("fig10_bandwidth_overhead", "bench_fig10_bandwidth_overhead",
     "Figure 10", "bytes sent per scheme vs. cross-batch redundancy"),
    ("fig11_delay", "bench_fig11_delay",
     "Figure 11", "average upload delay per image vs. bitrate"),
    ("fig12_coverage", "bench_fig12_coverage",
     "Figure 12", "unique locations covered per scheme"),
    ("table1_space_overhead", "bench_table1_space_overhead",
     "Table I", "serialized feature bytes, normalized to SIFT"),
    ("ablation_eaas", "bench_ablation_eaas",
     "Ablation", "energy with each EAAS knob disabled"),
    ("ablation_ssmm_budget", "bench_ablation_ssmm_budget",
     "Ablation", "adaptive vs. fixed SSMM selection budgets"),
    ("ext_dtn_care", "bench_ext_dtn_care",
     "Extension", "distinct scenes delivered: CARE vs. FIFO dropping"),
    ("ext_index_comparison", "bench_ext_index_comparison",
     "Extension", "precision & latency: LSH vs. vocabulary tree"),
    ("ext_outage", "bench_ext_outage",
     "Extension", "delay & energy under outage bursts"),
    ("fleet_scaling", "bench_fleet_scaling",
     "Extension", "sharded concurrent fleet vs. sequential reference"),
    ("process_index_scaling", "bench_fleet_scaling",
     "Extension", "process-pool batch-query throughput vs. thread shards",
     "process_index"),
    ("kernels_microbench", "bench_kernels",
     "Extension", "repro.kernels speedups vs. frozen pre-kernel hot paths"),
    ("majority_vote", "bench_majority_vote",
     "Extension", "bit-plane replica voting kernel vs. per-byte reference"),
)


@dataclass(frozen=True)
class BenchCase:
    """One registered, programmatically-runnable benchmark."""

    case_id: str
    module: str
    figure: str
    description: str
    run: "object" = field(repr=False)  # Callable[[dict | None], dict]
    params: dict = field(default_factory=dict)
    quick_params: dict = field(default_factory=dict)

    def parameters(self, quick: bool = False) -> dict:
        """The effective parameter set for a run."""
        merged = dict(self.params)
        if quick:
            merged.update(self.quick_params)
        return merged


def find_benchmarks_dir() -> pathlib.Path:
    """Locate the repository's ``benchmarks/`` directory."""
    override = os.environ.get("REPRO_BENCH_DIR")
    candidates = []
    if override:
        candidates.append(pathlib.Path(override))
    # src/repro/bench/registry.py -> repo root is three levels above repro/.
    candidates.append(pathlib.Path(__file__).resolve().parents[3] / "benchmarks")
    candidates.append(pathlib.Path.cwd() / "benchmarks")
    for candidate in candidates:
        if (candidate / "common.py").is_file():
            return candidate
    raise BenchError(
        "cannot locate the benchmarks/ directory; run from a source checkout "
        "or set REPRO_BENCH_DIR (tried: "
        + ", ".join(str(c) for c in candidates)
        + ")"
    )


def _import_bench_module(bench_dir: pathlib.Path, module: str):
    """Import one ``bench_*`` module with ``benchmarks/`` importable.

    The scripts do ``from common import ...``, so the directory itself
    must be on ``sys.path`` — the same setup pytest gives them when it
    collects rootdir scripts.  The path entry is left in place for the
    process: removing it would break lazily-imported siblings.
    """
    entry = str(bench_dir)
    if entry not in sys.path:
        sys.path.insert(0, entry)
    try:
        return importlib.import_module(module)
    except ImportError as exc:
        raise BenchError(f"cannot import bench module {module!r}: {exc}") from exc


def load_cases(case_ids: "list[str] | None" = None) -> "list[BenchCase]":
    """Build :class:`BenchCase` objects for *case_ids* (default: all).

    Unknown ids raise :class:`BenchError` listing the valid ones; the
    returned cases preserve registry order regardless of request order.
    """
    known = {case_id for case_id, *_ in CASE_SPECS}
    if case_ids is not None:
        unknown = sorted(set(case_ids) - known)
        if unknown:
            raise BenchError(
                f"unknown bench case(s) {unknown}; choose from {sorted(known)}"
            )
    wanted = known if case_ids is None else set(case_ids)
    bench_dir = find_benchmarks_dir()
    cases = []
    for spec in CASE_SPECS:
        case_id, module, figure, description = spec[:4]
        if case_id not in wanted:
            continue
        prefix = spec[4] if len(spec) > 4 else None
        run_name = "run" if prefix is None else f"{prefix}_run"
        params_name = "PARAMS" if prefix is None else f"{prefix.upper()}_PARAMS"
        quick_name = (
            "QUICK_PARAMS"
            if prefix is None
            else f"{prefix.upper()}_QUICK_PARAMS"
        )
        mod = _import_bench_module(bench_dir, module)
        for attribute in (run_name, params_name, quick_name):
            if not hasattr(mod, attribute):
                raise BenchError(
                    f"bench module {module!r} lacks the required {attribute!r} "
                    "attribute — every registered case must expose "
                    f"{run_name}(params) -> dict plus "
                    f"{params_name} / {quick_name}"
                )
        cases.append(
            BenchCase(
                case_id=case_id,
                module=module,
                figure=figure,
                description=description,
                run=getattr(mod, run_name),
                params=dict(getattr(mod, params_name)),
                quick_params=dict(getattr(mod, quick_name)),
            )
        )
    return cases


def case_ids() -> "list[str]":
    """All registered case ids, in registry order (no imports needed)."""
    return [case_id for case_id, *_ in CASE_SPECS]
