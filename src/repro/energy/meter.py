"""Per-stage energy accounting.

Figure 8 breaks BEES' energy into feature extraction, feature upload and
image upload; the meter keeps that ledger.  Every charge flows through
``record`` so experiment drivers can snapshot/diff to attribute energy
to batches or stages.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..errors import EnergyError

#: The canonical ledger categories (free-form strings are allowed too).
FEATURE_EXTRACTION = "feature_extraction"
FEATURE_UPLOAD = "feature_upload"
IMAGE_UPLOAD = "image_upload"
COMPRESSION = "compression"
BASELINE = "baseline"


@dataclass
class EnergyMeter:
    """Accumulates joules by category."""

    ledger: Counter = field(default_factory=Counter)

    def record(self, category: str, joules: float) -> None:
        """Charge *joules* to *category*."""
        if joules < 0:
            raise EnergyError(f"cannot record negative energy ({joules} J)")
        if not category:
            raise EnergyError("category must be a non-empty string")
        self.ledger[category] += joules

    @property
    def total_joules(self) -> float:
        """Total joules recorded across all categories."""
        return float(sum(self.ledger.values()))

    def by_category(self) -> dict[str, float]:
        """A plain-dict copy of the ledger."""
        return dict(self.ledger)

    def get(self, category: str) -> float:
        """Joules recorded against *category* (0 if never charged)."""
        return float(self.ledger.get(category, 0.0))

    def snapshot(self) -> Counter:
        """An immutable-by-convention copy for later diffing."""
        return Counter(self.ledger)

    def since(self, snapshot: Counter) -> dict[str, float]:
        """Per-category joules recorded since *snapshot* was taken."""
        delta = {}
        for category, value in self.ledger.items():
            diff = value - snapshot.get(category, 0.0)
            if diff > 0:
                delta[category] = diff
        return delta

    def reset(self) -> None:
        """Clear the ledger."""
        self.ledger.clear()
