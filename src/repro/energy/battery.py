"""Battery model.

``Ebat`` throughout the paper is the *fraction* of remaining energy in
``[0, 1]``; every energy-aware adaptive policy (EAC, EDR, EAU) is a
linear function of it.  The battery here is a simple joule reservoir
with drain accounting; when it runs dry the device halts, which is how
the lifetime (Figure 9) and coverage (Figure 12) experiments end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import EnergyError


@dataclass
class Battery:
    """A joule reservoir with a remaining-energy fraction ``Ebat``."""

    capacity_joules: float
    remaining_joules: float = field(default=-1.0)

    def __post_init__(self) -> None:
        if self.capacity_joules <= 0:
            raise EnergyError(f"capacity must be positive, got {self.capacity_joules}")
        if self.remaining_joules < 0:
            self.remaining_joules = self.capacity_joules
        if self.remaining_joules > self.capacity_joules:
            raise EnergyError(
                f"remaining {self.remaining_joules} J exceeds capacity {self.capacity_joules} J"
            )

    @property
    def ebat(self) -> float:
        """The remaining-energy fraction the EAAS policies consume."""
        return self.remaining_joules / self.capacity_joules

    @property
    def is_empty(self) -> bool:
        """True when no usable energy remains."""
        return self.remaining_joules <= 0.0

    def drain(self, joules: float) -> float:
        """Consume *joules*; returns the amount actually drained.

        Draining an empty battery is a no-op (returns 0); a drain larger
        than the remaining charge empties the battery and returns the
        remainder, so accounting always balances.
        """
        if joules < 0:
            raise EnergyError(f"cannot drain a negative amount ({joules} J)")
        drained = min(joules, self.remaining_joules)
        self.remaining_joules -= drained
        return drained

    def can_supply(self, joules: float) -> bool:
        """Whether the battery currently holds at least *joules*."""
        if joules < 0:
            raise EnergyError(f"cannot query a negative amount ({joules} J)")
        return self.remaining_joules >= joules

    def recharge(self, fraction: float = 1.0) -> None:
        """Set the charge to *fraction* of capacity (tests and setups)."""
        if not 0.0 <= fraction <= 1.0:
            raise EnergyError(f"fraction must be in [0, 1], got {fraction}")
        self.remaining_joules = self.capacity_joules * fraction
