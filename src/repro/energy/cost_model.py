"""The energy/time cost model.

Work is charged against the *nominal* photographic resolution of an
image (a ~2 MP, ~700 KB photo), not against the small synthetic bitmap
the algorithms actually run on — the synthetic bitmap is a stand-in for
the photo's content, while energy and delay must stay paper-scale.

Both time and energy derive from the same processing rates, so every
speed relationship the paper states (ORB two orders faster than SIFT;
PCA-SIFT slower than SIFT) shows up consistently in the delay *and*
energy figures.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import EnergyError
from .profiles import DEFAULT_PROFILE, DeviceProfile


@dataclass(frozen=True)
class WorkCost:
    """The outcome of a charged operation."""

    seconds: float
    joules: float

    def __add__(self, other: "WorkCost") -> "WorkCost":
        return WorkCost(self.seconds + other.seconds, self.joules + other.joules)


ZERO_COST = WorkCost(0.0, 0.0)


@dataclass(frozen=True)
class EnergyCostModel:
    """Computes the time/energy of CPU and radio operations."""

    profile: DeviceProfile = DEFAULT_PROFILE

    def extraction_cost(
        self, kind: str, nominal_pixels: int, compression_proportion: float = 0.0
    ) -> WorkCost:
        """Cost of extracting *kind* features from an image.

        AFE's bitmap compression shrinks each dimension by
        ``1 - proportion``, so the processed pixel count — and with it
        time and energy — scales by ``(1 - proportion)^2`` (the
        relationship measured in Figure 3(b)).
        """
        if nominal_pixels < 0:
            raise EnergyError(f"nominal_pixels must be >= 0, got {nominal_pixels}")
        if not 0.0 <= compression_proportion <= 1.0:
            raise EnergyError(
                f"compression proportion must be in [0, 1], got {compression_proportion}"
            )
        scale = (1.0 - compression_proportion) ** 2
        seconds = nominal_pixels * scale / self.profile.rate_for(kind)
        return WorkCost(seconds, seconds * self.profile.cpu_power_w)

    def compression_cost(self, nominal_pixels: int) -> WorkCost:
        """Cost of one codec pass (JPEG encode or resample) over an image."""
        if nominal_pixels < 0:
            raise EnergyError(f"nominal_pixels must be >= 0, got {nominal_pixels}")
        seconds = nominal_pixels / self.profile.compression_rate
        return WorkCost(seconds, seconds * self.profile.cpu_power_w)

    def transfer_cost(self, seconds: float) -> WorkCost:
        """Radio cost of a transfer that took *seconds* on the uplink."""
        if seconds < 0:
            raise EnergyError(f"transfer seconds must be >= 0, got {seconds}")
        return WorkCost(seconds, seconds * self.profile.radio_power_w)

    def baseline_cost(self, seconds: float) -> WorkCost:
        """System draw (screen, OS) over a wall-clock interval."""
        if seconds < 0:
            raise EnergyError(f"baseline seconds must be >= 0, got {seconds}")
        return WorkCost(seconds, seconds * self.profile.baseline_power_w)
