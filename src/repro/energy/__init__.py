"""Energy substrate: device profiles, battery, cost model, accounting."""

from .battery import Battery
from .cost_model import ZERO_COST, EnergyCostModel, WorkCost
from .meter import (
    BASELINE,
    COMPRESSION,
    FEATURE_EXTRACTION,
    FEATURE_UPLOAD,
    IMAGE_UPLOAD,
    EnergyMeter,
)
from .profiles import DEFAULT_PROFILE, HELIO_X10_BATTERY_JOULES, DeviceProfile

__all__ = [
    "BASELINE",
    "COMPRESSION",
    "DEFAULT_PROFILE",
    "FEATURE_EXTRACTION",
    "FEATURE_UPLOAD",
    "HELIO_X10_BATTERY_JOULES",
    "IMAGE_UPLOAD",
    "Battery",
    "DeviceProfile",
    "EnergyCostModel",
    "EnergyMeter",
    "WorkCost",
    "ZERO_COST",
]
