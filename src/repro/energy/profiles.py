"""Device energy/performance profiles.

The paper's testbed phone carries a Helio X10 8-core CPU and a
3150 mAh / 3.8 V battery (Section IV-A).  A profile captures everything
the simulation charges energy or time against:

* the battery capacity in joules (3150 mAh x 3.8 V x 3.6 = 43,092 J),
* CPU processing *rates* per feature algorithm (pixels/second) — time
  and energy both derive from these, so the ORB-vs-SIFT speed gap the
  paper cites ("about two orders faster") directly produces the energy
  and delay gaps of Figures 7 and 11,
* radio power while transmitting (WiFi TX on a phone is ~1.5-2 W),
* a baseline system draw (screen on, OS services — the paper keeps the
  screen bright during the lifetime experiment of Figure 9).

Calibration: a 700 KB direct upload at the emulated 256 Kbps uplink
takes ~22 s and ~38 J; SIFT extraction of a 2 MP photo costs ~15% of
that; ORB two orders less.  These ratios — not the absolute joules —
determine every figure's shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import EnergyError

#: 3150 mAh * 3.8 V * 3.6 J/mWh.
HELIO_X10_BATTERY_JOULES = 3150 * 3.8 * 3.6


@dataclass(frozen=True)
class DeviceProfile:
    """Energy and performance constants of one smartphone model."""

    name: str = "helio-x10-phone"
    battery_capacity_joules: float = HELIO_X10_BATTERY_JOULES
    #: Pixels/second each extractor processes (drives time AND energy).
    extraction_rate: dict = field(
        default_factory=lambda: {
            "orb": 6.0e7,
            "sift": 8.7e5,
            "pca-sift": 7.5e5,  # SIFT plus the projection: slower than SIFT
        }
    )
    #: Pixels/second for image codecs (AIU's JPEG encode / resize).
    compression_rate: float = 2.5e7
    #: Active CPU power while crunching pixels (W).
    cpu_power_w: float = 2.5
    #: Radio power while a transfer is in flight (W).
    radio_power_w: float = 1.7
    #: Screen + OS draw during the experiment (W); the lifetime
    #: experiment keeps the screen always bright.
    baseline_power_w: float = 0.57

    def __post_init__(self) -> None:
        if self.battery_capacity_joules <= 0:
            raise EnergyError(
                f"battery capacity must be positive, got {self.battery_capacity_joules}"
            )
        for kind, rate in self.extraction_rate.items():
            if rate <= 0:
                raise EnergyError(f"extraction rate for {kind!r} must be positive")
        if min(self.compression_rate, self.cpu_power_w, self.radio_power_w) <= 0:
            raise EnergyError("rates and powers must be positive")
        if self.baseline_power_w < 0:
            raise EnergyError("baseline power must be non-negative")

    def rate_for(self, kind: str) -> float:
        """Extraction rate for a feature algorithm."""
        try:
            return self.extraction_rate[kind]
        except KeyError:
            raise EnergyError(f"no extraction rate for feature kind {kind!r}") from None


#: The default profile used across the evaluation.
DEFAULT_PROFILE = DeviceProfile()
