"""Command-line interface: ``python -m repro <command>``.

Six subcommands drive the main experiments without writing code:

* ``compare``  — one controlled batch through every scheme (Fig. 7/10/11)
* ``lifetime`` — the battery drain race (Fig. 9)
* ``coverage`` — the multi-phone city-coverage run (Fig. 12)
* ``share``    — run a scheme over a folder of real PPM/PGM photos
* ``metrics``  — render a captured Prometheus metrics file as a table
* ``info``     — versions, device profile, policies, observability

``compare``, ``lifetime``, and ``coverage`` accept ``--trace PATH``
(JSONL span log) and ``--metrics PATH`` (Prometheus text exposition),
which switch the :mod:`repro.obs` layer on for the run.
"""

from __future__ import annotations

import argparse
import contextlib
import sys

from . import obs as obs_module
from . import __version__
from .analysis.charts import bar_chart, sparkline
from .analysis.reporting import format_bytes, format_table
from .baselines import DirectUpload, Mrc, PhotoNet, SmartEye, make_bees_ea
from .core.client import BeesScheme
from .core.policies import eac_policy, eau_policy, edr_policy
from .datasets import DisasterDataset, SyntheticParis
from .datasets.folder import FolderDataset
from .energy.profiles import DEFAULT_PROFILE
from .imaging.synth import SceneGenerator
from .sim.coveragesim import CoverageExperiment
from .sim.device import Smartphone
from .sim.lifetime import LifetimeExperiment
from .sim.session import build_server

_SCHEME_FACTORIES = {
    "direct": DirectUpload,
    "smarteye": SmartEye,
    "mrc": Mrc,
    "photonet": PhotoNet,
    "bees-ea": make_bees_ea,
    "bees": BeesScheme,
}


def _schemes(names: "list[str]"):
    try:
        return [_SCHEME_FACTORIES[name]() for name in names]
    except KeyError as exc:
        raise SystemExit(
            f"unknown scheme {exc.args[0]!r}; choose from {sorted(_SCHEME_FACTORIES)}"
        ) from None


def _fast_generator() -> SceneGenerator:
    return SceneGenerator(height=72, width=96)


@contextlib.contextmanager
def _observability(args: argparse.Namespace):
    """Enable tracing/metrics for one command when flags ask for it.

    Configures the global :mod:`repro.obs` context before the run,
    flushes the export files afterwards, and always resets to the
    disabled default so back-to-back ``main()`` calls stay independent.
    """
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    if trace_path is None and metrics_path is None:
        yield obs_module.get_obs()
        return
    obs = obs_module.configure(trace_path=trace_path, metrics_path=metrics_path)
    try:
        yield obs
        for path in obs.flush():
            print(f"\nwrote {path}")
    finally:
        obs_module.disable()


def _add_obs_flags(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a JSONL span trace of the run to PATH",
    )
    subparser.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="write Prometheus-format metrics of the run to PATH",
    )


# -- subcommands -------------------------------------------------------------


def cmd_compare(args: argparse.Namespace) -> int:
    """Run one controlled batch through the selected schemes."""
    data = DisasterDataset()
    batch = data.make_batch(
        n_images=args.images, n_inbatch_similar=args.in_batch, seed=args.seed
    )
    partners = data.cross_batch_partners(batch, args.redundancy, seed=args.seed + 1)
    rows = []
    energies = []
    with _observability(args):
        for scheme in _schemes(args.schemes):
            server = build_server(scheme, partners)
            report = scheme.process_batch(Smartphone(), server, batch)
            rows.append(
                [
                    scheme.name,
                    report.n_uploaded,
                    len(report.eliminated_cross_batch),
                    len(report.eliminated_in_batch),
                    f"{report.total_energy_j:.0f} J",
                    format_bytes(report.bytes_sent),
                    f"{report.average_image_seconds:.1f} s",
                ]
            )
            energies.append((scheme.name, report.total_energy_j))
        print(
            f"batch: {args.images} images, {args.in_batch} in-batch duplicates, "
            f"{int(args.redundancy * 100)}% cross-batch redundancy\n"
        )
        print(
            format_table(
                ["scheme", "uploaded", "x-batch", "in-batch", "energy", "bandwidth",
                 "delay"],
                rows,
            )
        )
        print("\nenergy:")
        print(bar_chart(energies))
    return 0


def cmd_lifetime(args: argparse.Namespace) -> int:
    """Race the selected schemes to battery exhaustion (Fig. 9)."""
    experiment = LifetimeExperiment(
        group_size=args.group_size,
        interval_s=args.interval_minutes * 60.0,
        redundancy_ratio=args.redundancy,
        capacity_fraction=args.capacity,
        max_groups=args.max_groups,
        generator=_fast_generator(),
    )
    print(
        f"{args.group_size}-image groups every {args.interval_minutes:g} min, "
        f"{int(args.redundancy * 100)}% redundancy, "
        f"{args.capacity:.0%} of a {DEFAULT_PROFILE.battery_capacity_j:.0f} J battery\n"
    )
    with _observability(args):
        for scheme in _schemes(args.schemes):
            result = experiment.run(scheme)
            trace = [point.ebat for point in result.trace]
            print(f"{result.scheme:14s} {sparkline(trace, lo=0.0, hi=1.0)}")
            print(
                f"{'':14s} {result.lifetime_minutes:.0f} min, "
                f"{result.groups_completed} groups, "
                f"{result.images_uploaded} images"
            )
    return 0


def cmd_coverage(args: argparse.Namespace) -> int:
    """Run the multi-phone coverage experiment (Fig. 12)."""
    dataset = SyntheticParis(
        n_images=args.images,
        n_locations=args.locations,
        seed=args.seed,
        generator=_fast_generator(),
    )
    experiment = CoverageExperiment(
        dataset=dataset,
        n_phones=args.phones,
        group_size=args.group_size,
        interval_s=300.0,
        capacity_fraction=args.capacity,
    )
    print(
        f"{args.images} geotagged images over {args.locations} locations, "
        f"{args.phones} phones\n"
    )
    rows = []
    with _observability(args):
        for scheme in _schemes(args.schemes):
            result = experiment.run(scheme)
            rows.append(
                [
                    result.scheme,
                    result.images_uploaded,
                    result.locations_covered,
                    f"{result.locations_per_image:.3f}",
                ]
            )
        print(
            format_table(["scheme", "uploaded", "unique locations", "loc/image"], rows)
        )
    return 0


def cmd_share(args: argparse.Namespace) -> int:
    """Share a folder of real PPM/PGM photos through one scheme."""
    dataset = FolderDataset(args.folder)
    batch = list(dataset)
    scheme = _schemes([args.scheme])[0]
    device = Smartphone()
    device.battery.recharge(args.battery)
    server = build_server(scheme)
    report = scheme.process_batch(device, server, batch)
    print(f"folder: {dataset.root} ({len(batch)} images, "
          f"{len(dataset.groups())} scenes by name)\n")
    print(f"scheme:            {scheme.name} (battery at {args.battery:.0%})")
    print(f"uploaded:          {report.n_uploaded}")
    print(f"in-batch redundant: {len(report.eliminated_in_batch)} "
          f"{sorted(report.eliminated_in_batch)}")
    print(f"cross-batch redundant: {len(report.eliminated_cross_batch)}")
    print(f"bytes sent:        {format_bytes(report.bytes_sent)}")
    print(f"energy:            {report.total_energy_j:.1f} J")
    print(f"avg delay/image:   {report.average_image_seconds:.2f} s")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Render a captured Prometheus metrics file as a console table."""
    print(obs_module.render_metrics_file(args.path))
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    """Print version, device profile, EAAS policies, and observability."""
    profile = DEFAULT_PROFILE
    print(f"repro {__version__} — BEES (ICDCS 2017) reproduction")
    print(f"\ndevice profile: {profile.name}")
    print(f"  battery        {profile.battery_capacity_j:.0f} J")
    print(f"  cpu power      {profile.cpu_power_w} W")
    print(f"  radio power    {profile.radio_power_w} W")
    print(f"  baseline draw  {profile.baseline_power_w} W")
    print("\nEAAS policies (Ebat = 1.0 / 0.5 / 0.0):")
    for name, policy in (
        ("EAC bitmap compression C", eac_policy()),
        ("EDR similarity threshold T", edr_policy()),
        ("EAU resolution compression Cr", eau_policy()),
    ):
        values = "  ".join(f"{policy(e):.3f}" for e in (1.0, 0.5, 0.0))
        print(f"  {name:30s} {values}")
    obs = obs_module.get_obs()
    exporters = obs.exporters()
    print("\nobservability:")
    print(f"  enabled        {obs.enabled}")
    print(f"  exporters      {', '.join(exporters) if exporters else '(none)'}")
    print(f"  metrics        {len(obs.registry)} registered")
    buckets = ", ".join(f"{b:g}" for b in obs.stage_buckets)
    print(f"  stage buckets  {buckets} s")
    print(f"\nschemes: {', '.join(sorted(_SCHEME_FACTORIES))}")
    return 0


# -- parser -------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree of the `repro` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BEES: bandwidth- and energy-efficient image sharing (reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    commands = parser.add_subparsers(dest="command", required=True)

    compare = commands.add_parser("compare", help="one batch through every scheme")
    compare.add_argument("--images", type=int, default=30)
    compare.add_argument("--in-batch", type=int, default=4)
    compare.add_argument("--redundancy", type=float, default=0.25)
    compare.add_argument("--seed", type=int, default=1)
    compare.add_argument(
        "--schemes", nargs="+", default=["direct", "smarteye", "mrc", "bees"]
    )
    _add_obs_flags(compare)
    compare.set_defaults(handler=cmd_compare)

    lifetime = commands.add_parser("lifetime", help="battery drain race (Fig. 9)")
    lifetime.add_argument("--group-size", type=int, default=10)
    lifetime.add_argument("--interval-minutes", type=float, default=5.0)
    lifetime.add_argument("--redundancy", type=float, default=0.5)
    lifetime.add_argument("--capacity", type=float, default=0.1)
    lifetime.add_argument("--max-groups", type=int, default=100)
    lifetime.add_argument(
        "--schemes", nargs="+", default=["direct", "mrc", "bees-ea", "bees"]
    )
    _add_obs_flags(lifetime)
    lifetime.set_defaults(handler=cmd_lifetime)

    coverage = commands.add_parser("coverage", help="city coverage (Fig. 12)")
    coverage.add_argument("--images", type=int, default=400)
    coverage.add_argument("--locations", type=int, default=120)
    coverage.add_argument("--phones", type=int, default=3)
    coverage.add_argument("--group-size", type=int, default=12)
    coverage.add_argument("--capacity", type=float, default=0.015)
    coverage.add_argument("--seed", type=int, default=9)
    coverage.add_argument("--schemes", nargs="+", default=["direct", "bees"])
    _add_obs_flags(coverage)
    coverage.set_defaults(handler=cmd_coverage)

    share = commands.add_parser(
        "share", help="run a scheme over a folder of PPM/PGM photos"
    )
    share.add_argument("folder", help="directory of .ppm/.pgm files")
    share.add_argument("--scheme", default="bees")
    share.add_argument(
        "--battery", type=float, default=1.0, help="starting charge fraction"
    )
    share.set_defaults(handler=cmd_share)

    metrics = commands.add_parser(
        "metrics", help="render a captured Prometheus metrics file"
    )
    metrics.add_argument("path", help="a file written by --metrics PATH")
    metrics.set_defaults(handler=cmd_metrics)

    info = commands.add_parser("info", help="profile, policies, observability")
    info.set_defaults(handler=cmd_info)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
