"""Command-line interface: ``python -m repro <command>``.

Twelve subcommands drive the main experiments without writing code:

* ``compare``  — one controlled batch through every scheme (Fig. 7/10/11)
* ``lifetime`` — the battery drain race (Fig. 9)
* ``coverage`` — the multi-phone city-coverage run (Fig. 12)
* ``fleet``    — the concurrent multi-device fleet simulation
* ``share``    — run a scheme over a folder of real PPM/PGM photos
* ``bench``    — the benchmark telemetry harness (run/list/compare/report)
* ``slo``      — check SLO specs against bench artifacts (exit 1 on burn)
* ``top``      — live fleet dashboard (terminal frames + HTML snapshot)
* ``journal``  — the decision journal (explain/diff/replay/stats)
* ``lint``     — the beeslint static-analysis suite over the repo
* ``metrics``  — render a captured Prometheus metrics file as a table
* ``info``     — versions, device profile, policies, observability

``compare``, ``lifetime``, ``coverage``, and ``fleet run`` accept
``--trace PATH`` (JSONL span log), ``--metrics PATH`` (Prometheus text
exposition), and ``--profile PATH`` (a folded-stack CPU profile with
samples attributed to BEES stage spans), any of which switch the
:mod:`repro.obs` layer on for the run.  ``bench run --profile`` covers
the bench suite the same way.  ``fleet run --journal PATH`` and
``top --journal PATH`` additionally record the decision-provenance
journal (:mod:`repro.obs.journal`) that the ``journal`` subcommands
read back.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys

from . import bench as bench_module
from . import obs as obs_module
from . import __version__
from .errors import BenchError, NetworkError, SimulationError
from .analysis.charts import bar_chart, sparkline
from .analysis.reporting import format_bytes, format_table
from .core.policies import eac_policy, eau_policy, edr_policy
from .datasets import DisasterDataset, SyntheticParis
from .datasets.folder import FolderDataset
from .energy.profiles import DEFAULT_PROFILE
from .imaging.synth import SceneGenerator
from .schemes import make_scheme, scheme_names
from .sim.coveragesim import CoverageExperiment
from .sim.device import Smartphone
from .sim.lifetime import LifetimeExperiment
from .sim.session import build_server


def _schemes(names: "list[str]"):
    try:
        return [make_scheme(name) for name in names]
    except SimulationError as exc:
        raise SystemExit(str(exc)) from None


def _fast_generator() -> SceneGenerator:
    return SceneGenerator(height=72, width=96)


@contextlib.contextmanager
def _profiler(args: argparse.Namespace):
    """Run a sampling profiler around a block when ``--profile`` asks.

    Yields the profiler (or ``None``); on clean exit writes the
    folded-stack file and prints the session stats.
    """
    profile_path = getattr(args, "profile", None)
    if profile_path is None:
        yield None
        return
    from .obs.profiling import GLOBAL_TRACER, SamplingProfiler

    profiler = SamplingProfiler(
        tracer=GLOBAL_TRACER, hz=getattr(args, "profile_hz", 97.0)
    )
    profiler.start()
    try:
        yield profiler
        stats = profiler.stop()
        lines = profiler.write_folded(profile_path)
        print(
            f"\nwrote {profile_path} ({lines} stacks, {stats.n_samples} samples "
            f"at ~{stats.effective_hz:.0f} Hz over {stats.wall_seconds:.2f} s)"
        )
    finally:
        if profiler.running:
            profiler.stop()


@contextlib.contextmanager
def _observability(args: argparse.Namespace):
    """Enable tracing/metrics/profiling for one command when flags ask.

    Configures the global :mod:`repro.obs` context before the run,
    flushes the export files afterwards, and always resets to the
    disabled default so back-to-back ``main()`` calls stay independent.
    ``--profile`` implies an enabled (in-memory) context — the profiler
    needs the tracer's active-span table for stage attribution.
    """
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    if trace_path is None and metrics_path is None and getattr(args, "profile", None) is None:
        yield obs_module.get_obs()
        return
    obs = obs_module.configure(trace_path=trace_path, metrics_path=metrics_path)
    try:
        with _profiler(args):
            yield obs
        for path in obs.flush():
            print(f"\nwrote {path}")
    finally:
        obs_module.disable()


def _add_obs_flags(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a JSONL span trace of the run to PATH",
    )
    subparser.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="write Prometheus-format metrics of the run to PATH",
    )
    _add_profile_flags(subparser)


def _add_profile_flags(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--profile", metavar="PATH", default=None,
        help="sample the run with the span-attributing profiler and "
        "write folded stacks (flamegraph input) to PATH",
    )
    subparser.add_argument(
        "--profile-hz", type=float, default=97.0, metavar="HZ",
        help="profiler sampling rate (default 97 Hz)",
    )


# -- subcommands -------------------------------------------------------------


def cmd_compare(args: argparse.Namespace) -> int:
    """Run one controlled batch through the selected schemes."""
    data = DisasterDataset()
    batch = data.make_batch(
        n_images=args.images, n_inbatch_similar=args.in_batch, seed=args.seed
    )
    partners = data.cross_batch_partners(batch, args.redundancy, seed=args.seed + 1)
    rows = []
    energies = []
    with _observability(args):
        for scheme in _schemes(args.schemes):
            server = build_server(scheme, partners)
            report = scheme.process_batch(Smartphone(), server, batch)
            rows.append(
                [
                    scheme.name,
                    report.n_uploaded,
                    len(report.eliminated_cross_batch),
                    len(report.eliminated_in_batch),
                    f"{report.total_energy_joules:.0f} J",
                    format_bytes(report.sent_bytes),
                    f"{report.average_image_seconds:.1f} s",
                ]
            )
            energies.append((scheme.name, report.total_energy_joules))
        print(
            f"batch: {args.images} images, {args.in_batch} in-batch duplicates, "
            f"{int(args.redundancy * 100)}% cross-batch redundancy\n"
        )
        print(
            format_table(
                ["scheme", "uploaded", "x-batch", "in-batch", "energy", "bandwidth",
                 "delay"],
                rows,
            )
        )
        print("\nenergy:")
        print(bar_chart(energies))
    return 0


def cmd_lifetime(args: argparse.Namespace) -> int:
    """Race the selected schemes to battery exhaustion (Fig. 9)."""
    experiment = LifetimeExperiment(
        group_size=args.group_size,
        interval_seconds=args.interval_minutes * 60.0,
        redundancy_ratio=args.redundancy,
        capacity_fraction=args.capacity,
        max_groups=args.max_groups,
        generator=_fast_generator(),
    )
    print(
        f"{args.group_size}-image groups every {args.interval_minutes:g} min, "
        f"{int(args.redundancy * 100)}% redundancy, "
        f"{args.capacity:.0%} of a {DEFAULT_PROFILE.battery_capacity_joules:.0f} J battery\n"
    )
    with _observability(args):
        for scheme in _schemes(args.schemes):
            result = experiment.run(scheme)
            trace = [point.ebat for point in result.trace]
            print(f"{result.scheme:14s} {sparkline(trace, lo=0.0, hi=1.0)}")
            print(
                f"{'':14s} {result.lifetime_minutes:.0f} min, "
                f"{result.groups_completed} groups, "
                f"{result.images_uploaded} images"
            )
    return 0


def cmd_coverage(args: argparse.Namespace) -> int:
    """Run the multi-phone coverage experiment (Fig. 12)."""
    dataset = SyntheticParis(
        n_images=args.images,
        n_locations=args.locations,
        seed=args.seed,
        generator=_fast_generator(),
    )
    experiment = CoverageExperiment(
        dataset=dataset,
        n_phones=args.phones,
        group_size=args.group_size,
        interval_seconds=300.0,
        capacity_fraction=args.capacity,
    )
    print(
        f"{args.images} geotagged images over {args.locations} locations, "
        f"{args.phones} phones\n"
    )
    rows = []
    with _observability(args):
        for scheme in _schemes(args.schemes):
            result = experiment.run(scheme)
            rows.append(
                [
                    result.scheme,
                    result.images_uploaded,
                    result.locations_covered,
                    f"{result.locations_per_image:.3f}",
                ]
            )
        print(
            format_table(["scheme", "uploaded", "unique locations", "loc/image"], rows)
        )
    return 0


def _journal_context(path: "str | None"):
    """``journal_to(path)`` when a path was given, else a no-op block."""
    if path is None:
        return contextlib.nullcontext(None)
    return obs_module.journal_to(path)


def _degraded_net(args: argparse.Namespace):
    """The ``DegradedNetConfig`` the fleet flags describe, or ``None``."""
    from .network import DegradedNetConfig  # lazy: keeps startup lean

    degraded_flags = (
        args.ber, args.chunk_drop, args.chunk_bytes, args.replicas,
        args.contact_period, args.contact_up,
    )
    if all(flag is None for flag in degraded_flags):
        return None
    keywords: "dict[str, object]" = {
        "bit_error_rate": args.ber if args.ber is not None else 0.0,
        "chunk_drop_rate": args.chunk_drop if args.chunk_drop is not None else 0.0,
        "strategy": args.transport,
        "contact_period_seconds": args.contact_period,
        "contact_up_seconds": args.contact_up,
    }
    if args.chunk_bytes is not None:
        keywords["chunk_bytes"] = args.chunk_bytes
    if args.replicas is not None:
        keywords["replicas"] = args.replicas
    try:
        return DegradedNetConfig(**keywords)  # type: ignore[arg-type]
    except NetworkError as exc:
        raise SystemExit(str(exc)) from None


def cmd_fleet_run(args: argparse.Namespace) -> int:
    """Run the concurrent multi-device fleet simulation."""
    from .fleet import FleetRunner, assert_equivalent  # lazy: keeps startup lean

    net = _degraded_net(args)
    if args.index_segments is not None and args.index_mode != "process":
        raise SystemExit("--index-segments requires --index-mode process")

    def build(mode: str, n_shards: int, index_mode: str = "thread") -> FleetRunner:
        try:
            return FleetRunner(
                n_devices=args.devices,
                n_rounds=args.rounds,
                batch_size=args.batch_size,
                n_shards=n_shards,
                seed=args.seed,
                scheme=args.scheme,
                mode=mode,
                workers=args.workers,
                net=net,
                index_mode=index_mode,
                index_segment_dir=(
                    args.index_segments if index_mode == "process" else None
                ),
            )
        except SimulationError as exc:
            raise SystemExit(str(exc)) from None

    with _observability(args):
        with _journal_context(args.journal):
            result = build(args.mode, args.shards, args.index_mode).run()
        if args.journal is not None:
            print(f"wrote {args.journal}")
        print(
            f"fleet: {result.n_devices} device(s) x {result.n_rounds} round(s) "
            f"x {args.batch_size} images, {result.n_shards} "
            f"{args.index_mode}-mode shard(s), "
            f"scheme {args.scheme}, mode {result.mode}"
        )
        rows = [
            [
                device.device,
                len(device.uploaded_ids),
                len(device.eliminated_cross_batch),
                len(device.eliminated_in_batch),
                f"{device.energy_joules:.0f} J",
                format_bytes(device.sent_bytes),
                "yes" if device.halted else "no",
            ]
            for device in result.devices
        ]
        print()
        print(
            format_table(
                ["device", "uploaded", "x-batch", "in-batch", "energy",
                 "bandwidth", "halted"],
                rows,
            )
        )
        print(
            f"\ntotals: {result.total_uploaded} uploaded, "
            f"{result.total_eliminated} eliminated, "
            f"{format_bytes(result.total_bytes)}, "
            f"{result.total_energy_joules:.0f} J, "
            f"{result.wall_seconds:.2f} s wall"
        )
        print(f"decision fingerprint: {result.fingerprint()}")
        if args.verify:
            # Journal the reference too (to PATH.ref) so a mismatch can
            # name the first divergent journal event, not just the hash.
            reference_journal = (
                None if args.journal is None else args.journal + ".ref"
            )
            with _journal_context(reference_journal):
                reference = build("sequential", 1).run()
            if reference_journal is not None:
                print(f"wrote {reference_journal}")
            try:
                assert_equivalent(reference, result)
            except SimulationError as exc:
                raise SystemExit(str(exc)) from None
            print(
                "verified: byte-identical to the sequential single-index "
                f"reference ({reference.wall_seconds:.2f} s wall)"
            )
    return 0


def cmd_share(args: argparse.Namespace) -> int:
    """Share a folder of real PPM/PGM photos through one scheme."""
    dataset = FolderDataset(args.folder)
    batch = list(dataset)
    scheme = _schemes([args.scheme])[0]
    device = Smartphone()
    device.battery.recharge(args.battery)
    server = build_server(scheme)
    report = scheme.process_batch(device, server, batch)
    print(f"folder: {dataset.root} ({len(batch)} images, "
          f"{len(dataset.groups())} scenes by name)\n")
    print(f"scheme:            {scheme.name} (battery at {args.battery:.0%})")
    print(f"uploaded:          {report.n_uploaded}")
    print(f"in-batch redundant: {len(report.eliminated_in_batch)} "
          f"{sorted(report.eliminated_in_batch)}")
    print(f"cross-batch redundant: {len(report.eliminated_cross_batch)}")
    print(f"bytes sent:        {format_bytes(report.sent_bytes)}")
    print(f"energy:            {report.total_energy_joules:.1f} J")
    print(f"avg delay/image:   {report.average_image_seconds:.2f} s")
    return 0


def _parse_case_params(pairs: "list[str]") -> dict:
    """``["n_images=12", "ratios=[0,0.5]"]`` -> a params override dict."""
    params = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--param expects KEY=VALUE, got {pair!r}")
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def cmd_bench_run(args: argparse.Namespace) -> int:
    """Run bench cases and write one ``BENCH_<runid>.json`` artifact."""
    params = _parse_case_params(args.param)
    if params and (args.cases is None or len(args.cases) != 1):
        raise SystemExit(
            "--param overrides case-specific keys; select exactly one case "
            "with --cases when using it"
        )

    def progress(case_id: str, seconds: float) -> None:
        print(f"  {case_id:30s} {seconds:7.2f} s")

    mode = "quick" if args.quick else "full"
    selected = args.cases or bench_module.case_ids()
    print(f"running {len(selected)} bench case(s) [{mode}]:")
    try:
        with _profiler(args):
            artifact = bench_module.run_suite(
                case_ids=args.cases, quick=args.quick, params=params,
                progress=progress,
            )
        path = bench_module.save_suite(artifact, out=args.out)
    except BenchError as exc:
        raise SystemExit(f"bench run failed: {exc}") from None
    total = sum(case["wall_seconds"] for case in artifact["cases"].values())
    print(f"\nwrote {path} ({total:.1f} s total)")
    return 0


def cmd_bench_list(args: argparse.Namespace) -> int:
    """Print the registered bench cases (no benchmark imports needed)."""
    rows = [
        [spec[0], spec[1], spec[2], spec[3]] for spec in bench_module.CASE_SPECS
    ]
    print(format_table(["case", "module", "figure", "measures"], rows))
    return 0


def cmd_bench_compare(args: argparse.Namespace) -> int:
    """Diff two artifacts; exit 1 when the candidate regressed."""
    thresholds = {
        "wall_seconds": args.max_wall_growth,
        "bytes_sent": args.max_bytes_growth,
        "energy_joules": args.max_energy_growth,
    }
    metrics = bench_module.DETERMINISTIC_METRICS if args.deterministic else None
    try:
        result = bench_module.compare_files(
            args.baseline, args.candidate, thresholds, metrics=metrics
        )
    except BenchError as exc:
        raise SystemExit(f"bench compare failed: {exc}") from None
    print(bench_module.format_comparison(result))
    ok = result.ok
    if args.slo is not None:
        from .errors import ObservabilityError

        try:
            spec = obs_module.load_spec(args.slo)
            verdicts = obs_module.evaluate_artifact(
                spec, bench_module.read_artifact(args.candidate)
            )
        except (BenchError, ObservabilityError) as exc:
            raise SystemExit(f"slo check failed: {exc}") from None
        print()
        print(obs_module.format_results(verdicts))
        ok = ok and all(verdict.ok for verdict in verdicts)
    return 0 if ok else 1


def cmd_slo_check(args: argparse.Namespace) -> int:
    """Evaluate an SLO spec against a bench artifact; exit 1 on burn."""
    from .errors import ObservabilityError

    try:
        spec = obs_module.load_spec(args.spec)
        artifact = bench_module.read_artifact(args.artifact)
    except (BenchError, ObservabilityError) as exc:
        raise SystemExit(f"slo check failed: {exc}") from None
    results = obs_module.evaluate_artifact(spec, artifact)
    if args.format == "json":
        print(
            json.dumps(
                {
                    "spec": spec.source,
                    "artifact": str(args.artifact),
                    "failures": sum(1 for result in results if not result.ok),
                    "results": [
                        {
                            "name": result.name,
                            "ok": result.ok,
                            "value": (
                                None
                                if result.value != result.value
                                else result.value
                            ),
                            "objective": result.slo.objective_text(),
                            "claim": result.slo.claim,
                            "detail": result.detail,
                        }
                        for result in results
                    ],
                },
                indent=2,
            )
        )
    else:
        source = spec.source or "<spec>"
        print(f"checking {len(results)} SLO(s) from {source} "
              f"against {args.artifact}\n")
        print(obs_module.format_results(results))
    failures = [result for result in results if not result.ok]
    if failures and args.format != "json":
        print(f"\n{len(failures)} SLO(s) violated")
    return 1 if failures else 0


def cmd_top(args: argparse.Namespace) -> int:
    """Run a fleet under live sampling and render the dashboard."""
    import threading

    from .errors import ObservabilityError
    from .fleet import FleetRunner  # lazy: keeps startup lean

    spec = None
    if args.spec is not None:
        try:
            spec = obs_module.load_spec(args.spec)
        except ObservabilityError as exc:
            raise SystemExit(f"top failed: {exc}") from None
    obs = obs_module.configure()
    journal = (
        None
        if args.journal is None
        else obs_module.configure_journal(path=args.journal)
    )
    try:
        try:
            runner = FleetRunner(
                n_devices=args.devices,
                n_rounds=args.rounds,
                batch_size=args.batch_size,
                n_shards=args.shards,
                seed=args.seed,
                scheme=args.scheme,
                mode=args.mode,
            )
        except SimulationError as exc:
            raise SystemExit(str(exc)) from None
        aggregator = obs_module.StreamingAggregator(obs)
        aggregator.sample()  # baseline for the rate series
        done = threading.Event()
        failure: "list[BaseException]" = []

        def work() -> None:
            try:
                runner.run()
            except BaseException as exc:  # surfaced after the join
                failure.append(exc)
            finally:
                done.set()

        worker = threading.Thread(target=work, name="repro-top-fleet", daemon=True)
        worker.start()
        while not done.wait(args.interval):
            aggregator.sample()
            if not args.once:
                frame = obs_module.render_frame(aggregator, obs, spec, journal=journal)
                print("\x1b[2J\x1b[H" + frame, flush=True)
        worker.join()
        if failure:
            raise SystemExit(f"top failed: fleet run raised {failure[0]}")
        aggregator.sample()
        frame = obs_module.render_frame(aggregator, obs, spec, journal=journal)
        print(frame if args.once else "\x1b[2J\x1b[H" + frame, flush=True)
        if journal is not None:
            print(f"\nwrote {args.journal}")
        if args.html is not None:
            import pathlib

            html = obs_module.render_html(aggregator, spec)
            pathlib.Path(args.html).write_text(html)
            print(f"\nwrote {args.html}")
        if spec is not None:
            verdicts = obs_module.evaluate_live(spec, aggregator)
            if any(not verdict.ok for verdict in verdicts):
                return 1
    finally:
        if journal is not None:
            obs_module.disable_journal()
        obs_module.disable()
    return 0


def cmd_bench_report(args: argparse.Namespace) -> int:
    """Render one artifact as console tables."""
    try:
        artifact = bench_module.read_artifact(args.artifact)
    except BenchError as exc:
        raise SystemExit(f"bench report failed: {exc}") from None
    env = artifact["env"]
    mode = "quick" if artifact.get("quick") else "full"
    sha = env.get("git_sha") or "unknown"
    print(
        f"run {artifact['run_id']} [{mode}] — python {env.get('python')}, "
        f"numpy {env.get('numpy')}, git {sha[:12]}"
    )
    rows = []
    for case_id in sorted(artifact["cases"]):
        case = artifact["cases"][case_id]
        rows.append(
            [
                case_id,
                f"{case['wall_seconds']:.2f} s",
                format_bytes(sum(case["bytes_sent"].values())),
                f"{sum(case['energy_joules'].values()):.0f} J",
                f"{sum(case['eliminations'].values()):.0f}",
                f"{case.get('spans', 0)}",
            ]
        )
    print()
    print(format_table(["case", "wall", "bytes", "energy", "elim", "spans"], rows))
    if args.stages:
        stage_rows = []
        for case_id in sorted(artifact["cases"]):
            for series in sorted(artifact["cases"][case_id]["stage_seconds"]):
                summary = artifact["cases"][case_id]["stage_seconds"][series]
                stage_rows.append(
                    [
                        case_id,
                        series,
                        f"{summary['count']:.0f}",
                        f"{summary['p50']:.3f}",
                        f"{summary['p95']:.3f}",
                        f"{summary['p99']:.3f}",
                    ]
                )
        if stage_rows:
            print()
            print(
                format_table(
                    ["case", "scheme/stage", "n", "p50 s", "p95 s", "p99 s"],
                    stage_rows,
                )
            )
    return 0


def _read_journal_or_exit(path: str):
    from .errors import ObservabilityError

    try:
        return obs_module.read_journal(path)
    except (ObservabilityError, OSError) as exc:
        raise SystemExit(f"journal read failed: {exc}") from None


def cmd_journal_explain(args: argparse.Namespace) -> int:
    """Print the causal chain of one image from a journal."""
    journal = _read_journal_or_exit(args.journal)
    print(obs_module.format_explain(journal, args.image_id))
    return 0


def cmd_journal_diff(args: argparse.Namespace) -> int:
    """Diff two journals; exit 1 at the first divergent decision."""
    left = _read_journal_or_exit(args.run_a)
    right = _read_journal_or_exit(args.run_b)
    divergence = obs_module.first_divergence(left, right)
    if divergence is None:
        print(
            f"journals are decision-identical "
            f"({len(left.records)} vs {len(right.records)} record(s); "
            f"volatile events ignored)"
        )
        return 0
    print(f"first divergent event: {divergence.describe()}")
    return 1


def cmd_journal_replay(args: argparse.Namespace) -> int:
    """Re-derive a FleetResult from a journal; exit 1 on mismatch."""
    from .fleet import format_replay, replay_journal  # lazy: keeps startup lean

    journal = _read_journal_or_exit(args.journal)
    try:
        report = replay_journal(journal)
    except SimulationError as exc:
        raise SystemExit(f"journal replay failed: {exc}") from None
    print(format_replay(report))
    return 0 if report.ok else 1


def cmd_journal_stats(args: argparse.Namespace) -> int:
    """Per-device health summary: stragglers, outliers, drift."""
    journal = _read_journal_or_exit(args.journal)
    print(obs_module.format_stats(obs_module.journal_stats(journal)))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run beeslint; exit 1 on findings or unreadable files."""
    from . import lint as lint_module  # lazy: keeps experiment commands lean

    if args.list_rules:
        rows = [
            [rule.code, rule.name, rule.summary]
            for rule in sorted(lint_module.all_rules(), key=lambda r: r.code)
        ]
        print(format_table(["code", "rule", "checks"], rows))
        return 0
    try:
        rules = lint_module.resolve_rules(select=args.select, ignore=args.ignore)
        paths = list(args.paths)
        project_paths = None
        if args.changed:
            # Check only files that differ from HEAD, but keep the full
            # requested scope as whole-program context so interprocedural
            # summaries still see every module.
            project_paths = list(args.paths)
            paths = lint_module.changed_python_files(args.paths)
            if not paths:
                print("beeslint: no changed python files in scope")
                return 0
        cache_dir = None if args.no_cache else lint_module.CACHE_DIR_NAME
        result = lint_module.lint_paths(
            paths,
            rules=rules,
            cache_dir=cache_dir,
            project_paths=project_paths,
        )
    except lint_module.ConfigurationError as exc:
        raise SystemExit(f"lint failed: {exc}") from None
    if args.sarif is not None:
        document = lint_module.render_sarif(result)
        if args.sarif == "-":
            print(document, end="")
        else:
            with open(args.sarif, "w", encoding="utf-8") as handle:
                handle.write(document)
    if args.format == "json":
        print(lint_module.render_json(result))
    elif args.format == "sarif":
        if args.sarif != "-":  # already printed when --sarif=- was given
            print(lint_module.render_sarif(result), end="")
    elif args.sarif != "-":  # keep stdout pure SARIF for piping
        print(lint_module.render_console(result))
    return 0 if result.ok else 1


def cmd_metrics(args: argparse.Namespace) -> int:
    """Render a captured Prometheus metrics file as a console table."""
    print(obs_module.render_metrics_file(args.path))
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    """Print version, device profile, EAAS policies, and observability."""
    profile = DEFAULT_PROFILE
    print(f"repro {__version__} — BEES (ICDCS 2017) reproduction")
    print(f"\ndevice profile: {profile.name}")
    print(f"  battery        {profile.battery_capacity_joules:.0f} J")
    print(f"  cpu power      {profile.cpu_power_w} W")
    print(f"  radio power    {profile.radio_power_w} W")
    print(f"  baseline draw  {profile.baseline_power_w} W")
    print("\nEAAS policies (Ebat = 1.0 / 0.5 / 0.0):")
    for name, policy in (
        ("EAC bitmap compression C", eac_policy()),
        ("EDR similarity threshold T", edr_policy()),
        ("EAU resolution compression Cr", eau_policy()),
    ):
        values = "  ".join(f"{policy(e):.3f}" for e in (1.0, 0.5, 0.0))
        print(f"  {name:30s} {values}")
    obs = obs_module.get_obs()
    exporters = obs.exporters()
    print("\nobservability:")
    print(f"  enabled        {obs.enabled}")
    print(f"  exporters      {', '.join(exporters) if exporters else '(none)'}")
    print(f"  metrics        {len(obs.registry)} registered")
    buckets = ", ".join(f"{b:g}" for b in obs.stage_buckets)
    print(f"  stage buckets  {buckets} s")
    print(f"\nschemes: {', '.join(scheme_names())}")
    return 0


# -- parser -------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree of the `repro` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BEES: bandwidth- and energy-efficient image sharing (reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    commands = parser.add_subparsers(dest="command", required=True)

    compare = commands.add_parser("compare", help="one batch through every scheme")
    compare.add_argument("--images", type=int, default=30)
    compare.add_argument("--in-batch", type=int, default=4)
    compare.add_argument("--redundancy", type=float, default=0.25)
    compare.add_argument("--seed", type=int, default=1)
    compare.add_argument(
        "--schemes", nargs="+", default=["direct", "smarteye", "mrc", "bees"]
    )
    _add_obs_flags(compare)
    compare.set_defaults(handler=cmd_compare)

    lifetime = commands.add_parser("lifetime", help="battery drain race (Fig. 9)")
    lifetime.add_argument("--group-size", type=int, default=10)
    lifetime.add_argument("--interval-minutes", type=float, default=5.0)
    lifetime.add_argument("--redundancy", type=float, default=0.5)
    lifetime.add_argument("--capacity", type=float, default=0.1)
    lifetime.add_argument("--max-groups", type=int, default=100)
    lifetime.add_argument(
        "--schemes", nargs="+", default=["direct", "mrc", "bees-ea", "bees"]
    )
    _add_obs_flags(lifetime)
    lifetime.set_defaults(handler=cmd_lifetime)

    coverage = commands.add_parser("coverage", help="city coverage (Fig. 12)")
    coverage.add_argument("--images", type=int, default=400)
    coverage.add_argument("--locations", type=int, default=120)
    coverage.add_argument("--phones", type=int, default=3)
    coverage.add_argument("--group-size", type=int, default=12)
    coverage.add_argument("--capacity", type=float, default=0.015)
    coverage.add_argument("--seed", type=int, default=9)
    coverage.add_argument("--schemes", nargs="+", default=["direct", "bees"])
    _add_obs_flags(coverage)
    coverage.set_defaults(handler=cmd_coverage)

    fleet = commands.add_parser(
        "fleet", help="concurrent multi-device fleet simulation"
    )
    fleet_commands = fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_run = fleet_commands.add_parser(
        "run", help="run N devices against one (optionally sharded) server"
    )
    fleet_run.add_argument("--devices", type=int, default=4)
    fleet_run.add_argument("--shards", type=int, default=4)
    fleet_run.add_argument("--seed", type=int, default=0)
    fleet_run.add_argument("--rounds", type=int, default=3)
    fleet_run.add_argument("--batch-size", type=int, default=8)
    fleet_run.add_argument("--scheme", default="bees")
    fleet_run.add_argument(
        "--mode", choices=["sequential", "concurrent"], default="concurrent"
    )
    fleet_run.add_argument(
        "--workers", type=int, default=None,
        help="thread-pool width in concurrent mode (default: one per device)",
    )
    fleet_run.add_argument(
        "--index-mode", choices=["thread", "process"], default="thread",
        help="where index shards live: in-process tables (thread) or "
        "worker processes with shared-memory arenas (process); "
        "byte-identical answers either way",
    )
    fleet_run.add_argument(
        "--index-segments", metavar="DIR", default=None,
        help="process mode only: journal adds to append-only segment "
        "files under DIR, making shards crash-recoverable",
    )
    fleet_run.add_argument(
        "--verify", action="store_true",
        help="re-run sequentially on a single index and assert the "
        "decisions are byte-identical",
    )
    fleet_run.add_argument(
        "--journal", metavar="PATH", default=None,
        help="record the decision journal (JSONL) to PATH; with "
        "--verify the reference run is journaled to PATH.ref",
    )
    degraded = fleet_run.add_argument_group(
        "degraded network",
        "give every device a lossy chunked uplink "
        "(any of these flags enables it)",
    )
    degraded.add_argument(
        "--ber", type=float, default=None, metavar="RATE",
        help="per-bit error rate on the uplink (e.g. 1e-6)",
    )
    degraded.add_argument(
        "--chunk-drop", type=float, default=None, metavar="RATE",
        help="per-chunk drop rate on the uplink",
    )
    degraded.add_argument(
        "--transport", choices=["arq", "replica"], default="arq",
        help="chunk recovery strategy (default: arq)",
    )
    degraded.add_argument(
        "--chunk-bytes", type=int, default=None,
        help="chunk size in bytes (default: 16384)",
    )
    degraded.add_argument(
        "--replicas", type=int, default=None,
        help="replicas per chunk for --transport replica (default: 3)",
    )
    degraded.add_argument(
        "--contact-period", type=float, default=None, metavar="SECONDS",
        help="contact-window cycle length (satellite-pass schedule)",
    )
    degraded.add_argument(
        "--contact-up", type=float, default=None, metavar="SECONDS",
        help="connected span at the start of each contact cycle",
    )
    _add_obs_flags(fleet_run)
    fleet_run.set_defaults(handler=cmd_fleet_run)

    share = commands.add_parser(
        "share", help="run a scheme over a folder of PPM/PGM photos"
    )
    share.add_argument("folder", help="directory of .ppm/.pgm files")
    share.add_argument("--scheme", default="bees")
    share.add_argument(
        "--battery", type=float, default=1.0, help="starting charge fraction"
    )
    share.set_defaults(handler=cmd_share)

    bench = commands.add_parser(
        "bench", help="benchmark telemetry harness (BENCH_*.json artifacts)"
    )
    bench_commands = bench.add_subparsers(dest="bench_command", required=True)

    bench_run = bench_commands.add_parser(
        "run", help="run bench cases and write a BENCH_<runid>.json artifact"
    )
    bench_run.add_argument(
        "--quick", action="store_true",
        help="use each case's reduced QUICK_PARAMS (CI-sized, ~seconds/case)",
    )
    bench_run.add_argument(
        "--cases", nargs="+", metavar="CASE", default=None,
        help="run only these case ids (see `repro bench list`)",
    )
    bench_run.add_argument(
        "--out", metavar="PATH", default=None,
        help="artifact path (default: BENCH_<runid>.json in the cwd)",
    )
    bench_run.add_argument(
        "--param", action="append", metavar="KEY=VALUE", default=[],
        help="override one case parameter (requires a single --cases entry; "
        "VALUE is parsed as JSON, repeatable)",
    )
    _add_profile_flags(bench_run)
    bench_run.set_defaults(handler=cmd_bench_run)

    bench_list = bench_commands.add_parser("list", help="list registered cases")
    bench_list.set_defaults(handler=cmd_bench_list)

    bench_compare = bench_commands.add_parser(
        "compare", help="diff two artifacts; exit 1 on regression"
    )
    bench_compare.add_argument("baseline", help="baseline BENCH_*.json")
    bench_compare.add_argument("candidate", help="candidate BENCH_*.json")
    bench_compare.add_argument(
        "--max-wall-growth", type=float, default=0.10, metavar="FRAC",
        help="allowed relative wall-time growth (default 0.10 = +10%%)",
    )
    bench_compare.add_argument(
        "--max-bytes-growth", type=float, default=0.10, metavar="FRAC",
        help="allowed relative bytes-sent growth (default 0.10)",
    )
    bench_compare.add_argument(
        "--max-energy-growth", type=float, default=0.10, metavar="FRAC",
        help="allowed relative energy growth (default 0.10)",
    )
    bench_compare.add_argument(
        "--deterministic", action="store_true",
        help="gate only the exact-count series (bytes, joules) and ignore "
        "hardware-noisy wall time — the blocking CI mode",
    )
    bench_compare.add_argument(
        "--slo", metavar="SPEC", default=None,
        help="additionally evaluate the candidate against this SLO spec "
        "and fail on any violation",
    )
    bench_compare.set_defaults(handler=cmd_bench_compare)

    bench_report = bench_commands.add_parser(
        "report", help="render one artifact as console tables"
    )
    bench_report.add_argument("artifact", help="a BENCH_*.json file")
    bench_report.add_argument(
        "--stages", action="store_true",
        help="include the per-stage p50/p95/p99 latency table",
    )
    bench_report.set_defaults(handler=cmd_bench_report)

    slo = commands.add_parser(
        "slo", help="declarative SLOs over bench artifacts (exit 1 on burn)"
    )
    slo_commands = slo.add_subparsers(dest="slo_command", required=True)
    slo_check = slo_commands.add_parser(
        "check", help="evaluate a spec against one BENCH_*.json artifact"
    )
    slo_check.add_argument(
        "--spec", default="slo/bees_slo.json", metavar="PATH",
        help="SLO spec file (default: slo/bees_slo.json)",
    )
    slo_check.add_argument(
        "--artifact", required=True, metavar="PATH",
        help="the BENCH_*.json artifact to judge",
    )
    slo_check.add_argument(
        "--format", choices=["console", "json"], default="console",
        help="verdict output format (default: console)",
    )
    slo_check.set_defaults(handler=cmd_slo_check)

    top = commands.add_parser(
        "top", help="live fleet dashboard (runs a fleet under sampling)"
    )
    top.add_argument("--devices", type=int, default=4)
    top.add_argument("--shards", type=int, default=4)
    top.add_argument("--rounds", type=int, default=6)
    top.add_argument("--batch-size", type=int, default=8)
    top.add_argument("--seed", type=int, default=0)
    top.add_argument("--scheme", default="bees")
    top.add_argument(
        "--mode", choices=["sequential", "concurrent"], default="concurrent"
    )
    top.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="sampling / redraw cadence (default 1.0 s)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="print a single final frame instead of redrawing live "
        "(the CI smoke mode)",
    )
    top.add_argument(
        "--html", metavar="PATH", default=None,
        help="also write a self-contained HTML snapshot report to PATH",
    )
    top.add_argument(
        "--spec", metavar="PATH", default=None,
        help="SLO spec whose live objectives the dashboard evaluates "
        "(exit 1 if any burn-rate alert fires)",
    )
    top.add_argument(
        "--journal", metavar="PATH", default=None,
        help="record the decision journal to PATH and show its live "
        "counters as a dashboard panel",
    )
    top.set_defaults(handler=cmd_top)

    journal = commands.add_parser(
        "journal", help="decision journal: explain, diff, replay, stats"
    )
    journal_commands = journal.add_subparsers(dest="journal_command", required=True)

    journal_explain = journal_commands.add_parser(
        "explain", help="the causal chain of one image id"
    )
    journal_explain.add_argument("journal", help="a journal JSONL file")
    journal_explain.add_argument("image_id", help="the image id to explain")
    journal_explain.set_defaults(handler=cmd_journal_explain)

    journal_diff = journal_commands.add_parser(
        "diff", help="first divergent decision between two runs (exit 1)"
    )
    journal_diff.add_argument("run_a", help="left journal JSONL file")
    journal_diff.add_argument("run_b", help="right journal JSONL file")
    journal_diff.set_defaults(handler=cmd_journal_diff)

    journal_replay = journal_commands.add_parser(
        "replay", help="re-derive the FleetResult and check the recorded "
        "fingerprint (exit 1 on mismatch)"
    )
    journal_replay.add_argument("journal", help="a fleet-run journal JSONL file")
    journal_replay.set_defaults(handler=cmd_journal_replay)

    journal_stats = journal_commands.add_parser(
        "stats", help="per-device health: stragglers, outliers, drift"
    )
    journal_stats.add_argument("journal", help="a journal JSONL file")
    journal_stats.set_defaults(handler=cmd_journal_stats)

    lint = commands.add_parser(
        "lint", help="run the beeslint static-analysis rules (exit 1 on findings)"
    )
    lint.add_argument(
        "paths", nargs="*", default=["src", "benchmarks"],
        help="files or directories to lint (default: src benchmarks)",
    )
    lint.add_argument(
        "--format", choices=["console", "json", "sarif"], default="console",
        help="findings output format (default: console)",
    )
    lint.add_argument(
        "--sarif", metavar="FILE", default=None,
        help="also write a SARIF 2.1.0 report to FILE ('-' for stdout)",
    )
    lint.add_argument(
        "--changed", action="store_true",
        help="check only files changed vs git HEAD (full paths still "
        "provide whole-program context)",
    )
    lint.add_argument(
        "--no-cache", action="store_true",
        help="disable the .beeslint_cache/ incremental result cache",
    )
    lint.add_argument(
        "--select", action="append", metavar="RULE", default=None,
        help="run only this rule (slug or BEESnnn code; repeatable)",
    )
    lint.add_argument(
        "--ignore", action="append", metavar="RULE", default=None,
        help="skip this rule (slug or BEESnnn code; repeatable)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )
    lint.set_defaults(handler=cmd_lint)

    metrics = commands.add_parser(
        "metrics", help="render a captured Prometheus metrics file"
    )
    metrics.add_argument("path", help="a file written by --metrics PATH")
    metrics.set_defaults(handler=cmd_metrics)

    info = commands.add_parser("info", help="profile, policies, observability")
    info.set_defaults(handler=cmd_info)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
