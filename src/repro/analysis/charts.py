"""Terminal chart primitives for examples and experiment output.

Dependency-free ASCII rendering: spark-lines for traces (the Figure-9
battery curves), horizontal bars for scheme comparisons, and shaded
density maps for the Figure-12 coverage grids.
"""

from __future__ import annotations

import numpy as np

from ..errors import BeesError

SPARK_LEVELS = " ▁▂▃▄▅▆▇█"
SHADE_LEVELS = " .:*#@"


def sparkline(values: "list[float]", lo: "float | None" = None, hi: "float | None" = None) -> str:
    """One-line spark chart of a numeric series.

    Values are scaled into ``[lo, hi]`` (default: the series' own
    range); constant series render as a flat mid-level line.
    """
    if not values:
        raise BeesError("cannot chart an empty series")
    array = np.asarray(values, dtype=np.float64)
    low = float(array.min()) if lo is None else float(lo)
    high = float(array.max()) if hi is None else float(hi)
    if high <= low:
        return SPARK_LEVELS[4] * len(values)
    scaled = (array - low) / (high - low)
    indices = np.clip(np.rint(scaled * (len(SPARK_LEVELS) - 1)), 0, len(SPARK_LEVELS) - 1)
    return "".join(SPARK_LEVELS[int(i)] for i in indices)


def bar_chart(entries: "list[tuple[str, float]]", width: int = 40) -> str:
    """Horizontal bar chart; one ``label  ████  value`` row per entry."""
    if not entries:
        raise BeesError("cannot chart zero entries")
    if width < 1:
        raise BeesError(f"width must be >= 1, got {width}")
    peak = max(value for _, value in entries)
    if peak < 0:
        raise BeesError("bar charts need non-negative values")
    label_width = max(len(label) for label, _ in entries)
    lines = []
    for label, value in entries:
        length = 0 if peak == 0 else int(round(width * value / peak))
        lines.append(f"{label.ljust(label_width)}  {'█' * length}  {value:g}")
    return "\n".join(lines)


def density_map(grid: np.ndarray, border: bool = True) -> str:
    """Log2-shaded character map of a 2-D count grid (north = last row).

    Matches the paper's Figure-12 rendering convention: cell shade is
    the log2 of its image count.
    """
    grid = np.asarray(grid)
    if grid.ndim != 2 or grid.size == 0:
        raise BeesError(f"density_map expects a non-empty 2-D grid, got {grid.shape}")
    if (grid < 0).any():
        raise BeesError("counts must be non-negative")
    lines = []
    for row in grid[::-1]:
        cells = ""
        for count in row:
            level = 0 if count == 0 else 1 + int(np.log2(count))
            cells += SHADE_LEVELS[min(len(SHADE_LEVELS) - 1, level)]
        lines.append(f"|{cells}|" if border else cells)
    return "\n".join(lines)
