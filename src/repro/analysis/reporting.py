"""Plain-text table rendering for the benchmark harness.

Every bench prints the rows/series its paper figure reports; these
helpers keep the output format consistent and dependency-free.
"""

from __future__ import annotations

from ..errors import BeesError


def format_table(headers: "list[str]", rows: "list[list[object]]") -> str:
    """Render an aligned monospace table."""
    if not headers:
        raise BeesError("a table needs headers")
    cells = [[str(value) for value in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise BeesError(
                f"row width {len(row)} does not match {len(headers)} headers"
            )
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in cells)) if cells else len(headers[col])
        for col in range(len(headers))
    ]
    lines = [
        "  ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    lines.extend(
        "  ".join(value.ljust(width) for value, width in zip(row, widths))
        for row in cells
    )
    return "\n".join(lines)


def format_bytes(n_bytes: float) -> str:
    """Human units, binary multiples (the paper reports MB/GB)."""
    if n_bytes < 0:
        raise BeesError(f"byte counts must be >= 0, got {n_bytes}")
    value = float(n_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024.0 or unit == "TB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_percent(fraction: float) -> str:
    """``0.423`` → ``"42.3%"``."""
    return f"{100.0 * fraction:.1f}%"


def print_figure(title: str, body: str) -> None:
    """Print one figure/table block with a banner the harness greps for."""
    banner = "=" * max(8, len(title))
    print(f"\n{banner}\n{title}\n{banner}\n{body}")
