"""Precision and detection-rate analysis.

Implements the paper's Equation 3 —

    precision = |{similar images} ∩ {retrieved images}| / |{retrieved images}|

— measured as the average number of same-group images in the top-4
query results on Kentucky-style data (Figures 3(a) and 6), plus the
true/false-positive-rate sweeps over similarity thresholds that produce
Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.server import BeesServer
from ..datasets.base import LabeledPair
from ..errors import SimulationError
from ..features.base import FeatureSet
from ..features.similarity import jaccard_similarity
from ..imaging.image import Image

TOP_K = 4


def top_k_precision(
    server: BeesServer,
    query_features: FeatureSet,
    query_group: str,
    group_of: "dict[str, str]",
    k: int = TOP_K,
) -> float:
    """Fraction of the top-*k* results that share the query's group."""
    if not query_group:
        raise SimulationError("query image must carry a group_id")
    results = server.query_top(query_features, k)
    if not results:
        return 0.0
    relevant = sum(1 for image_id, _ in results if group_of.get(image_id) == query_group)
    return relevant / k


def dataset_precision(
    server: BeesServer,
    queries: "list[tuple[Image, FeatureSet]]",
    group_of: "dict[str, str]",
    k: int = TOP_K,
) -> float:
    """Mean top-*k* precision over a set of queries (Equation 3)."""
    if not queries:
        raise SimulationError("need at least one query")
    scores = [
        top_k_precision(server, features, image.group_id, group_of, k)
        for image, features in queries
    ]
    return float(np.mean(scores))


@dataclass(frozen=True)
class RatePoint:
    """TPR/FPR at one similarity threshold (one x-slice of Figure 4)."""

    threshold: float
    true_positive_rate: float
    false_positive_rate: float


def pair_similarities(
    pairs: "list[LabeledPair]", extract
) -> "tuple[np.ndarray, np.ndarray]":
    """Equation-2 similarities of labelled pairs.

    ``extract`` maps an :class:`Image` to a :class:`FeatureSet`.
    Returns ``(similar_sims, dissimilar_sims)``.
    """
    similar, dissimilar = [], []
    for pair in pairs:
        similarity = jaccard_similarity(extract(pair.first), extract(pair.second))
        (similar if pair.similar else dissimilar).append(similarity)
    return np.asarray(similar), np.asarray(dissimilar)


def rate_curve(
    similar_sims: np.ndarray,
    dissimilar_sims: np.ndarray,
    thresholds: "list[float]",
) -> "list[RatePoint]":
    """TPR/FPR for each threshold — the similarity distribution of Fig. 4."""
    if len(similar_sims) == 0 or len(dissimilar_sims) == 0:
        raise SimulationError("need both similar and dissimilar similarities")
    points = []
    for threshold in thresholds:
        points.append(
            RatePoint(
                threshold=float(threshold),
                true_positive_rate=float((similar_sims > threshold).mean()),
                false_positive_rate=float((dissimilar_sims > threshold).mean()),
            )
        )
    return points
