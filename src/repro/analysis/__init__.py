"""Analysis: precision, detection rates, coverage, and report rendering."""

from .charts import bar_chart, density_map, sparkline
from .coverage import CoverageSummary, density_grid, summarize_geotags
from .precision import (
    RatePoint,
    dataset_precision,
    pair_similarities,
    rate_curve,
    top_k_precision,
)
from .reporting import format_bytes, format_percent, format_table, print_figure

__all__ = [
    "CoverageSummary",
    "bar_chart",
    "density_map",
    "sparkline",
    "RatePoint",
    "dataset_precision",
    "density_grid",
    "format_bytes",
    "format_percent",
    "format_table",
    "pair_similarities",
    "print_figure",
    "rate_curve",
    "summarize_geotags",
    "top_k_precision",
]
