"""Coverage analysis — the Figure-12 scoring.

Coverage is "the number of unique locations covered" by the images the
servers received; the density map helpers reproduce the log2-binned
heatmap the figure plots.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from ..datasets.geo import BoundingBox
from ..errors import SimulationError


@dataclass(frozen=True)
class CoverageSummary:
    """Aggregate coverage statistics of one image collection."""

    n_images: int
    n_unique_locations: int
    densest_location_count: int

    @property
    def coverage_per_image(self) -> float:
        if self.n_images == 0:
            return 0.0
        return self.n_unique_locations / self.n_images


def summarize_geotags(geotags: "list[tuple[float, float] | None]") -> CoverageSummary:
    """Coverage summary of a geotagged collection (None tags ignored)."""
    tagged = [tag for tag in geotags if tag is not None]
    counts = Counter(tagged)
    return CoverageSummary(
        n_images=len(tagged),
        n_unique_locations=len(counts),
        densest_location_count=max(counts.values()) if counts else 0,
    )


def density_grid(
    geotags: "list[tuple[float, float] | None]",
    box: BoundingBox,
    n_bins: int = 32,
) -> np.ndarray:
    """Per-cell image counts over the bounding box — the Fig. 12 heatmap.

    Returns an ``(n_bins, n_bins)`` array indexed ``[lat_bin, lon_bin]``.
    The figure colours cells by ``log2(count)``; callers can apply
    ``np.log2`` on the non-zero entries.
    """
    if n_bins < 1:
        raise SimulationError(f"n_bins must be >= 1, got {n_bins}")
    grid = np.zeros((n_bins, n_bins), dtype=np.int64)
    lon_span = box.lon_max - box.lon_min
    lat_span = box.lat_max - box.lat_min
    for tag in geotags:
        if tag is None:
            continue
        lon, lat = tag
        if not box.contains(lon, lat):
            continue
        col = min(n_bins - 1, int((lon - box.lon_min) / lon_span * n_bins))
        row = min(n_bins - 1, int((lat - box.lat_min) / lat_span * n_bins))
        grid[row, col] += 1
    return grid
