"""AFE — Approximate Feature Extraction (Section III-A).

Before extracting ORB features, BEES shrinks the in-memory bitmap by
the EAC compression proportion ``C = 0.4 - 0.4 * Ebat``.  The processed
pixel count — and with it extraction time and energy — falls by
``(1 - C)^2`` while detection precision stays above 90% for C <= 0.4
(the trade-off measured in Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..energy import EnergyCostModel, WorkCost
from ..features.base import FeatureSet
from ..features.orb import OrbExtractor
from ..imaging.bitmap import compress_image
from ..imaging.image import Image
from .policies import LinearPolicy, eac_policy


@dataclass(frozen=True)
class AfeResult:
    """Features plus the work they cost."""

    features: FeatureSet
    compression_proportion: float
    cost: WorkCost


@dataclass
class ApproximateFeatureExtraction:
    """The AFE stage: EAC bitmap compression + ORB extraction."""

    extractor: OrbExtractor = field(default_factory=OrbExtractor)
    policy: LinearPolicy = field(default_factory=eac_policy)
    cost_model: EnergyCostModel = field(default_factory=EnergyCostModel)
    enabled: bool = True

    def proportion_for(self, ebat: float) -> float:
        """The EAC compression proportion at the given battery level."""
        if not self.enabled:
            return 0.0
        return self.policy(ebat)

    def extract(self, image: Image, ebat: float) -> AfeResult:
        """Extract features, compressing the bitmap first per EAC."""
        proportion = self.proportion_for(ebat)
        source = compress_image(image, proportion) if proportion > 0.0 else image
        features = self.extractor.extract(source)
        cost = self.cost_model.extraction_cost(
            self.extractor.kind, image.nominal_pixels, proportion
        )
        return AfeResult(features=features, compression_proportion=proportion, cost=cost)
