"""The cloud-server side of BEES.

The server holds the feature index (for CBRD queries) and the image
store (received images with geotags — the coverage analysis reads it).
Per the paper, the server runs on well-provisioned machines, so the
simulation charges no energy to it; its role is to answer queries and
grow the index as images arrive.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..errors import SimulationError
from ..features.base import FeatureSet
from ..imaging.image import Image
from ..index import (
    FeatureIndex,
    ImageStore,
    ProcessShardedIndex,
    QueryResult,
    ShardedFeatureIndex,
)
from ..obs.journal import get_journal
from ..obs.runtime import get_obs


@dataclass
class BeesServer:
    """Cloud endpoint: feature index + image store.

    The index may be the plain :class:`FeatureIndex`, the sharded,
    thread-safe :class:`ShardedFeatureIndex`, or the process-parallel
    :class:`ProcessShardedIndex` — all answer queries byte-identically
    over the same stored images, so schemes never need to know which
    one is behind the server.
    """

    index: "FeatureIndex | ShardedFeatureIndex | ProcessShardedIndex" = field(
        default_factory=FeatureIndex
    )
    store: ImageStore = field(default_factory=ImageStore)
    #: Bytes of the per-image query response (the verdict is tiny).
    query_response_bytes: int = 64
    queries_served: int = field(default=0, init=False)

    def query_features(self, features: FeatureSet) -> QueryResult:
        """Answer a CBRD query: the max similarity over stored images."""
        self.queries_served += 1
        obs = get_obs()
        if not obs.enabled:
            return self.index.query(features)
        with obs.span(
            "server.query", image_id=features.image_id, index_size=len(self.index)
        ) as span:
            t0 = time.perf_counter()
            result = self.index.query(features)
            latency = time.perf_counter() - t0  # beeslint: disable=raw-timing (feeds the index_query_latency gauge below)
            span.set_attribute("best_similarity", result.best_similarity)
        obs.index_queries.inc()
        obs.index_query_latency.set(latency)
        obs.index_size.set(len(self.index))
        return result

    def query_features_batch(
        self, feature_sets: "list[FeatureSet]"
    ) -> "list[QueryResult]":
        """Answer one CBRD query per feature set, in input order.

        Result-identical to calling :meth:`query_features` per set; the
        batch shape exists so a fleet round's worth of queries shares
        one span and one metrics update, and so a sharded index can be
        handed the whole round for cross-shard fan-out at once.
        """
        self.queries_served += len(feature_sets)
        obs = get_obs()
        if not obs.enabled:
            return self._index_query_batch(feature_sets)
        with obs.span(
            "server.query_batch",
            n_queries=len(feature_sets),
            index_size=len(self.index),
        ) as span:
            t0 = time.perf_counter()
            results = self._index_query_batch(feature_sets)
            latency = time.perf_counter() - t0  # beeslint: disable=raw-timing (feeds the index_query_latency gauge below)
            span.set_attribute("n_found", sum(1 for r in results if r.found))
        obs.index_queries.inc(len(feature_sets))
        if feature_sets:
            obs.index_query_latency.set(latency / len(feature_sets))
        obs.index_size.set(len(self.index))
        return results

    def _index_query_batch(
        self, feature_sets: "list[FeatureSet]"
    ) -> "list[QueryResult]":
        if isinstance(self.index, (ShardedFeatureIndex, ProcessShardedIndex)):
            return self.index.query_batch(feature_sets)
        return [self.index.query(features) for features in feature_sets]

    def query_top(self, features: FeatureSet, k: int) -> "list[tuple[str, float]]":
        """Top-*k* most similar stored images (precision experiments)."""
        return self.index.query_top(features, k)

    def receive_image(
        self,
        image: Image,
        features: FeatureSet,
        received_bytes: Optional[int] = None,
    ) -> None:
        """Accept an uploaded image: store it and index its features.

        "The servers add the features of the uploaded images into the
        index for redundancy detection once receiving the images."
        """
        if features.image_id != image.image_id:
            raise SimulationError(
                f"feature id {features.image_id!r} does not match image "
                f"{image.image_id!r}"
            )
        obs = get_obs()
        with obs.span(
            "server.receive",
            image_id=image.image_id,
            received_bytes=received_bytes if received_bytes is not None else -1,
        ):
            self.store.add(image, received_bytes=received_bytes)
            self.index.add(features)
        if obs.enabled:
            obs.index_size.set(len(self.index))
        journal = get_journal()
        if journal.enabled:
            journal.emit(
                "server.index",
                image_id=image.image_id,
                received_bytes=received_bytes,
                index_size=len(self.index),
            )

    def seed_image(self, image: Image, features: FeatureSet) -> None:
        """Pre-populate the server (experiment setup: cross-batch
        redundancy is created by "adding redundant images into the
        servers" before the measured run)."""
        self.receive_image(image, features, received_bytes=0)

    def __len__(self) -> int:
        return len(self.store)
