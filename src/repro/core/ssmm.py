"""SSMM — the Similarity-aware Submodular Maximization Model.

Section III-B2.  Given a batch of images as a weighted graph
``G = (V, E, w)`` with edge weights equal to pairwise Equation-2
similarities, SSMM selects the *unique image subset* to upload:

1. Cut every edge with weight below the threshold ``Tw`` (itself set by
   the energy-aware policy); the remaining connected components are the
   batch's similarity clusters.
2. The adaptive budget ``b`` is the number of components — one
   representative per distinct piece of content.
3. Greedily maximise the submodular objective
   ``F(S) = λ_cov * f_cov(S) + λ_div * f_div(S)`` subject to
   ``|S| <= b`` (Algorithm 1), where

   * ``f_cov(S) = Σ_{i∈V} max_{j∈S} w(i, j)`` rewards summaries whose
     members stand in for every image (coverage), and
   * ``f_div(S) = Σ_i 1[S ∩ I_i ≠ ∅]`` rewards touching many
     components (diversity).

Both components are monotone submodular, so the lazy-free greedy of
Nemhauser et al. guarantees ``F(Ŝ) >= (1 - 1/e) F(S*)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..features.base import FeatureSet
from ..kernels.batch import batch_similarity_matrix
from ..obs.journal import DecisionJournal, get_journal


def similarity_matrix(feature_sets: "list[FeatureSet]") -> np.ndarray:
    """Pairwise Equation-2 similarity matrix; the diagonal is 1.

    Computed by the batched kernel
    (:func:`repro.kernels.batch.batch_similarity_matrix`), which hoists
    the per-set descriptor preparation out of the O(n²) pair loop and
    consults the match-count cache — the matrix is byte-identical to
    the historical per-pair :func:`~repro.features.similarity.
    jaccard_similarity` loop.
    """
    return batch_similarity_matrix(feature_sets)


def partition_components(weights: np.ndarray, cut_threshold: float) -> np.ndarray:
    """Connected components after cutting edges below *cut_threshold*.

    Returns an integer label per vertex.  Union-find keeps this linear
    in the number of surviving edges.
    """
    weights = np.asarray(weights)
    if weights.ndim != 2 or weights.shape[0] != weights.shape[1]:
        raise ConfigurationError(f"weights must be square, got {weights.shape}")
    n = weights.shape[0]
    parent = np.arange(n)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    rows, cols = np.nonzero(np.triu(weights >= cut_threshold, k=1))
    for i, j in zip(rows.tolist(), cols.tolist()):
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[rj] = ri

    # Root resolution, vectorized: pointer-jump every vertex at once
    # until the parent array is a fixed point.  Path halving above
    # bounds the chain depth, so this converges in O(log n) gathers —
    # replacing the per-vertex Python `find` loop.
    roots = parent
    while True:
        jumped = roots[roots]
        if np.array_equal(jumped, roots):
            break
        roots = jumped
    _, labels = np.unique(roots, return_inverse=True)
    return labels


@dataclass(frozen=True)
class SsmmResult:
    """What SSMM decided for one batch."""

    selected: list  # indices into the batch, in greedy pick order
    budget: int
    component_labels: np.ndarray
    objective: float

    @property
    def n_components(self) -> int:
        return int(self.component_labels.max()) + 1 if len(self.component_labels) else 0


@dataclass
class SubmodularSelector:
    """The coverage + diversity objective and its greedy maximiser."""

    coverage_weight: float = 1.0
    diversity_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.coverage_weight < 0 or self.diversity_weight < 0:
            raise ConfigurationError("submodular component weights must be >= 0")

    # -- objective -----------------------------------------------------------

    def coverage(self, weights: np.ndarray, selected: "list[int]") -> float:
        """``f_cov``: how well *selected* represents every batch image."""
        if not selected:
            return 0.0
        return float(weights[:, selected].max(axis=1).sum())

    def diversity(self, labels: np.ndarray, selected: "list[int]") -> float:
        """``f_div``: the number of components *selected* touches."""
        if not selected:
            return 0.0
        return float(len(set(labels[selected].tolist())))

    def objective(
        self, weights: np.ndarray, labels: np.ndarray, selected: "list[int]"
    ) -> float:
        """``F(S)`` — the weighted sum of the component functions."""
        return (
            self.coverage_weight * self.coverage(weights, selected)
            + self.diversity_weight * self.diversity(labels, selected)
        )

    # -- Algorithm 1 -----------------------------------------------------------

    def greedy(
        self, weights: np.ndarray, labels: np.ndarray, budget: int
    ) -> "list[int]":
        """The similarity-aware greedy algorithm (Algorithm 1).

        Vectorised marginal-gain evaluation: at each step the candidate
        that most increases ``F`` joins the summary, until the budget is
        filled or no candidate has positive gain.
        """
        n = weights.shape[0]
        if budget < 1:
            raise ConfigurationError(f"budget must be >= 1, got {budget}")
        budget = min(budget, n)

        selected: list[int] = []
        # Running per-image best similarity to the summary (for f_cov).
        best = np.zeros(n)
        covered_components: set[int] = set()
        remaining = np.ones(n, dtype=bool)

        for _ in range(budget):
            # f_cov gain of adding v: sum of max(0, w[:, v] - best).
            gains = (
                np.maximum(weights - best[:, None], 0.0).sum(axis=0)
                * self.coverage_weight
            )
            # f_div gain: +1 for a component not yet covered.
            new_component = np.array(
                [label not in covered_components for label in labels]
            )
            gains = gains + self.diversity_weight * new_component
            gains[~remaining] = -np.inf
            pick = int(np.argmax(gains))
            if not np.isfinite(gains[pick]):
                break
            if gains[pick] <= 0.0 and selected:
                break
            selected.append(pick)
            remaining[pick] = False
            best = np.maximum(best, weights[:, pick])
            covered_components.add(int(labels[pick]))
        return selected


def select_unique_subset(
    feature_sets: "list[FeatureSet]",
    cut_threshold: float,
    selector: "SubmodularSelector | None" = None,
    budget: "int | str" = "components",
    weights: "np.ndarray | None" = None,
) -> SsmmResult:
    """Run the full SSMM pipeline on one batch.

    ``budget`` is the paper's adaptive rule (``"components"``) or a
    fixed integer (the fixed-budget ablation).  A precomputed similarity
    matrix can be passed via *weights* to avoid re-matching.
    """
    if selector is None:
        selector = SubmodularSelector()
    n = len(feature_sets)
    if n == 0:
        return SsmmResult(
            selected=[], budget=0, component_labels=np.zeros(0, dtype=int), objective=0.0
        )
    if weights is None:
        weights = similarity_matrix(feature_sets)
    elif weights.shape != (n, n):
        raise ConfigurationError(
            f"weights shape {weights.shape} does not match batch size {n}"
        )
    labels = partition_components(weights, cut_threshold)
    if budget == "components":
        resolved_budget = int(labels.max()) + 1
    else:
        resolved_budget = int(budget)
    selected = selector.greedy(weights, labels, resolved_budget)
    result = SsmmResult(
        selected=selected,
        budget=resolved_budget,
        component_labels=labels,
        objective=selector.objective(weights, labels, selected),
    )
    journal = get_journal()
    if journal.enabled:
        _emit_selection(
            journal, feature_sets, cut_threshold, selector, weights, result
        )
    return result


def _emit_selection(
    journal: "DecisionJournal",
    feature_sets: "list[FeatureSet]",
    cut_threshold: float,
    selector: SubmodularSelector,
    weights: np.ndarray,
    result: SsmmResult,
) -> None:
    """Journal one SSMM selection, including per-pick marginal coverage.

    The marginal gains re-evaluate the objective over the greedy pick
    prefixes — O(budget · n²) on batch-sized inputs, and only paid when
    the journal is enabled.
    """
    labels = result.component_labels
    gains: "list[dict[str, object]]" = []
    previous = 0.0
    for position in range(len(result.selected)):
        prefix = list(result.selected[: position + 1])
        value = selector.objective(weights, labels, prefix)
        gains.append(
            {
                "image": feature_sets[result.selected[position]].image_id,
                "gain": value - previous,
            }
        )
        previous = value
    chosen = set(result.selected)
    journal.emit(
        "ssmm.select",
        n_candidates=len(feature_sets),
        budget=result.budget,
        n_components=result.n_components,
        cut_threshold=cut_threshold,
        objective=result.objective,
        selected=[
            feature_sets[i].image_id for i in sorted(chosen)
        ],
        rejected=[
            feature_sets[i].image_id
            for i in range(len(feature_sets))
            if i not in chosen
        ],
        marginal_gains=gains,
    )
