"""ARD — Approximate Redundancy Detection (Section III-B).

Cross-batch redundancy detection (CBRD): the client queries the server
index with an image's features; if the maximum similarity exceeds the
EDR threshold ``T = 0.013 + 0.006 * Ebat``, the image is redundant and
is not uploaded.  Lowering ``T`` at low battery eliminates more images,
spending the scarce energy only on genuinely novel content.

In-batch redundancy detection (IBRD) is delegated to SSMM
(:mod:`repro.core.ssmm`); this module hosts the decision plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..features.base import FeatureSet
from ..index.index import QueryResult
from ..obs.journal import get_journal
from .policies import LinearPolicy, edr_policy

if TYPE_CHECKING:  # pragma: no cover
    from .server import BeesServer


@dataclass(frozen=True)
class CbrdDecision:
    """The verdict on one queried image."""

    image_id: str
    redundant: bool
    max_similarity: float
    threshold: float
    best_match_id: "str | None"


@dataclass
class CrossBatchDetector:
    """CBRD: query the server index, compare against the EDR threshold."""

    policy: LinearPolicy = field(default_factory=edr_policy)
    enabled: bool = True

    def threshold_for(self, ebat: float) -> float:
        """The EDR similarity threshold at the given battery level."""
        return self.policy(ebat)

    def decide(
        self, features: FeatureSet, server: "BeesServer", ebat: float
    ) -> CbrdDecision:
        """Query the server and classify the image.

        With CBRD disabled (ablation) every image is declared unique
        without touching the index.
        """
        threshold = self.threshold_for(ebat)
        if not self.enabled:
            return self._emit(
                CbrdDecision(
                    image_id=features.image_id,
                    redundant=False,
                    max_similarity=0.0,
                    threshold=threshold,
                    best_match_id=None,
                ),
                votes=0,
            )
        result: QueryResult = server.query_features(features)
        return self._classify(features, result, threshold)

    def decide_batch(
        self, feature_sets: "list[FeatureSet]", server: "BeesServer", ebat: float
    ) -> "list[CbrdDecision]":
        """Classify a whole batch through one batched server query.

        Decision-identical to calling :meth:`decide` per image at the
        same ``ebat`` (one battery reading covers one batch interval);
        the batched query lets a sharded server index serve the round
        in one fan-out.
        """
        threshold = self.threshold_for(ebat)
        if not self.enabled:
            return [
                self._emit(
                    CbrdDecision(
                        image_id=features.image_id,
                        redundant=False,
                        max_similarity=0.0,
                        threshold=threshold,
                        best_match_id=None,
                    ),
                    votes=0,
                )
                for features in feature_sets
            ]
        results = server.query_features_batch(feature_sets)
        return [
            self._classify(features, result, threshold)
            for features, result in zip(feature_sets, results)
        ]

    def _classify(
        self, features: FeatureSet, result: QueryResult, threshold: float
    ) -> CbrdDecision:
        return self._emit(
            CbrdDecision(
                image_id=features.image_id,
                redundant=result.best_similarity > threshold,
                max_similarity=result.best_similarity,
                threshold=threshold,
                best_match_id=result.best_id,
            ),
            votes=result.candidates_checked,
        )

    def _emit(self, decision: CbrdDecision, votes: int) -> CbrdDecision:
        """Journal the verdict; every construction path funnels through
        here so the decision journal never misses a CBRD outcome."""
        journal = get_journal()
        if journal.enabled:
            journal.emit(
                "cbrd.verdict",
                image_id=decision.image_id,
                redundant=decision.redundant,
                max_similarity=decision.max_similarity,
                threshold=decision.threshold,
                best_match=decision.best_match_id,
                votes=votes,
            )
        return decision
