"""The energy-aware adaptive policies (EAAS) — Section III.

Each of the three approximate stages carries one linear policy of the
remaining battery fraction ``Ebat``:

* **EAC** (energy-aware adaptive compression, in AFE):
  bitmap compression proportion ``C = 0.4 - 0.4 * Ebat``.
* **EDR** (energy-defined redundancy, in ARD):
  similarity threshold ``T = 0.013 + 0.006 * Ebat``; SSMM's graph-cut
  threshold ``Tw`` uses the same parameters.
* **EAU** (energy-aware adaptive uploading, in AIU):
  resolution compression proportion ``Cr = 0.8 - 0.8 * Ebat``.

The paper chose the constants so approximate-computing error stays
under the customary 10% bound: C <= 0.4 keeps detection precision above
90% (Figure 3), and T >= 0.013 keeps the false-positive rate near 10%
(Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..obs.journal import get_journal


@dataclass(frozen=True)
class LinearPolicy:
    """``value(ebat) = clip(intercept + slope * ebat, lo, hi)``.

    ``label`` names the policy in decision-journal events (``eac``,
    ``edr``, ``eau``, ``fixed``); it carries no behavioural weight.
    """

    intercept: float
    slope: float
    lo: float
    hi: float
    label: str = "linear"

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ConfigurationError(f"lo {self.lo} exceeds hi {self.hi}")

    def __call__(self, ebat: float) -> float:
        if not 0.0 <= ebat <= 1.0:
            raise ConfigurationError(f"Ebat must be in [0, 1], got {ebat}")
        value = self.intercept + self.slope * ebat
        value = min(self.hi, max(self.lo, value))
        journal = get_journal()
        if journal.enabled:
            journal.emit(
                "policy.applied",
                policy=self.label,
                ebat=ebat,
                value=value,
                intercept=self.intercept,
                slope=self.slope,
            )
        return value

    @classmethod
    def fixed(cls, value: float) -> "LinearPolicy":
        """A constant policy — what BEES-EA uses (no adaptation)."""
        return cls(intercept=value, slope=0.0, lo=value, hi=value, label="fixed")


def eac_policy() -> LinearPolicy:
    """EAC: bitmap compression proportion ``C = 0.4 - 0.4 * Ebat``."""
    return LinearPolicy(intercept=0.4, slope=-0.4, lo=0.0, hi=0.4, label="eac")


def edr_policy() -> LinearPolicy:
    """EDR: similarity threshold ``T = 0.013 + 0.006 * Ebat``."""
    return LinearPolicy(
        intercept=0.013, slope=0.006, lo=0.013, hi=0.019, label="edr"
    )


def ssmm_cut_policy() -> LinearPolicy:
    """SSMM's graph-cut threshold ``Tw`` — same parameters as EDR."""
    return LinearPolicy(
        intercept=0.013, slope=0.006, lo=0.013, hi=0.019, label="ssmm_cut"
    )


def eau_policy() -> LinearPolicy:
    """EAU: resolution compression proportion ``Cr = 0.8 - 0.8 * Ebat``."""
    return LinearPolicy(intercept=0.8, slope=-0.8, lo=0.0, hi=0.8, label="eau")
