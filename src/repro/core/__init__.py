"""The paper's contribution: the BEES pipeline and its stages."""

from .afe import AfeResult, ApproximateFeatureExtraction
from .aiu import AiuResult, ApproximateImageUploading, fitted_quality_size_factor
from .ard import CbrdDecision, CrossBatchDetector
from .client import BeesScheme
from .config import DEFAULT_QUALITY_PROPORTION, BeesConfig
from .policies import (
    LinearPolicy,
    eac_policy,
    eau_policy,
    edr_policy,
    ssmm_cut_policy,
)
from .server import BeesServer
from .ssmm import (
    SsmmResult,
    SubmodularSelector,
    partition_components,
    select_unique_subset,
    similarity_matrix,
)

__all__ = [
    "AfeResult",
    "AiuResult",
    "ApproximateFeatureExtraction",
    "ApproximateImageUploading",
    "BeesConfig",
    "BeesScheme",
    "BeesServer",
    "CbrdDecision",
    "CrossBatchDetector",
    "DEFAULT_QUALITY_PROPORTION",
    "LinearPolicy",
    "SsmmResult",
    "SubmodularSelector",
    "eac_policy",
    "eau_policy",
    "edr_policy",
    "fitted_quality_size_factor",
    "partition_components",
    "select_unique_subset",
    "similarity_matrix",
    "ssmm_cut_policy",
]
