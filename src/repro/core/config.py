"""BEES configuration.

One dataclass gathers every knob of the pipeline; the ``ea_disabled``
constructor builds the BEES-EA ablation (all policies pinned at their
full-battery values), and the three ``enable_*`` flags support the
component ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from .policies import LinearPolicy, eac_policy, eau_policy, edr_policy, ssmm_cut_policy

#: The fixed JPEG quality-compression proportion (Section III-C suggests
#: 0.85: beyond it image quality degrades sharply).
DEFAULT_QUALITY_PROPORTION = 0.85

#: The EDR similarity-threshold band, derived from the policy itself so
#: the linear coefficients stay literal in exactly one module
#: (:mod:`repro.core.policies`).  ``MIN`` is T at Ebat = 0 (aggressive
#: elimination), ``MAX`` is T at Ebat = 1 — the *strictest* operating
#: point, which the fixed-threshold baselines (SmartEye, MRC) and
#: BEES-EA all pin so every scheme detects the same planted redundancy.
EDR_THRESHOLD_MIN = edr_policy()(0.0)
EDR_THRESHOLD_MAX = edr_policy()(1.0)

#: Proportions at which AIU's fitted quality-size curve is sampled (the
#: sweep of Figure 5(a), anchored on the fixed quality proportion).
FIT_PROPORTIONS = (0.0, 0.2, 0.4, 0.6, 0.8, DEFAULT_QUALITY_PROPORTION, 0.9, 0.95)


@dataclass(frozen=True)
class BeesConfig:
    """All tunables of the BEES pipeline."""

    eac: LinearPolicy = field(default_factory=eac_policy)
    edr: LinearPolicy = field(default_factory=edr_policy)
    ssmm_cut: LinearPolicy = field(default_factory=ssmm_cut_policy)
    eau: LinearPolicy = field(default_factory=eau_policy)
    quality_proportion: float = DEFAULT_QUALITY_PROPORTION
    #: Component toggles (for ablations; all on in BEES proper).
    enable_afe: bool = True
    enable_cbrd: bool = True
    enable_ssmm: bool = True
    enable_aiu: bool = True
    #: Run the real DCT codec for quality compression (exact) or use the
    #: fitted size curve (fast — large simulations).
    exact_codec: bool = True
    #: SSMM budget rule: "components" (the paper's adaptive rule) or a
    #: fixed positive integer for the fixed-budget ablation.
    ssmm_budget: object = "components"

    def __post_init__(self) -> None:
        if not 0.0 <= self.quality_proportion <= 0.95:
            raise ConfigurationError(
                f"quality_proportion must be in [0, 0.95], got {self.quality_proportion}"
            )
        if self.ssmm_budget != "components":
            if not isinstance(self.ssmm_budget, int) or self.ssmm_budget < 1:
                raise ConfigurationError(
                    "ssmm_budget must be 'components' or a positive int, "
                    f"got {self.ssmm_budget!r}"
                )

    @classmethod
    def ea_disabled(cls, **overrides) -> "BeesConfig":
        """The BEES-EA configuration: no energy-aware adaptation.

        Every policy is pinned at its full-battery (Ebat = 1) value, so
        the pipeline still eliminates redundancy and compresses uploads
        but never trades quality for energy as the battery drains.
        """
        defaults = dict(
            eac=LinearPolicy.fixed(eac_policy()(1.0)),
            edr=LinearPolicy.fixed(edr_policy()(1.0)),
            ssmm_cut=LinearPolicy.fixed(ssmm_cut_policy()(1.0)),
            eau=LinearPolicy.fixed(eau_policy()(1.0)),
        )
        defaults.update(overrides)
        return cls(**defaults)
