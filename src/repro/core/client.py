"""The BEES client — the full smartphone pipeline of Figure 2.

For every batch:

1. **AFE** extracts ORB features from EAC-compressed bitmaps.
2. The features are uploaded and **CBRD** classifies each image against
   the server index with the EDR threshold.
3. **IBRD/SSMM** summarises the surviving (unique-so-far) images,
   keeping one representative per similarity component.
4. **AIU** quality- and resolution-compresses each selected image, and
   the result goes up the uplink; the server indexes its features.

Every stage reads the *current* battery fraction, so the pipeline's
behaviour genuinely adapts as energy drains mid-batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baselines.base import BatchReport, SharingScheme
from ..energy import COMPRESSION, FEATURE_EXTRACTION, FEATURE_UPLOAD, IMAGE_UPLOAD
from ..features.sizes import nominal_feature_bytes
from ..imaging.image import Image
from ..obs.runtime import get_obs
from ..sim.device import Smartphone
from .afe import ApproximateFeatureExtraction
from .aiu import ApproximateImageUploading
from .ard import CrossBatchDetector
from .config import BeesConfig
from .server import BeesServer
from .ssmm import SubmodularSelector, select_unique_subset


@dataclass
class BeesScheme(SharingScheme):
    """BEES, assembled from its three approximate stages."""

    config: BeesConfig = field(default_factory=BeesConfig)
    selector: SubmodularSelector = field(default_factory=SubmodularSelector)
    name: str = "BEES"

    def __post_init__(self) -> None:
        self.afe = ApproximateFeatureExtraction(
            policy=self.config.eac, enabled=self.config.enable_afe
        )
        self.cbrd = CrossBatchDetector(
            policy=self.config.edr, enabled=self.config.enable_cbrd
        )
        self.aiu = ApproximateImageUploading(
            quality_proportion=self.config.quality_proportion,
            policy=self.config.eau,
            enabled=self.config.enable_aiu,
            exact_codec=self.config.exact_codec,
        )

    # -- pipeline ------------------------------------------------------------

    def process_batch(
        self, device: Smartphone, server: BeesServer, images: "list[Image]"
    ) -> BatchReport:
        report = BatchReport(scheme=self.name, n_images=len(images))
        before = device.meter.snapshot()
        before_bytes = device.uplink.sent_bytes
        self.afe.cost_model = device.cost_model
        self.aiu.cost_model = device.cost_model
        obs = get_obs()

        with obs.span(
            "bees.batch", scheme=self.name, n_images=len(images), ebat=device.ebat
        ) as batch_span:
            # Stage 1 + 2: AFE extraction, feature upload, CBRD verdicts.
            survivors: list[tuple[Image, object]] = []
            per_image = {}
            for image in images:
                if not device.alive:
                    report.halted = True
                    break
                with obs.span(
                    "bees.afe", image_id=image.image_id, ebat=device.ebat
                ) as span:
                    afe_result = self.afe.extract(image, device.ebat)
                    afe_seconds = afe_result.cost.seconds
                    alive = device.spend(afe_result.cost, FEATURE_EXTRACTION)
                    span.set_attribute("sim_seconds", afe_seconds)
                    span.set_attribute(
                        "compression", afe_result.compression_proportion
                    )
                if not alive:
                    report.halted = True
                    break
                payload = nominal_feature_bytes(
                    afe_result.features.kind,
                    len(afe_result.features),
                    max(1, image.pixels),
                    image.nominal_pixels,
                )
                with obs.span(
                    "bees.feature_upload", image_id=image.image_id, bytes=payload
                ):
                    transfer = device.upload(
                        payload + server.query_response_bytes, FEATURE_UPLOAD
                    )
                if transfer is None:
                    report.halted = True
                    break
                with obs.span("bees.cbrd", image_id=image.image_id) as span:
                    decision = self.cbrd.decide(
                        afe_result.features, server, device.ebat
                    )
                    span.set_attribute("redundant", decision.redundant)
                    span.set_attribute("max_similarity", decision.max_similarity)
                    span.set_attribute("threshold", decision.threshold)
                if obs.enabled:
                    obs.observe_stage(self.name, "afe", afe_seconds)
                    obs.observe_stage(self.name, "feature_upload", transfer.seconds)
                seconds = afe_seconds + transfer.seconds
                if decision.redundant:
                    # Detection-phase time of an eliminated image is
                    # elimination overhead, not that image's upload delay.
                    report.elimination_seconds += seconds
                    report.eliminated_cross_batch.append(image.image_id)
                else:
                    per_image[image.image_id] = seconds
                    survivors.append((image, afe_result.features))

            # Stage 3: IBRD via SSMM over the cross-batch-unique survivors.
            if survivors and self.config.enable_ssmm and not report.halted:
                with obs.span(
                    "bees.ssmm", n_candidates=len(survivors), ebat=device.ebat
                ) as span:
                    cut = self.config.ssmm_cut(device.ebat)
                    result = select_unique_subset(
                        [features for _, features in survivors],
                        cut_threshold=cut,
                        selector=self.selector,
                        budget=self.config.ssmm_budget,
                    )
                    chosen = set(result.selected)
                    span.set_attribute("n_selected", len(chosen))
                selected = [survivors[i] for i in sorted(chosen)]
                report.eliminated_in_batch.extend(
                    survivors[i][0].image_id
                    for i in range(len(survivors))
                    if i not in chosen
                )
            else:
                selected = survivors

            # Stage 4: AIU compression and image upload.
            for image, features in selected:
                if not device.alive:
                    report.halted = True
                    break
                with obs.span(
                    "bees.aiu", image_id=image.image_id, ebat=device.ebat
                ) as span:
                    aiu_result = self.aiu.prepare(image, device.ebat)
                    aiu_seconds = aiu_result.cost.seconds
                    alive = device.spend(aiu_result.cost, COMPRESSION)
                    span.set_attribute("sim_seconds", aiu_seconds)
                    span.set_attribute("upload_bytes", aiu_result.upload_bytes)
                if not alive:
                    report.halted = True
                    break
                with obs.span(
                    "bees.image_upload",
                    image_id=image.image_id,
                    bytes=aiu_result.upload_bytes,
                ):
                    transfer = device.upload(aiu_result.upload_bytes, IMAGE_UPLOAD)
                if transfer is None:
                    report.halted = True
                    break
                if obs.enabled:
                    obs.observe_stage(self.name, "aiu", aiu_seconds)
                    obs.observe_stage(self.name, "image_upload", transfer.seconds)
                per_image[image.image_id] = (
                    per_image.get(image.image_id, 0.0) + aiu_seconds + transfer.seconds
                )
                server.receive_image(
                    aiu_result.image, features, received_bytes=aiu_result.upload_bytes
                )
                report.uploaded_ids.append(image.image_id)

            report.per_image_seconds = list(per_image.values())
            report.total_seconds = float(sum(per_image.values()))
            report.sent_bytes = device.uplink.sent_bytes - before_bytes
            report.energy_by_category = device.meter.since(before)
            batch_span.set_attribute("bytes_sent", report.sent_bytes)
            batch_span.set_attribute("n_uploaded", report.n_uploaded)
            batch_span.set_attribute(
                "n_eliminated_cross", len(report.eliminated_cross_batch)
            )
            batch_span.set_attribute(
                "n_eliminated_in_batch", len(report.eliminated_in_batch)
            )
            batch_span.set_attribute("halted", report.halted)
        return self.observe_batch(report)
