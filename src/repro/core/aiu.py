"""AIU — Approximate Image Uploading (Section III-C).

Unique images are compressed twice before transmission:

* **quality compression** at a fixed proportion (0.85 — beyond it SSIM
  collapses, Figure 5(a)), and
* **resolution compression** at the EAU proportion
  ``Cr = 0.8 - 0.8 * Ebat`` — lower battery, lower resolution, smaller
  upload (Figure 5(b)); the loss is unrecoverable, which is exactly the
  trade AIS makes.

``exact_codec=False`` replaces the DCT round-trip with a fitted
size-factor curve (measured once from the real codec on a reference
scene) for large-scale simulations where only the byte count matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from ..energy import EnergyCostModel, WorkCost, ZERO_COST
from ..imaging import jpeg
from ..imaging.image import Image
from ..imaging.resolution import compress_resolution
from ..obs.journal import get_journal
from .config import DEFAULT_QUALITY_PROPORTION, FIT_PROPORTIONS
from .policies import LinearPolicy, eau_policy


@lru_cache(maxsize=1)
def _fitted_quality_curve() -> "tuple[np.ndarray, np.ndarray]":
    """(proportions, size factors) of the codec on a reference scene."""
    from ..imaging.synth import SceneGenerator  # local import: avoid cycle

    reference = SceneGenerator().view(424_242, 0)
    factors = [jpeg.size_factor(reference, p) for p in FIT_PROPORTIONS]
    return np.array(FIT_PROPORTIONS), np.array(factors)


def fitted_quality_size_factor(proportion: float) -> float:
    """Interpolated file-size multiplier of quality compression."""
    xs, ys = _fitted_quality_curve()
    return float(np.interp(proportion, xs, ys))


@dataclass(frozen=True)
class AiuResult:
    """The prepared upload: final image + what preparing it cost."""

    image: Image
    quality_proportion: float
    resolution_proportion: float
    cost: WorkCost

    @property
    def upload_bytes(self) -> int:
        """Bytes that will hit the uplink."""
        return self.image.nominal_bytes


@dataclass
class ApproximateImageUploading:
    """The AIU stage: quality + EAU resolution compression."""

    quality_proportion: float = DEFAULT_QUALITY_PROPORTION
    policy: LinearPolicy = field(default_factory=eau_policy)
    cost_model: EnergyCostModel = field(default_factory=EnergyCostModel)
    enabled: bool = True
    exact_codec: bool = True

    def resolution_proportion_for(self, ebat: float) -> float:
        """The EAU resolution compression proportion."""
        if not self.enabled:
            return 0.0
        return self.policy(ebat)

    def prepare(self, image: Image, ebat: float) -> AiuResult:
        """Compress *image* for upload at the current battery level."""
        if not self.enabled:
            return self._emit(
                AiuResult(
                    image=image,
                    quality_proportion=0.0,
                    resolution_proportion=0.0,
                    cost=ZERO_COST,
                ),
                source=image,
                ebat=ebat,
                mode="passthrough",
            )
        resolution_proportion = self.resolution_proportion_for(ebat)
        # Resolution first: the quality encode then runs over fewer
        # pixels, which is also the cheaper CPU order.
        prepared = image
        cost = ZERO_COST
        if resolution_proportion > 0.0:
            prepared = compress_resolution(prepared, resolution_proportion)
            cost = cost + self.cost_model.compression_cost(image.nominal_pixels)
        if self.quality_proportion > 0.0:
            if self.exact_codec:
                prepared = jpeg.compress_quality(prepared, self.quality_proportion)
            else:
                factor = fitted_quality_size_factor(self.quality_proportion)
                prepared = prepared.with_bitmap(
                    prepared.bitmap,
                    nominal_bytes=prepared.scaled_nominal_bytes(factor),
                )
            cost = cost + self.cost_model.compression_cost(prepared.nominal_pixels)
        return self._emit(
            AiuResult(
                image=prepared,
                quality_proportion=self.quality_proportion,
                resolution_proportion=resolution_proportion,
                cost=cost,
            ),
            source=image,
            ebat=ebat,
            mode="transmit",
        )

    def _emit(
        self, result: AiuResult, source: Image, ebat: float, mode: str
    ) -> AiuResult:
        """Journal the transmit/passthrough decision with bitmap sizes."""
        journal = get_journal()
        if journal.enabled:
            journal.emit(
                "aiu.prepare",
                image_id=source.image_id,
                mode=mode,
                ebat=ebat,
                quality=result.quality_proportion,
                resolution=result.resolution_proportion,
                input_pixels=source.nominal_pixels,
                output_pixels=result.image.nominal_pixels,
                input_bytes=source.nominal_bytes,
                upload_bytes=result.upload_bytes,
            )
        return result
