"""beeslint suppression comments.

Three forms, mirroring the linters people already know:

* ``# beeslint: disable=rule-a,rule-b`` — suppress on that line only;
* ``# beeslint: disable`` — suppress every rule on that line;
* ``# beeslint: disable-file=rule-a`` — suppress for the whole file
  (typically placed in the module docstring area or near the top).

Suppressions are matched by rule slug or ``BEESnnn`` code.  They are
parsed from the token stream (not by regex over raw lines) so the
directive is only honoured inside real comments, never in strings.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from .findings import Finding

_DIRECTIVE = "beeslint:"

#: What a rule key may look like: a slug (``lock-discipline``) or a
#: code (``BEES109``).  Anything else in the rule list is treated as
#: free-form justification text and skipped.
_RULE_KEY = re.compile(r"^(?:[a-z][a-z0-9]*(?:-[a-z0-9]+)*|BEES[0-9]+)$")


@dataclass(frozen=True)
class SuppressionTable:
    """Which rules are silenced where, for one file."""

    #: line number -> frozenset of rule keys ("*" means every rule).
    by_line: "dict[int, frozenset[str]]" = field(default_factory=dict)
    #: file-wide suppressed rule keys.
    file_wide: "frozenset[str]" = frozenset()

    def suppresses(self, finding: Finding, aliases: "dict[str, str]") -> bool:
        """True when *finding* is silenced by a directive.

        *aliases* maps every accepted key (slug and code) to the
        canonical slug, so ``disable=BEES101`` silences
        ``paper-constants`` findings and vice versa.
        """
        canonical = finding.rule
        for keys in (self.file_wide, self.by_line.get(finding.line, frozenset())):
            if "*" in keys:
                return True
            if any(aliases.get(key) == canonical for key in keys):
                return True
        return False


def _parse_directive(comment: str) -> "tuple[str, frozenset[str]] | None":
    """``# beeslint: disable=a,b`` -> ("line", {"a", "b"}), else None."""
    text = comment.lstrip("#").strip()
    if not text.startswith(_DIRECTIVE):
        return None
    body = text[len(_DIRECTIVE):].strip()
    verb, sep, raw_rules = body.partition("=")
    verb = verb.strip()
    if verb == "disable":
        scope = "line"
    elif verb == "disable-file":
        scope = "file"
    else:
        return None
    if not sep:
        return scope, frozenset({"*"})
    # Each comma-separated entry names one rule; anything after the
    # first whitespace of an entry is free-form justification:
    # ``disable=paper-constants (coincidental bound), unit-suffix``.
    # An entry that does not look like a slug or BEESnnn code is
    # dropped, and a directive with ``=`` but no valid key suppresses
    # *nothing* — a typo must never widen into a wildcard.
    rules = frozenset(
        entry.split()[0]
        for entry in raw_rules.split(",")
        if entry.strip() and _RULE_KEY.match(entry.split()[0])
    )
    return scope, rules


def parse_suppressions(source: str) -> SuppressionTable:
    """Scan *source* for beeslint directives."""
    by_line: "dict[int, frozenset[str]]" = {}
    file_wide: "frozenset[str]" = frozenset()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            parsed = _parse_directive(token.string)
            if parsed is None:
                continue
            scope, rules = parsed
            if scope == "file":
                file_wide = file_wide | rules
            else:
                line = token.start[0]
                by_line[line] = by_line.get(line, frozenset()) | rules
    except tokenize.TokenError:
        # A file that fails to tokenize will fail to parse too; the
        # engine reports that as a file error, so stay silent here.
        pass
    return SuppressionTable(by_line=by_line, file_wide=file_wide)
