"""The content-hash incremental cache behind ``repro lint``.

Full-repo whole-program analysis is cheap enough for CI but not free;
pre-commit wants the warm path to cost almost nothing.  The cache maps
every checked file to its findings, keyed by

* the file's own content digest (blake2b over the source bytes), and
* the **project digest** — a digest over every project file's
  ``(path, digest)`` pair — because the flow rules' verdicts on one
  file legitimately depend on code in others (a callee's return unit,
  a class's lock discipline).

A warm rerun with nothing changed hits on every file and skips rule
execution *and* project construction entirely; touching any file's
content invalidates that file's entry directly and every other file's
entry through the project digest — conservative, sound, and exactly
what the incremental tests pin.  Entries are additionally salted with
the active rule set and :data:`ANALYSIS_VERSION`, so changing either
the selection or the analyses themselves never serves stale findings.

The cache lives in a gitignored ``.beeslint_cache/`` directory as one
JSON document; a corrupt or foreign-schema file is treated as empty
rather than trusted.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Iterable

from ..findings import FileReport, Finding

#: Bump when any analysis' semantics change, so stale caches can never
#: mask (or invent) findings across a beeslint upgrade.
ANALYSIS_VERSION = 1

#: On-disk document version.
CACHE_SCHEMA = 1

#: Default cache directory basename (created next to the lint root).
CACHE_DIR_NAME = ".beeslint_cache"


def file_digest(source: str) -> str:
    """The content digest of one source file."""
    return hashlib.blake2b(source.encode("utf-8"), digest_size=16).hexdigest()


def project_digest(digests: "dict[str, str]") -> str:
    """One digest over every project file's (path, digest) pair."""
    hasher = hashlib.blake2b(digest_size=16)
    for path in sorted(digests):
        hasher.update(path.replace(os.sep, "/").encode("utf-8"))
        hasher.update(b"\0")
        hasher.update(digests[path].encode("ascii"))
        hasher.update(b"\n")
    return hasher.hexdigest()


def rule_salt(rule_keys: "Iterable[str]") -> str:
    """The cache salt of one active rule set."""
    return f"v{ANALYSIS_VERSION}:" + ",".join(sorted(rule_keys))


class LintCache:
    """One load-mutate-save cycle over the cache document."""

    def __init__(self, directory: str, salt: str) -> None:
        self.directory = directory
        self.salt = salt
        self.path = os.path.join(directory, "cache.json")
        self.hits = 0
        self.misses = 0
        self._entries: "dict[str, dict[str, object]]" = {}
        self._load()

    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            return
        if (
            not isinstance(document, dict)
            or document.get("schema") != CACHE_SCHEMA
            or document.get("salt") != self.salt
        ):
            return
        entries = document.get("entries")
        if isinstance(entries, dict):
            self._entries = entries

    # -- lookup / store ------------------------------------------------------

    def lookup(
        self, path: str, digest: str, project: "str | None"
    ) -> "FileReport | None":
        """The cached report for *path*, or None on any key mismatch."""
        entry = self._entries.get(path)
        if (
            entry is None
            or entry.get("file") != digest
            or entry.get("project") != project
        ):
            self.misses += 1
            return None
        self.hits += 1
        findings = tuple(
            Finding(
                path=str(raw["path"]),
                line=int(raw["line"]),  # type: ignore[call-overload]
                col=int(raw["col"]),  # type: ignore[call-overload]
                rule=str(raw["rule"]),
                message=str(raw["message"]),
            )
            for raw in entry.get("findings", ())  # type: ignore[union-attr]
        )
        error = entry.get("error")
        return FileReport(
            path=path,
            findings=findings,
            error=None if error is None else str(error),
        )

    def store(
        self, report: FileReport, digest: str, project: "str | None"
    ) -> None:
        """Record one freshly-computed report."""
        self._entries[report.path] = {
            "file": digest,
            "project": project,
            "findings": [finding.as_dict() for finding in report.findings],
            "error": report.error,
        }

    def save(self) -> None:
        """Write the document back (atomically, best-effort)."""
        os.makedirs(self.directory, exist_ok=True)
        document = {
            "schema": CACHE_SCHEMA,
            "salt": self.salt,
            "entries": self._entries,
        }
        tmp_path = self.path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=None, sort_keys=True)
        os.replace(tmp_path, self.path)
