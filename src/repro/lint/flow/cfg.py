"""Per-function control-flow graphs for the flow rules.

One :class:`CFG` per function: basic blocks of statements joined by
edges for branches, loops (``while``/``for`` with their ``else``
clauses and ``break``/``continue``), ``try``/``except``/``else``/
``finally``, and early ``return``/``raise``.  Two annotations ride on
every block because the flow rules need them constantly:

* ``with_contexts`` — the unparsed context-manager expressions of every
  enclosing ``with`` statement.  A block never spans a ``with``
  boundary, so the set is uniform over the block; BEES109 reads lock
  regions straight off it, and because the region is carried through
  the CFG (not recomputed lexically) an early ``return`` inside a
  locked body keeps its held set while the fall-through after the
  ``with`` does not.
* ``loops`` — the enclosing ``for``/``while`` statements, innermost
  last, used by BEES111 to spot accumulation inside an
  unordered-iteration loop.

Exception edges are approximated the standard way: every block of a
``try`` body may jump to every handler (any statement can raise), and
``finally`` is a join block all normal and handler exits pass through.
``return`` inside ``try``/``finally`` edges straight to the exit block
— coarse, but conservative for every analysis built on top (it only
*adds* paths).

Unreachable blocks (code after a terminator) are pruned so the
published graph is connected from the entry block — the property the
hypothesis suite pins for arbitrary generated functions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: Statement types that end a block and never fall through.
_TERMINATORS = (ast.Return, ast.Raise, ast.Break, ast.Continue)

_FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass
class Block:
    """One basic block: straight-line statements plus CFG edges."""

    block_id: int
    statements: "list[ast.stmt]" = field(default_factory=list)
    successors: "set[int]" = field(default_factory=set)
    predecessors: "set[int]" = field(default_factory=set)
    #: Unparsed context-manager expressions of enclosing ``with``s.
    with_contexts: "frozenset[str]" = frozenset()
    #: Enclosing loop statements, outermost first.
    loops: "tuple[ast.stmt, ...]" = ()


@dataclass
class CFG:
    """The control-flow graph of one function body."""

    func: "ast.FunctionDef | ast.AsyncFunctionDef"
    blocks: "dict[int, Block]"
    entry: int
    exit: int
    #: ``id(stmt)`` -> block id, for reachable statements only.
    _stmt_blocks: "dict[int, int]" = field(default_factory=dict)

    def block_of(self, stmt: ast.stmt) -> "Block | None":
        """The block holding *stmt*, or None for unreachable code."""
        block_id = self._stmt_blocks.get(id(stmt))
        return None if block_id is None else self.blocks[block_id]

    def reverse_postorder(self) -> "list[int]":
        """Block ids in reverse postorder from the entry (stable)."""
        seen: "set[int]" = set()
        order: "list[int]" = []

        def visit(block_id: int) -> None:
            seen.add(block_id)
            for succ in sorted(self.blocks[block_id].successors):
                if succ not in seen:
                    visit(succ)
            order.append(block_id)

        visit(self.entry)
        return list(reversed(order))

    def dominators(self) -> "dict[int, set[int]]":
        """block id -> the set of blocks dominating it (inclusive).

        Classic iterative dataflow: ``dom(entry) = {entry}``,
        ``dom(b) = {b} ∪ ⋂ dom(preds)``.  BEES109's "access dominated
        by the lock acquisition" question reduces to membership here.
        """
        all_ids = set(self.blocks)
        dom: "dict[int, set[int]]" = {
            block_id: set(all_ids) for block_id in all_ids
        }
        dom[self.entry] = {self.entry}
        order = self.reverse_postorder()
        changed = True
        while changed:
            changed = False
            for block_id in order:
                if block_id == self.entry:
                    continue
                preds = [
                    p
                    for p in self.blocks[block_id].predecessors
                    if p in dom
                ]
                if preds:
                    new = set.intersection(*(dom[p] for p in preds))
                else:  # pragma: no cover - pruned graphs keep preds
                    new = set()
                new.add(block_id)
                if new != dom[block_id]:
                    dom[block_id] = new
                    changed = True
        return dom

    def statements(self) -> "list[tuple[Block, ast.stmt]]":
        """Every reachable (block, statement) pair, in block id order."""
        pairs = []
        for block_id in sorted(self.blocks):
            for stmt in self.blocks[block_id].statements:
                pairs.append((self.blocks[block_id], stmt))
        return pairs


class _Builder:
    """Single-use recursive CFG builder for one function."""

    def __init__(self, func: "ast.FunctionDef | ast.AsyncFunctionDef") -> None:
        self.func = func
        self.blocks: "dict[int, Block]" = {}
        self.next_id = 0
        self.with_stack: "list[str]" = []
        self.loop_stack: "list[tuple[int, int, ast.stmt]]" = []
        self.stmt_blocks: "dict[int, int]" = {}

    # -- plumbing ------------------------------------------------------------

    def new_block(self) -> int:
        block = Block(
            block_id=self.next_id,
            with_contexts=frozenset(self.with_stack),
            loops=tuple(item[2] for item in self.loop_stack),
        )
        self.blocks[block.block_id] = block
        self.next_id += 1
        return block.block_id

    def edge(self, src: int, dst: int) -> None:
        self.blocks[src].successors.add(dst)
        self.blocks[dst].predecessors.add(src)

    def place(self, stmt: ast.stmt, block_id: int) -> None:
        self.blocks[block_id].statements.append(stmt)
        self.stmt_blocks[id(stmt)] = block_id

    # -- construction --------------------------------------------------------

    def build(self) -> CFG:
        entry = self.new_block()
        self.exit_id = self.new_block()
        end = self.visit_body(self.func.body, entry)
        if end is not None:
            self.edge(end, self.exit_id)
        cfg = CFG(
            func=self.func,
            blocks=self.blocks,
            entry=entry,
            exit=self.exit_id,
            _stmt_blocks=self.stmt_blocks,
        )
        _prune_unreachable(cfg)
        return cfg

    def visit_body(
        self, body: "list[ast.stmt]", current: "int | None"
    ) -> "int | None":
        """Thread *body* through the graph; returns the fall-through
        block, or None when every path terminated."""
        for stmt in body:
            if current is None:
                # Code after a terminator: build it (so nested
                # structures stay well-formed) in an orphan block that
                # pruning removes.
                current = self.new_block()
            current = self.visit_stmt(stmt, current)
        return current

    def visit_stmt(self, stmt: ast.stmt, current: int) -> "int | None":
        if isinstance(stmt, ast.If):
            return self._visit_if(stmt, current)
        if isinstance(stmt, ast.While):
            return self._visit_while(stmt, current)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._visit_for(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._visit_with(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._visit_try(stmt, current)
        if isinstance(stmt, _TERMINATORS):
            self.place(stmt, current)
            if isinstance(stmt, (ast.Return, ast.Raise)) or not self.loop_stack:
                # break/continue outside a loop parses (ast.parse does
                # not reject it) but can never run; edge to the exit.
                self.edge(current, self.exit_id)
            elif isinstance(stmt, ast.Break):
                self.edge(current, self.loop_stack[-1][1])
            else:  # Continue
                self.edge(current, self.loop_stack[-1][0])
            return None
        # Simple statements — including nested function/class
        # definitions, whose bodies are separate scopes with their own
        # CFGs (see iter_function_nodes).
        self.place(stmt, current)
        return current

    def _visit_if(self, stmt: ast.If, current: int) -> "int | None":
        self.place(stmt, current)  # the test expression evaluates here
        after = self.new_block()
        then_entry = self.new_block()
        self.edge(current, then_entry)
        then_end = self.visit_body(stmt.body, then_entry)
        if then_end is not None:
            self.edge(then_end, after)
        if stmt.orelse:
            else_entry = self.new_block()
            self.edge(current, else_entry)
            else_end = self.visit_body(stmt.orelse, else_entry)
            if else_end is not None:
                self.edge(else_end, after)
        else:
            self.edge(current, after)
        return after

    def _visit_while(self, stmt: ast.While, current: int) -> "int | None":
        header = self.new_block()
        self.edge(current, header)
        self.place(stmt, header)  # the test re-evaluates every trip
        after = self.new_block()
        self.loop_stack.append((header, after, stmt))
        body_entry = self.new_block()
        body_end = self.visit_body(stmt.body, body_entry)
        self.loop_stack.pop()
        self.edge(header, body_entry)
        if body_end is not None:
            self.edge(body_end, header)
        # ``while .. else``: the else clause runs on normal loop exit
        # (test false), and ``break`` skips it — hence else hangs off
        # the header while break edges target ``after`` directly.
        if stmt.orelse:
            else_entry = self.new_block()
            self.edge(header, else_entry)
            else_end = self.visit_body(stmt.orelse, else_entry)
            if else_end is not None:
                self.edge(else_end, after)
        else:
            self.edge(header, after)
        return after

    def _visit_for(
        self, stmt: "ast.For | ast.AsyncFor", current: int
    ) -> "int | None":
        header = self.new_block()
        self.edge(current, header)
        self.place(stmt, header)  # iterator advance + target bind
        after = self.new_block()
        self.loop_stack.append((header, after, stmt))
        body_entry = self.new_block()
        body_end = self.visit_body(stmt.body, body_entry)
        self.loop_stack.pop()
        self.edge(header, body_entry)
        if body_end is not None:
            self.edge(body_end, header)
        if stmt.orelse:
            else_entry = self.new_block()
            self.edge(header, else_entry)
            else_end = self.visit_body(stmt.orelse, else_entry)
            if else_end is not None:
                self.edge(else_end, after)
        else:
            self.edge(header, after)
        return after

    def _visit_with(
        self, stmt: "ast.With | ast.AsyncWith", current: int
    ) -> "int | None":
        self.place(stmt, current)  # context expressions evaluate here
        contexts = [ast.unparse(item.context_expr) for item in stmt.items]
        self.with_stack.extend(contexts)
        body_entry = self.new_block()
        body_end = self.visit_body(stmt.body, body_entry)
        del self.with_stack[len(self.with_stack) - len(contexts):]
        self.edge(current, body_entry)
        after = self.new_block()
        if body_end is not None:
            self.edge(body_end, after)
        return after

    def _visit_try(self, stmt: ast.Try, current: int) -> "int | None":
        self.place(stmt, current)
        body_entry = self.new_block()
        self.edge(current, body_entry)
        before = set(self.blocks)
        body_end = self.visit_body(stmt.body, body_entry)
        body_blocks = [
            block_id
            for block_id in self.blocks
            if block_id not in before or block_id == body_entry
        ]
        after = self.new_block()
        # The block every normal/handler path funnels through: the
        # ``finally`` body when present, else the plain after block.
        if stmt.finalbody:
            final_entry = self.new_block()
            final_end = self.visit_body(stmt.finalbody, final_entry)
            if final_end is not None:
                self.edge(final_end, after)
            join = final_entry
        else:
            join = after
        handler_entries = []
        for handler in stmt.handlers:
            handler_entry = self.new_block()
            handler_entries.append(handler_entry)
            handler_end = self.visit_body(handler.body, handler_entry)
            if handler_end is not None:
                self.edge(handler_end, join)
        # Any statement of the try body may raise into any handler.
        for block_id in body_blocks:
            for handler_entry in handler_entries:
                self.edge(block_id, handler_entry)
        if body_end is not None:
            if stmt.orelse:
                else_entry = self.new_block()
                self.edge(body_end, else_entry)
                else_end = self.visit_body(stmt.orelse, else_entry)
                if else_end is not None:
                    self.edge(else_end, join)
            else:
                self.edge(body_end, join)
        elif not stmt.handlers and not stmt.orelse and stmt.finalbody:
            # try/finally whose body always terminates: the finally
            # still runs; approximate with an edge into the join.
            self.edge(body_entry, join)
        return after


def _prune_unreachable(cfg: CFG) -> None:
    """Drop blocks unreachable from the entry (dead code)."""
    reachable = {cfg.entry}
    stack = [cfg.entry]
    while stack:
        for succ in cfg.blocks[stack.pop()].successors:
            if succ not in reachable:
                reachable.add(succ)
                stack.append(succ)
    reachable.add(cfg.exit)  # keep the exit even for infinite loops
    for block_id in list(cfg.blocks):
        if block_id in reachable:
            cfg.blocks[block_id].predecessors &= reachable
            continue
        for stmt in cfg.blocks[block_id].statements:
            cfg._stmt_blocks.pop(id(stmt), None)
        del cfg.blocks[block_id]


def build_cfg(func: "ast.FunctionDef | ast.AsyncFunctionDef") -> CFG:
    """Build the CFG of one function definition."""
    return _Builder(func).build()


def build_module_cfg(tree: ast.Module) -> CFG:
    """The CFG of a module's top-level statements.

    Wraps the body in a synthetic zero-argument function so module
    scope flows through the same machinery as any other scope (nested
    ``def``/``class`` bodies stay opaque, as everywhere else).
    """
    synthetic = ast.FunctionDef(
        name="<module>",
        args=ast.arguments(
            posonlyargs=[], args=[], kwonlyargs=[], kw_defaults=[], defaults=[]
        ),
        body=list(tree.body) or [ast.Pass()],
        decorator_list=[],
        returns=None,
        type_comment=None,
    )
    synthetic.lineno = 1
    synthetic.col_offset = 0
    ast.fix_missing_locations(synthetic)
    return build_cfg(synthetic)


def evaluated_nodes(stmt: ast.stmt) -> "list[ast.AST]":
    """The AST nodes that *execute in the block holding stmt*.

    Compound statements are placed in the block where their control
    expression evaluates (the ``if``/``while`` test, the ``for``
    iterator, the ``with`` context managers); their bodies live in
    other blocks with their own annotations, so walking the whole
    subtree from the placement block would attribute body code to the
    wrong path.  Nested ``def``/``class``/``lambda`` bodies are skipped
    too — defining them evaluates nothing inside them.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        roots: "list[ast.AST]" = [stmt.test]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        roots = [stmt.target, stmt.iter]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        roots = [item.context_expr for item in stmt.items]
        roots.extend(
            item.optional_vars
            for item in stmt.items
            if item.optional_vars is not None
        )
    elif isinstance(stmt, (ast.Try, *_FunctionNode, ast.ClassDef)):
        roots = []
    else:
        roots = [stmt]
    nodes: "list[ast.AST]" = []
    stack = list(roots)
    while stack:
        node = stack.pop()
        nodes.append(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(node, ast.Lambda) and child is node.body:
                continue
            if isinstance(child, (*_FunctionNode, ast.ClassDef)):
                continue
            stack.append(child)
    return nodes


def iter_function_nodes(
    tree: ast.AST,
) -> "list[ast.FunctionDef | ast.AsyncFunctionDef]":
    """Every function/method definition in *tree*, outermost first.

    Nested definitions are returned as separate entries — each gets its
    own CFG and its own dataflow scope; lambdas and comprehensions stay
    inside their enclosing statement (they execute inline and introduce
    no cross-statement flow of their bound names).
    """
    found = []
    for node in ast.walk(tree):
        if isinstance(node, _FunctionNode):
            found.append(node)
    return sorted(found, key=lambda node: (node.lineno, node.col_offset))
