"""The per-run whole-program context the flow rules share.

A :class:`Project` is built once per lint invocation from every file
the engine parsed (plus, under ``--changed``, the unchanged remainder
of the default paths, so summaries always see the whole program even
when only a handful of files are re-checked).  Rules reach it through
``ctx.project`` and stash expensive artifacts — CFGs, interprocedural
summaries — in :attr:`Project.artifacts` under a rule-owned key, so
the cost is paid once per run rather than once per file.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterable, Iterator

from .cfg import CFG, build_cfg
from .symbols import FunctionInfo, ModuleInfo, module_from_source


class Project:
    """Symbol tables, call graph, and shared analysis artifacts."""

    def __init__(self, modules: "Iterable[ModuleInfo]") -> None:
        self.modules: "dict[str, ModuleInfo]" = {}
        self.modules_by_path: "dict[str, ModuleInfo]" = {}
        for module in modules:
            self.modules[module.name] = module
            self.modules_by_path[module.path] = module
        #: Rule-owned memo space (summaries, CFG caches, ...).
        self.artifacts: "dict[str, object]" = {}
        self._cfgs: "dict[int, CFG]" = {}

    @classmethod
    def from_sources(
        cls, files: "Iterable[tuple[str, ast.Module]]"
    ) -> "Project":
        """Build a project from (path, parsed tree) pairs."""
        return cls(module_from_source(path, tree) for path, tree in files)

    # -- lookup --------------------------------------------------------------

    def module_named(self, dotted: str) -> "ModuleInfo | None":
        return self.modules.get(dotted)

    def module_at(self, path: str) -> "ModuleInfo | None":
        return self.modules_by_path.get(path)

    def function_named(self, dotted: str) -> "FunctionInfo | None":
        """Resolve ``pkg.module.func`` or ``pkg.module.Class.method``."""
        head, _, last = dotted.rpartition(".")
        module = self.modules.get(head)
        if module is not None:
            return module.functions.get(last)
        # One more level up: Class.method.
        head2, _, cls_name = head.rpartition(".")
        module = self.modules.get(head2)
        if module is not None:
            class_info = module.classes.get(cls_name)
            if class_info is not None:
                return class_info.methods.get(last)
        return None

    def iter_functions(self) -> "Iterator[FunctionInfo]":
        """Every function and method, in module-name order."""
        for name in sorted(self.modules):
            module = self.modules[name]
            for function in module.functions.values():
                yield function
            for class_info in module.classes.values():
                yield from class_info.methods.values()

    # -- shared artifacts ----------------------------------------------------

    def cfg_of(self, function: FunctionInfo) -> CFG:
        """The (memoized) CFG of *function*."""
        key = id(function.node)
        cfg = self._cfgs.get(key)
        if cfg is None:
            cfg = build_cfg(function.node)
            self._cfgs[key] = cfg
        return cfg

    def artifact(self, key: str, build: "Callable[[], object]") -> object:
        """Fetch (or build-and-memoize) one rule-owned artifact."""
        if key not in self.artifacts:
            self.artifacts[key] = build()
        return self.artifacts[key]
