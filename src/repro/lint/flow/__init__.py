"""beeslint's whole-program dataflow layer.

The BEES101–108 rules are syntax-local: one AST, one file, no notion of
*paths* or *values*.  The invariants the repo actually stakes its
numbers on — unit-consistent accounting, race-free shard state,
deterministic journal payloads — are properties of **flows**: a joule
total produced in one function and added to a byte total in another, a
counter written under a lock in one method and read without it in a
second, a set iterated in arbitrary order and serialized into a
fingerprint.  This package supplies the machinery those checks need:

* :mod:`~repro.lint.flow.cfg` — per-function control-flow graphs with
  dominators, ``with``-context and loop annotations;
* :mod:`~repro.lint.flow.dataflow` — a generic forward fixpoint
  framework over those CFGs;
* :mod:`~repro.lint.flow.symbols` — the project-wide symbol table
  (modules, classes, functions, resolved imports);
* :mod:`~repro.lint.flow.callgraph` — call resolution plus the
  interprocedural summary fixpoint;
* :mod:`~repro.lint.flow.project` — the per-run :class:`Project`
  context rules share;
* :mod:`~repro.lint.flow.cache` — the content-hash incremental cache
  that keeps the full-repo run fast in CI and pre-commit.

Everything is pure stdlib, same as the rest of beeslint.
"""

from __future__ import annotations

from .cache import LintCache, file_digest, project_digest
from .cfg import CFG, Block, build_cfg
from .callgraph import CallGraph
from .dataflow import FixpointResult, ForwardAnalysis, run_forward
from .project import Project
from .symbols import ClassInfo, FunctionInfo, ModuleInfo, module_from_source

__all__ = [
    "CFG",
    "Block",
    "CallGraph",
    "ClassInfo",
    "FixpointResult",
    "ForwardAnalysis",
    "FunctionInfo",
    "LintCache",
    "ModuleInfo",
    "Project",
    "build_cfg",
    "file_digest",
    "module_from_source",
    "project_digest",
    "run_forward",
]
