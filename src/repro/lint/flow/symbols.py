"""The project-wide symbol table the interprocedural passes stand on.

One :class:`ModuleInfo` per parsed file: its dotted module name
(derived from the package layout on disk — the nearest ancestor
without an ``__init__.py`` is the import root), module-level functions,
classes with their methods, and an import map resolving every local
name to the dotted target it binds (``from ..features.base import
FeatureSet`` in ``repro/index/sharded.py`` binds ``FeatureSet`` to
``repro.features.base.FeatureSet``).  That map is what lets the call
graph follow a value across module boundaries without ever importing
the code under analysis.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field

_FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass
class FunctionInfo:
    """One function or method definition."""

    name: str
    #: ``Class.method`` for methods, the bare name otherwise.
    qualname: str
    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    module: "ModuleInfo"
    class_info: "ClassInfo | None" = None

    @property
    def key(self) -> str:
        """The project-unique handle (``module:qualname``)."""
        return f"{self.module.name}:{self.qualname}"

    def parameter_names(self) -> "list[str]":
        """Positional + keyword parameter names, ``self`` included."""
        args = self.node.args
        names = [arg.arg for arg in args.posonlyargs + args.args]
        names.extend(arg.arg for arg in args.kwonlyargs)
        return names


@dataclass
class ClassInfo:
    """One class definition with its directly-defined methods."""

    name: str
    node: ast.ClassDef
    module: "ModuleInfo"
    methods: "dict[str, FunctionInfo]" = field(default_factory=dict)
    #: Base-class expressions, unparsed (``Rule``, ``abc.ABC``).
    bases: "tuple[str, ...]" = ()


@dataclass
class ModuleInfo:
    """One parsed file in the project."""

    name: str
    path: str
    tree: ast.Module
    functions: "dict[str, FunctionInfo]" = field(default_factory=dict)
    classes: "dict[str, ClassInfo]" = field(default_factory=dict)
    #: local binding -> dotted target ("repro.index.index.rank_votes",
    #: or a bare module like "hashlib" for plain imports).
    imports: "dict[str, str]" = field(default_factory=dict)

    @property
    def package(self) -> str:
        """The package a relative import resolves against."""
        if os.path.basename(self.path) == "__init__.py":
            return self.name
        head, _, _ = self.name.rpartition(".")
        return head


def module_name_for_path(path: str) -> str:
    """The dotted module name of *path* from the package layout.

    Walks up while the directory holds an ``__init__.py``; a file
    outside any package keeps its bare stem (how single-source test
    fixtures appear).
    """
    normalized = os.path.normpath(os.path.abspath(path))
    directory, filename = os.path.split(normalized)
    stem = filename[:-3] if filename.endswith(".py") else filename
    parts = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, tail = os.path.split(directory)
        parts.insert(0, tail)
    return ".".join(parts) if parts else stem


def _collect_imports(tree: ast.Module, package: str) -> "dict[str, str]":
    imports: "dict[str, str]" = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    top = alias.name.split(".", 1)[0]
                    imports[top] = top
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                anchor = package.split(".") if package else []
                # level=1 is the current package; each extra level
                # climbs one more.
                if node.level - 1:
                    anchor = anchor[: -(node.level - 1)] or []
                base = ".".join(anchor + ([node.module] if node.module else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{base}.{alias.name}" if base else alias.name
    return imports


def module_from_source(
    path: str, tree: ast.Module, name: "str | None" = None
) -> ModuleInfo:
    """Build the symbol table of one parsed file."""
    module = ModuleInfo(
        name=name if name is not None else module_name_for_path(path),
        path=path,
        tree=tree,
    )
    module.imports = _collect_imports(tree, module.package)
    for node in tree.body:
        if isinstance(node, _FunctionNode):
            info = FunctionInfo(
                name=node.name, qualname=node.name, node=node, module=module
            )
            module.functions[node.name] = info
        elif isinstance(node, ast.ClassDef):
            class_info = ClassInfo(
                name=node.name,
                node=node,
                module=module,
                bases=tuple(ast.unparse(base) for base in node.bases),
            )
            for item in node.body:
                if isinstance(item, _FunctionNode):
                    method = FunctionInfo(
                        name=item.name,
                        qualname=f"{node.name}.{item.name}",
                        node=item,
                        module=module,
                        class_info=class_info,
                    )
                    class_info.methods[item.name] = method
            module.classes[node.name] = class_info
    return module
