"""Call resolution and the interprocedural summary fixpoint.

Resolution is deliberately conservative — a call the graph cannot pin
to exactly one project function resolves to ``None`` and the analyses
treat its result as unknown.  Three shapes are resolved:

* ``f(...)`` — a module-level function of the caller's module, or an
  imported name that lands on one in the project;
* ``self.m(...)`` — a method of the caller's own class;
* ``mod.f(...)`` — a function of an imported project module.

Summaries are rule-owned values (a unit for BEES110, an ordering fact
for BEES111) computed by :func:`fixpoint_summaries`: every function's
summary is recomputed from its callees' until a full pass changes
nothing.  The lattices are finite, compute functions are monotone, and
the pass count is bounded, so termination is structural, not hopeful.
"""

from __future__ import annotations

import ast
from typing import Callable

from .project import Project
from .symbols import FunctionInfo


class CallGraph:
    """Resolved call edges over one :class:`~.project.Project`."""

    def __init__(self, project: Project) -> None:
        self.project = project

    def resolve_call(
        self, call: ast.Call, caller: FunctionInfo
    ) -> "FunctionInfo | None":
        """The unique project function *call* targets, if determinable."""
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name(func.id, caller)
        if isinstance(func, ast.Attribute):
            owner = func.value
            if isinstance(owner, ast.Name) and owner.id in ("self", "cls"):
                if caller.class_info is not None:
                    return caller.class_info.methods.get(func.attr)
                return None
            if isinstance(owner, ast.Name):
                target = caller.module.imports.get(owner.id)
                if target is not None:
                    module = self.project.module_named(target)
                    if module is not None:
                        return module.functions.get(func.attr)
        return None

    def _resolve_name(
        self, name: str, caller: FunctionInfo
    ) -> "FunctionInfo | None":
        local = caller.module.functions.get(name)
        if local is not None:
            return local
        dotted = caller.module.imports.get(name)
        if dotted is None:
            return None
        return self.project.function_named(dotted)

    def callees(self, caller: FunctionInfo) -> "list[FunctionInfo]":
        """Every resolved callee of *caller*, in call-site order."""
        found = []
        for node in ast.walk(caller.node):
            if isinstance(node, ast.Call):
                target = self.resolve_call(node, caller)
                if target is not None:
                    found.append(target)
        return found


def fixpoint_summaries(
    project: Project,
    compute: "Callable[[FunctionInfo, dict[str, object]], object]",
    max_passes: int = 12,
) -> "dict[str, object]":
    """function key -> summary, stable under *compute*.

    *compute* receives the function and the current summary map (keyed
    by :attr:`FunctionInfo.key`) and returns the function's summary; it
    must be monotone over a finite lattice for the fixpoint to exist.
    ``max_passes`` bounds the iteration regardless (each pass visits
    every function once, and chains longer than the call-graph depth
    cannot change anything).
    """
    summaries: "dict[str, object]" = {}
    for _ in range(max_passes):
        changed = False
        for function in project.iter_functions():
            value = compute(function, summaries)
            if summaries.get(function.key) != value:
                summaries[function.key] = value
                changed = True
        if not changed:
            break
    return summaries
