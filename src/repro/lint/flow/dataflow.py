"""A generic forward fixpoint dataflow framework over :mod:`.cfg` CFGs.

Clients subclass :class:`ForwardAnalysis` with a finite-height lattice:
states are plain ``dict[str, object]`` environments (variable name ->
abstract value), joined pointwise with the client's
:meth:`~ForwardAnalysis.join_values`, and pushed through one statement
at a time by :meth:`~ForwardAnalysis.transfer`.  :func:`run_forward`
iterates blocks in reverse postorder with a worklist until nothing
changes, and *proves* it stopped: iteration is bounded by a budget
derived from the graph size, and blowing the budget flags the result
as non-converged instead of spinning — the hypothesis property suite
pins that every generated function converges well inside it.

Monotonicity is the client's contract (transfer must not shrink
values); both BEES110's unit lattice (unknown < unit < conflict) and
BEES111's order lattice (ordered < unordered) are two-level joins, so
each variable can change at most twice and the worklist drains fast.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cfg import CFG, Block

#: Environments: variable name -> abstract value.
State = "dict[str, object]"


class ForwardAnalysis:
    """Client hooks for one forward dataflow problem."""

    def entry_state(self, cfg: CFG) -> "State":
        """The environment on entry to the function."""
        return {}

    def join_values(self, left: object, right: object) -> object:
        """The lattice join of two abstract values."""
        raise NotImplementedError

    def transfer(self, block: Block, stmt: object, state: "State") -> "State":
        """The environment after executing *stmt* in *state*.

        Must treat *state* as read-only and return a new dict when
        anything changes (returning *state* unchanged is fine).
        """
        raise NotImplementedError

    # -- derived -------------------------------------------------------------

    def join(self, states: "list[State]") -> "State":
        """Pointwise join; a name missing from a state joins as absent.

        Absent means "no information on this path" — the join keeps the
        other side's value, matching a bottom element without storing
        one for every variable.
        """
        if not states:
            return {}
        merged = dict(states[0])
        for state in states[1:]:
            for name, value in state.items():
                if name in merged and merged[name] != value:
                    merged[name] = self.join_values(merged[name], value)
                else:
                    merged.setdefault(name, value)
        return merged


@dataclass
class FixpointResult:
    """The converged (or budget-stopped) solution of one analysis."""

    #: block id -> environment on block entry.
    in_states: "dict[int, State]"
    #: block id -> environment on block exit.
    out_states: "dict[int, State]"
    #: Worklist pops performed before quiescence.
    iterations: int
    #: False only if the iteration budget was exhausted (a lattice or
    #: monotonicity bug in the client — never expected in production).
    converged: bool


def run_forward(
    cfg: CFG,
    analysis: ForwardAnalysis,
    max_visits_per_block: int = 64,
) -> FixpointResult:
    """Iterate *analysis* over *cfg* to a fixpoint."""
    order = cfg.reverse_postorder()
    position = {block_id: index for index, block_id in enumerate(order)}
    in_states: "dict[int, State]" = {}
    out_states: "dict[int, State]" = {}
    budget = max_visits_per_block * max(1, len(cfg.blocks))
    iterations = 0
    pending = set(order)
    while pending:
        if iterations >= budget:
            return FixpointResult(
                in_states=in_states,
                out_states=out_states,
                iterations=iterations,
                converged=False,
            )
        block_id = min(pending, key=lambda b: position.get(b, len(order)))
        pending.discard(block_id)
        iterations += 1
        block = cfg.blocks[block_id]
        preds = [p for p in block.predecessors if p in out_states]
        if block_id == cfg.entry:
            state = analysis.join(
                [analysis.entry_state(cfg)] + [out_states[p] for p in preds]
            )
        else:
            state = analysis.join([out_states[p] for p in preds])
        in_states[block_id] = state
        for stmt in block.statements:
            state = analysis.transfer(block, stmt, state)
        if out_states.get(block_id) != state:
            out_states[block_id] = state
            for succ in block.successors:
                pending.add(succ)
    return FixpointResult(
        in_states=in_states,
        out_states=out_states,
        iterations=iterations,
        converged=True,
    )
