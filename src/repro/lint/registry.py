"""The beeslint rule registry.

A rule is a class with a ``name`` (the suppression slug), a ``code``
(``BEESnnn``), a one-line ``summary``, and a ``check(ctx)`` generator
yielding :class:`~repro.lint.findings.Finding` objects.  Registration
is a class decorator so importing :mod:`repro.lint.rules` is enough to
populate the registry; the engine never hard-codes rule names.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Type

from ..errors import ConfigurationError
from .findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .flow.project import Project


@dataclass
class FileContext:
    """What a rule gets to look at: one parsed file.

    ``parents`` maps every AST node to its parent so rules can reason
    about *where* an expression sits (e.g. "is this Name a bare call
    argument?") without re-walking the tree themselves.  ``project``
    is the whole-program context (symbol tables, call graph, shared
    summaries) — present whenever any active rule declares
    ``requires_project`` and always covering at least this file.
    """

    path: str
    source: str
    tree: ast.Module
    lines: "tuple[str, ...]" = field(default=())
    parents: "dict[ast.AST, ast.AST]" = field(default_factory=dict)
    project: "Project | None" = None

    @property
    def is_benchmark_module(self) -> bool:
        """True for ``bench_*.py`` files (the figure benchmark suite)."""
        basename = self.path.replace("\\", "/").rsplit("/", 1)[-1]
        return basename.startswith("bench_") and basename.endswith(".py")

    def parent(self, node: ast.AST) -> "ast.AST | None":
        """The enclosing AST node, or None at module level."""
        return self.parents.get(node)

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        """Build a Finding anchored at *node*."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule,
            message=message,
        )


class Rule:
    """Base class for beeslint rules."""

    #: Suppression slug, e.g. ``paper-constants``.
    name: str = ""
    #: Stable short code, e.g. ``BEES101``.
    code: str = ""
    #: One-line description shown by ``repro lint --list-rules``.
    summary: str = ""
    #: True for whole-program rules: the engine then builds a
    #: :class:`~repro.lint.flow.project.Project` over the run and hands
    #: it to every file via ``ctx.project``.
    requires_project: bool = False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file."""
        raise NotImplementedError

    def make(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        """Shorthand for ``ctx.finding(node, self.name, message)``."""
        return ctx.finding(node, self.name, message)


#: name -> rule instance, in registration order.
_REGISTRY: "dict[str, Rule]" = {}


def register(cls: "Type[Rule]") -> "Type[Rule]":
    """Class decorator adding one rule to the global registry."""
    if not cls.name or not cls.code:
        raise ConfigurationError(f"rule {cls.__name__} must set name and code")
    if cls.name in _REGISTRY:
        raise ConfigurationError(f"duplicate rule name {cls.name!r}")
    _REGISTRY[cls.name] = cls()
    return cls


def all_rules() -> "tuple[Rule, ...]":
    """Every registered rule, in registration order."""
    from . import rules  # noqa: F401  (import populates the registry)

    return tuple(_REGISTRY.values())


def resolve_rules(
    select: "Iterable[str] | None" = None,
    ignore: "Iterable[str] | None" = None,
) -> "tuple[Rule, ...]":
    """The active rule set after ``--select`` / ``--ignore`` filtering.

    Rules may be referred to by slug (``paper-constants``) or code
    (``BEES101``); unknown names raise :class:`ConfigurationError`.
    """
    rules = all_rules()
    by_key = {}
    for rule in rules:
        by_key[rule.name] = rule
        by_key[rule.code] = rule

    def lookup(names: "Iterable[str]") -> "set[str]":
        chosen = set()
        for raw in names:
            key = raw.strip()
            if key not in by_key:
                known = ", ".join(sorted(r.name for r in rules))
                raise ConfigurationError(f"unknown rule {key!r}; known rules: {known}")
            chosen.add(by_key[key].name)
        return chosen

    active = {rule.name for rule in rules}
    if select is not None:
        active = lookup(select)
    if ignore is not None:
        active -= lookup(ignore)
    return tuple(rule for rule in rules if rule.name in active)


def walk_with_parents(tree: ast.Module) -> "dict[ast.AST, ast.AST]":
    """Map every node in *tree* to its parent node."""
    parents: "dict[ast.AST, ast.AST]" = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def iter_nodes(
    tree: ast.Module, kind: "type | tuple[type, ...]"
) -> "Iterator[ast.AST]":
    """All nodes of *kind* in *tree*, in source order."""
    for node in ast.walk(tree):
        if isinstance(node, kind):
            yield node


CheckFn = Callable[[FileContext], Iterator[Finding]]
