"""BEES110 ``unit-flow`` — dimensional analysis over real dataflow.

BEES102 pins the *naming* convention (``_bytes``/``_joules``/
``_seconds`` suffixes, no syntactic cross-unit ``+``).  It cannot see
that ``total = device.energy_joules`` makes ``total`` a joule value,
or that ``measure()`` returns bytes, so ``total + measure()`` slips
straight past it.  BEES110 closes that gap with a forward dataflow
over each function's CFG:

* **Lattice** — ``unknown < bytes | joules | seconds``; joins of
  different units fall back to unknown (a value whose unit depends on
  the path cannot be trusted to any one dimension).
* **Transfer** — assignments propagate units into local names; ``+``/
  ``-`` of same-unit operands keeps the unit; ``*``/``/`` clears it
  (dimension changes — joules per byte is neither); ``int()``/
  ``float()``/``abs()``/``min()``/``max()``/``sum()`` preserve it.
* **Interprocedural summaries** — every project function gets a return
  unit (its suffix, or the joined unit of its return expressions),
  iterated to a fixpoint over the call graph, so a unit survives any
  chain of helper calls.

Findings, each only where both sides are *known*:

* cross-unit ``+``/``-`` or comparison where at least one side's unit
  came from flow (purely syntactic mixes stay BEES102's);
* a unit-bearing value assigned to (or returned as, or passed into) a
  name whose suffix declares a different unit.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..flow.callgraph import CallGraph, fixpoint_summaries
from ..flow.cfg import CFG, Block, build_module_cfg, evaluated_nodes
from ..flow.dataflow import ForwardAnalysis, run_forward
from ..flow.symbols import FunctionInfo
from ..registry import FileContext, Rule, register
from .units import unit_of

#: Calls that preserve the dimension of their first argument.
_PRESERVING_CALLS = frozenset(
    {"int", "float", "abs", "round", "min", "max", "sum"}
)

#: Suffix ("_bytes") -> unit name ("bytes").
_UNITS = {"_bytes": "bytes", "_joules": "joules", "_seconds": "seconds"}


def suffix_unit(identifier: str) -> "str | None":
    """The unit an identifier's canonical suffix declares, if any."""
    if "_per_" in identifier:
        return None
    suffix = unit_of(identifier)
    return None if suffix is None else _UNITS[suffix]


def _syntactic_unit(node: ast.AST) -> "str | None":
    """The unit visible without any flow (BEES102's view of *node*)."""
    if isinstance(node, ast.Name):
        return suffix_unit(node.id)
    if isinstance(node, ast.Attribute):
        return suffix_unit(node.attr)
    return None


class _UnitEval:
    """Expression -> unit evaluation against one environment."""

    def __init__(
        self,
        env: "dict[str, object]",
        resolver: "CallGraph | None",
        caller: "FunctionInfo | None",
        summaries: "dict[str, object]",
    ) -> None:
        self.env = env
        self.resolver = resolver
        self.caller = caller
        self.summaries = summaries

    def unit(self, node: "ast.AST | None") -> "str | None":
        if node is None:
            return None
        if isinstance(node, ast.Name):
            flowed = self.env.get(node.id)
            if isinstance(flowed, str):
                return flowed
            return suffix_unit(node.id)
        if isinstance(node, ast.Attribute):
            return suffix_unit(node.attr)
        if isinstance(node, ast.Subscript):
            return self.unit(node.value)
        if isinstance(node, ast.Starred):
            return self.unit(node.value)
        if isinstance(node, ast.UnaryOp):
            return self.unit(node.operand)
        if isinstance(node, ast.IfExp):
            left, right = self.unit(node.body), self.unit(node.orelse)
            return left if left == right else None
        if isinstance(node, ast.GeneratorExp):
            return self.unit(node.elt)
        if isinstance(node, (ast.ListComp, ast.SetComp)):
            return self.unit(node.elt)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, (ast.Add, ast.Sub)):
                left, right = self.unit(node.left), self.unit(node.right)
                if left is not None and right is not None:
                    return left if left == right else None
                return left if right is None else right
            return None  # *, /, //, %, ** change the dimension
        if isinstance(node, ast.Call):
            return self._call_unit(node)
        return None

    def _call_unit(self, call: ast.Call) -> "str | None":
        func = call.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in _PRESERVING_CALLS and call.args:
            return self.unit(call.args[0])
        if self.resolver is not None and self.caller is not None:
            target = self.resolver.resolve_call(call, self.caller)
            if target is not None:
                summary = self.summaries.get(target.key)
                if isinstance(summary, str):
                    return summary
        if name is not None:
            return suffix_unit(name)
        return None


class _UnitAnalysis(ForwardAnalysis):
    """The forward transfer for unit environments."""

    def __init__(self, evaluator_factory) -> None:
        self._factory = evaluator_factory

    def entry_state(self, cfg: CFG) -> "dict[str, object]":
        return {}

    def join_values(self, left: object, right: object) -> object:
        return left if left == right else None

    def transfer(
        self, block: Block, stmt: object, state: "dict[str, object]"
    ) -> "dict[str, object]":
        evaluator = self._factory(state)
        out = state
        if isinstance(stmt, ast.Assign):
            value_unit = evaluator.unit(stmt.value)
            out = dict(state)
            for target in stmt.targets:
                _bind_target(out, target, value_unit)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            out = dict(state)
            _bind_target(out, stmt.target, evaluator.unit(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                out = dict(state)
                if isinstance(stmt.op, (ast.Add, ast.Sub)):
                    left = evaluator.unit(stmt.target)
                    right = evaluator.unit(stmt.value)
                    unit = left if left == right else None
                    _bind_target(out, stmt.target, unit)
                else:
                    _bind_target(out, stmt.target, None)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            # Iterating a unit-carrying collection yields unit-carrying
            # elements (a list of per-image byte counts stays bytes).
            if isinstance(stmt.target, ast.Name):
                out = dict(state)
                _bind_target(out, stmt.target, evaluator.unit(stmt.iter))
        return out


def _bind_target(
    env: "dict[str, object]", target: ast.expr, unit: "str | None"
) -> None:
    if isinstance(target, ast.Name):
        if unit is None:
            env.pop(target.id, None)
        else:
            env[target.id] = unit
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _bind_target(env, element, None)


def _linear_return_unit(
    function: FunctionInfo,
    resolver: CallGraph,
    summaries: "dict[str, object]",
) -> "str | None":
    """The function's return unit from a straight-line approximation.

    Good enough for summaries (the checker uses the real CFG): walk
    statements in source order, bind assignment units, join the units
    of every ``return`` expression.
    """
    declared = suffix_unit(function.name)
    if declared is not None:
        return declared
    env: "dict[str, object]" = {}
    for arg in function.parameter_names():
        unit = suffix_unit(arg)
        if unit is not None:
            env[arg] = unit
    evaluator = _UnitEval(env, resolver, function, summaries)
    returned: "list[str | None]" = []
    for node in ast.walk(function.node):
        if isinstance(node, ast.Assign):
            value_unit = evaluator.unit(node.value)
            for target in node.targets:
                _bind_target(env, target, value_unit)
        elif isinstance(node, ast.Return) and node.value is not None:
            returned.append(evaluator.unit(node.value))
    if not returned:
        return None
    first = returned[0]
    return first if all(unit == first for unit in returned) else None


@register
class UnitFlowRule(Rule):
    """Units propagate through assignments, calls, and returns."""

    name = "unit-flow"
    code = "BEES110"
    summary = (
        "byte/joule/second values tracked through dataflow and function "
        "summaries never mix units or flow into differently-suffixed "
        "names"
    )
    requires_project = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        project = ctx.project
        if project is None:
            return
        resolver = project.artifact("callgraph", lambda: CallGraph(project))
        assert isinstance(resolver, CallGraph)
        summaries = project.artifact(
            "unitflow.summaries",
            lambda: fixpoint_summaries(
                project,
                lambda function, current: _linear_return_unit(
                    function, resolver, current
                ),
            ),
        )
        assert isinstance(summaries, dict)
        module = project.module_at(ctx.path)
        if module is None:
            return
        scopes: "list[tuple[FunctionInfo | None, CFG]]" = [
            (None, build_module_cfg(ctx.tree))
        ]
        for function in module.functions.values():
            scopes.append((function, project.cfg_of(function)))
        for class_info in module.classes.values():
            for method in class_info.methods.values():
                scopes.append((method, project.cfg_of(method)))
        for function, cfg in scopes:
            yield from self._check_scope(
                ctx, function, cfg, resolver, summaries
            )

    def _check_scope(
        self,
        ctx: FileContext,
        function: "FunctionInfo | None",
        cfg: CFG,
        resolver: CallGraph,
        summaries: "dict[str, object]",
    ) -> Iterator[Finding]:
        def factory(state: "dict[str, object]") -> _UnitEval:
            return _UnitEval(state, resolver, function, summaries)

        analysis = _UnitAnalysis(factory)
        solution = run_forward(cfg, analysis)
        declared_return = (
            None if function is None else suffix_unit(function.name)
        )
        for block_id in sorted(cfg.blocks):
            block = cfg.blocks[block_id]
            state = dict(solution.in_states.get(block_id, {}))
            for stmt in block.statements:
                evaluator = factory(state)
                yield from self._check_stmt(
                    ctx, stmt, evaluator, declared_return
                )
                state = analysis.transfer(block, stmt, state)

    def _check_stmt(
        self,
        ctx: FileContext,
        stmt: ast.stmt,
        evaluator: _UnitEval,
        declared_return: "str | None",
    ) -> Iterator[Finding]:
        for node in evaluated_nodes(stmt):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                yield from self._check_mix(
                    ctx, node, node.left, node.right, "+/- arithmetic",
                    evaluator,
                )
            elif isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                for first, second in zip(operands, operands[1:]):
                    yield from self._check_mix(
                        ctx, node, first, second, "comparison", evaluator
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, evaluator)
        if isinstance(stmt, ast.Assign):
            value_unit = evaluator.unit(stmt.value)
            if value_unit is not None:
                for target in stmt.targets:
                    declared = _syntactic_unit(target)
                    if declared is not None and declared != value_unit:
                        yield self.make(
                            ctx,
                            stmt,
                            f"a {value_unit!r} value flows into "
                            f"{ast.unparse(target)!r}, whose suffix "
                            f"declares {declared!r}",
                        )
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            if declared_return is not None:
                value_unit = evaluator.unit(stmt.value)
                if value_unit is not None and value_unit != declared_return:
                    yield self.make(
                        ctx,
                        stmt,
                        f"function declares {declared_return!r} by suffix "
                        f"but returns a {value_unit!r} value",
                    )

    def _check_mix(
        self,
        ctx: FileContext,
        site: ast.AST,
        left: ast.expr,
        right: ast.expr,
        what: str,
        evaluator: _UnitEval,
    ) -> Iterator[Finding]:
        left_unit = evaluator.unit(left)
        right_unit = evaluator.unit(right)
        if left_unit is None or right_unit is None or left_unit == right_unit:
            return
        # Purely syntactic mixes (both suffixes visible in the source)
        # are BEES102's findings; BEES110 reports only what needed flow.
        if (
            _syntactic_unit(left) is not None
            and _syntactic_unit(right) is not None
        ):
            return
        yield self.make(
            ctx,
            site,
            f"{what} mixes units through dataflow: {left_unit!r} "
            f"({ast.unparse(left)}) vs {right_unit!r} "
            f"({ast.unparse(right)})",
        )

    def _check_call(
        self, ctx: FileContext, call: ast.Call, evaluator: _UnitEval
    ) -> Iterator[Finding]:
        # Keyword arguments declare a unit by suffix exactly like names.
        for keyword in call.keywords:
            if keyword.arg is None:
                continue
            declared = suffix_unit(keyword.arg)
            if declared is None:
                continue
            value_unit = evaluator.unit(keyword.value)
            if value_unit is not None and value_unit != declared:
                yield self.make(
                    ctx,
                    call,
                    f"a {value_unit!r} value is passed as keyword "
                    f"{keyword.arg!r} (declares {declared!r})",
                )
        # Positional arguments against the resolved callee's signature.
        if evaluator.resolver is None or evaluator.caller is None:
            return
        target = evaluator.resolver.resolve_call(call, evaluator.caller)
        if target is None:
            return
        parameters = target.parameter_names()
        if parameters and parameters[0] in ("self", "cls"):
            parameters = parameters[1:]
        for parameter, arg in zip(parameters, call.args):
            declared = suffix_unit(parameter)
            if declared is None:
                continue
            value_unit = evaluator.unit(arg)
            if value_unit is not None and value_unit != declared:
                yield self.make(
                    ctx,
                    call,
                    f"a {value_unit!r} value is passed for parameter "
                    f"{parameter!r} of {target.qualname} "
                    f"(declares {declared!r})",
                )
