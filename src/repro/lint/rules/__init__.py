"""The BEES-specific rule set.

Importing this package registers every rule; the registry is the only
coupling between the engine and the rules.
"""

from __future__ import annotations

from . import (
    battery,
    constants,
    floateq,
    journal,
    lockflow,
    nondet,
    obs,
    rng,
    timing,
    units,
    unitflow,
)

__all__ = [
    "battery",
    "constants",
    "floateq",
    "journal",
    "lockflow",
    "nondet",
    "obs",
    "rng",
    "timing",
    "units",
    "unitflow",
]
