"""BEES105 ``obs-coverage`` — instrumentation completeness.

Scheme-vs-scheme numbers are only comparable if every scheme reports
through the same funnel.  Two structural checks:

* every concrete ``process_batch`` on a ``*Scheme`` subclass must route
  its report through ``self.observe_batch(...)`` — the shared hook that
  feeds the ``bees_*`` metric families;
* every ``bench_*.py`` module must expose the harness contract:
  a top-level ``run`` function plus ``PARAMS`` and ``QUICK_PARAMS``
  dicts, so ``repro bench run`` (and CI's quick suite) can drive it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import FileContext, Rule, iter_nodes, register

_HARNESS_GLOBALS = ("PARAMS", "QUICK_PARAMS")


def _base_names(class_def: ast.ClassDef) -> "list[str]":
    names = []
    for base in class_def.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _is_abstract(func: ast.FunctionDef) -> bool:
    for decorator in func.decorator_list:
        name = ""
        if isinstance(decorator, ast.Name):
            name = decorator.id
        elif isinstance(decorator, ast.Attribute):
            name = decorator.attr
        if name in {"abstractmethod", "abstractproperty"}:
            return True
    return False


def _calls_observe_batch(func: ast.FunctionDef) -> bool:
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "observe_batch"
        ):
            return True
    return False


def _module_assign_targets(tree: ast.Module) -> "set[str]":
    targets = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    targets.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            targets.add(node.target.id)
    return targets


@register
class ObsCoverageRule(Rule):
    """Schemes report through observe_batch; bench modules are drivable."""

    name = "obs-coverage"
    code = "BEES105"
    summary = (
        "SharingScheme.process_batch overrides must call observe_batch; "
        "bench_*.py modules must define run + PARAMS + QUICK_PARAMS"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for class_def in iter_nodes(ctx.tree, ast.ClassDef):
            if not any(base.endswith("Scheme") for base in _base_names(class_def)):
                continue
            for item in class_def.body:
                if (
                    isinstance(item, ast.FunctionDef)
                    and item.name == "process_batch"
                    and not _is_abstract(item)
                    and not _calls_observe_batch(item)
                ):
                    yield self.make(
                        ctx,
                        item,
                        f"{class_def.name}.process_batch never calls "
                        "self.observe_batch(report); every scheme must return "
                        "its report through the shared observability hook",
                    )
        if ctx.is_benchmark_module:
            functions = {
                node.name
                for node in ctx.tree.body
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            assigns = _module_assign_targets(ctx.tree)
            missing = []
            if "run" not in functions:
                missing.append("a top-level run(params) function")
            missing.extend(
                f"a module-level {name} dict"
                for name in _HARNESS_GLOBALS
                if name not in assigns
            )
            if missing:
                yield self.make(
                    ctx,
                    ctx.tree.body[0] if ctx.tree.body else ctx.tree,
                    "bench module misses the harness contract: "
                    + ", ".join(missing),
                )
