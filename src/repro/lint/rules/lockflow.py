"""BEES109 ``lock-discipline`` — a static race detector for shard state.

The concurrent fleet leans on a small set of lock-protected classes:
the decision journal, the metrics registry, the kernel match-count
cache, the tracer.  Their discipline is uniform — own a
``threading.Lock`` attribute, mutate shared attributes only inside
``with self._lock:`` — and the byte-identical-fleet guarantee assumes
nobody reads those attributes on a lock-free path.  This rule checks
exactly that, per class:

1. **Find the locks.**  Any attribute assigned a ``threading.Lock`` /
   ``RLock`` / ``Condition`` / ``Semaphore`` (directly or inside a
   list/dict/comprehension) is a lock attribute.
2. **Learn the guarded set.**  An attribute of ``self`` *assigned*
   (plain, augmented, or through a subscript) in any method while a
   lock context is held is guarded — the class itself declares, by its
   writes, which state the lock owns.  Methods named ``*_locked`` are
   the held-by-convention helpers and also teach writes.
3. **Enforce.**  Every read or write of a guarded attribute must sit
   in a CFG block whose ``with``-contexts include an owning lock —
   i.e. on a path dominated by the acquisition and before the release.
   Constructors (``__init__``/``__post_init__``/``__new__``) are
   exempt (no concurrent peer exists yet), ``*_locked`` helpers are
   assumed held (but *calling* one without the lock is its own
   finding), and methods that call ``.acquire()`` manually opt out of
   the inference — hand-rolled protocols (the sharded index's
   contention-counting acquire) are reviewed by humans, not guessed at.

Deliberately lock-free reads are real and fine (CPython atomicity,
single-threaded phases) — they just have to say so with an inline
``# beeslint: disable=lock-discipline (why)``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..findings import Finding
from ..flow.cfg import CFG, build_cfg, evaluated_nodes
from ..registry import FileContext, Rule, register

#: Constructor calls whose result makes an attribute a lock.
_LOCK_FACTORIES = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)

#: Methods where unguarded access is fine: no other thread can hold a
#: reference to a half-constructed object.
_CONSTRUCTORS = frozenset({"__init__", "__post_init__", "__new__"})

_FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)


def _is_lock_factory(call: ast.expr) -> bool:
    """Does *call* construct a lock object (possibly nested)?"""
    for node in ast.walk(call):
        if isinstance(node, ast.Call):
            func = node.func
            name = ""
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name in _LOCK_FACTORIES:
                return True
    return False


def _self_attr(node: ast.expr) -> "str | None":
    """``self.X`` (or ``self.X[...]``, any depth) -> ``X``, else None."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _assigned_self_attrs(stmt: ast.stmt) -> "Iterator[str]":
    """Attributes of ``self`` a statement assigns (incl. subscripts)."""
    targets: "list[ast.expr]" = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                attr = _self_attr(element)
                if attr is not None:
                    yield attr
        else:
            attr = _self_attr(target)
            if attr is not None:
                yield attr


def _mentions_lock(context_text: str, lock_attrs: "frozenset[str]") -> bool:
    """Does a ``with`` context expression acquire one of our locks?

    Matched on the unparsed text with a word boundary, so a lock
    collection (``with self._locks[shard]:``) counts while an
    unrelated longer attribute name does not.
    """
    return any(
        re.search(rf"self\.{re.escape(attr)}\b", context_text)
        for attr in lock_attrs
    )


def _held(block_contexts: "frozenset[str]", lock_attrs: "frozenset[str]") -> bool:
    return any(
        _mentions_lock(context, lock_attrs) for context in block_contexts
    )


class _ClassModel:
    """Everything BEES109 learned about one lock-owning class."""

    def __init__(self, class_node: ast.ClassDef) -> None:
        self.node = class_node
        self.methods = [
            item for item in class_node.body if isinstance(item, _FunctionNode)
        ]
        self.lock_attrs = self._find_lock_attrs()
        self.cfgs: "dict[str, CFG]" = {}
        self.manual: "set[str]" = set()
        self.guarded: "set[str]" = set()
        if self.lock_attrs:
            self._analyze_methods()

    def _find_lock_attrs(self) -> "frozenset[str]":
        found = set()
        for method in self.methods:
            for node in ast.walk(method):
                if isinstance(node, ast.Assign) and _is_lock_factory(node.value):
                    for target in node.targets:
                        attr = _self_attr(target)
                        if attr is not None:
                            found.add(attr)
                elif (
                    isinstance(node, ast.AnnAssign)
                    and node.value is not None
                    and _is_lock_factory(node.value)
                ):
                    attr = _self_attr(node.target)
                    if attr is not None:
                        found.add(attr)
        return frozenset(found)

    def _calls_acquire(self, method: "ast.stmt") -> bool:
        for node in ast.walk(method):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("acquire", "release")
            ):
                return True
        return False

    def _analyze_methods(self) -> None:
        for method in self.methods:
            self.cfgs[method.name] = build_cfg(method)
            if self._calls_acquire(method):
                self.manual.add(method.name)
        # Learn the guarded set from locked writes (and the *_locked
        # helper convention).
        for method in self.methods:
            if method.name in _CONSTRUCTORS or method.name in self.manual:
                continue
            assume_held = method.name.endswith("_locked")
            for block, stmt in self.cfgs[method.name].statements():
                if assume_held or _held(block.with_contexts, self.lock_attrs):
                    for attr in _assigned_self_attrs(stmt):
                        if attr not in self.lock_attrs:
                            self.guarded.add(attr)


@register
class LockDisciplineRule(Rule):
    """Lock-guarded attributes are only touched while the lock is held."""

    name = "lock-discipline"
    code = "BEES109"
    summary = (
        "attributes written under a class's lock are read/written only "
        "on paths dominated by that lock's acquisition"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for class_node in ast.walk(ctx.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            model = _ClassModel(class_node)
            if not model.lock_attrs or not model.guarded:
                continue
            yield from self._check_class(ctx, model)

    def _check_class(
        self, ctx: FileContext, model: _ClassModel
    ) -> Iterator[Finding]:
        lock_text = ", ".join(sorted(f"self.{a}" for a in model.lock_attrs))
        for method in model.methods:
            if (
                method.name in _CONSTRUCTORS
                or method.name in model.manual
                or method.name.endswith("_locked")
            ):
                continue
            cfg = model.cfgs[method.name]
            for block, stmt in cfg.statements():
                held = _held(block.with_contexts, model.lock_attrs)
                for node in evaluated_nodes(stmt):
                    if isinstance(node, ast.Attribute):
                        attr = _self_attr(node)
                        if attr in model.guarded and not held:
                            yield self.make(
                                ctx,
                                node,
                                f"{model.node.name}.{method.name} touches "
                                f"self.{attr} outside the owning lock "
                                f"({lock_text}); it is written under that "
                                "lock elsewhere, so lock-free access races "
                                "with concurrent fleet threads",
                            )
                    elif (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id == "self"
                        and node.func.attr.endswith("_locked")
                        and not held
                    ):
                        yield self.make(
                            ctx,
                            node,
                            f"{model.node.name}.{method.name} calls the "
                            f"held-by-convention helper self."
                            f"{node.func.attr}() without holding "
                            f"{lock_text}",
                        )
