"""BEES104 ``float-equality`` — no ``==`` on similarity-class floats.

The EDR decision is ``best_similarity > T``; similarities, thresholds,
SSIM values, battery fractions, and compression proportions are all
continuous quantities that arrive through floating-point pipelines.
Comparing them with ``==``/``!=`` is either a silent tautology or a
silent never — the classic source of "works on my machine" figure
drift.  The rule flags equality comparisons where an operand is

* a non-integral float literal (``x == 0.85``), or
* an identifier matching the similarity/threshold vocabulary.

Exact-zero and exact-integer checks (``error == 0.0``) stay legal:
they test a value produced by assignment, not by arithmetic.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..findings import Finding
from ..registry import FileContext, Rule, iter_nodes, register

_SEMANTIC_RE = re.compile(
    r"(similarity|threshold|ssim|psnr|ebat|proportion|score)", re.IGNORECASE
)


def _is_nonintegral_float(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, float)
        and node.value != int(node.value)
    )


def _semantic_name(node: ast.expr) -> "str | None":
    identifier = None
    if isinstance(node, ast.Name):
        identifier = node.id
    elif isinstance(node, ast.Attribute):
        identifier = node.attr
    if identifier is not None and _SEMANTIC_RE.search(identifier):
        return identifier
    return None


@register
class FloatEqualityRule(Rule):
    """Similarity/threshold quantities never meet ``==``."""

    name = "float-equality"
    code = "BEES104"
    summary = (
        "no ==/!= on similarity/threshold/ssim/ebat/proportion values or "
        "non-integral float literals; use math.isclose or ordered compares"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for compare in iter_nodes(ctx.tree, ast.Compare):
            operands = [compare.left] + list(compare.comparators)
            for op, left, right in zip(compare.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for operand in (left, right):
                    if _is_nonintegral_float(operand):
                        yield self.make(
                            ctx,
                            compare,
                            f"equality against float literal "
                            f"{operand.value!r}; use math.isclose or an "
                            "ordered comparison",
                        )
                        break
                    name = _semantic_name(operand)
                    if name is not None:
                        yield self.make(
                            ctx,
                            compare,
                            f"equality on continuous quantity {name!r}; use "
                            "math.isclose or an ordered comparison",
                        )
                        break
