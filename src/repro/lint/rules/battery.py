"""BEES106 ``ebat-range`` — battery fractions stay in [0, 1].

Every EAAS policy is a function of the remaining battery *fraction*.
Feed one a raw joule count and the linear policies silently extrapolate
— compression proportions above 1, negative thresholds — and the whole
energy-adaptation story quietly inverts.  Any function taking an
``ebat`` parameter must therefore do one of:

* validate it (an ``assert``/``if``-guard comparing ``ebat`` against
  its bounds),
* clamp it (``min``/``max``/``clip`` with ``ebat`` as an argument), or
* *delegate* it — every use of ``ebat`` is a bare argument to another
  call (e.g. ``self.policy(ebat)``), pushing enforcement to a callee
  that is itself subject to this rule.

What it may never do is consume ``ebat`` in raw arithmetic without any
of the above.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import FileContext, Rule, iter_nodes, register

_PARAM = "ebat"
_CLAMP_CALLS = {"min", "max", "clip", "validate_ebat", "clamp_ebat"}


def _takes_ebat(func: ast.FunctionDef) -> bool:
    args = func.args
    every = (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    )
    return any(arg.arg == _PARAM for arg in every)


def _mentions_ebat(node: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == _PARAM for sub in ast.walk(node)
    )


def _call_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _has_guard(func: ast.FunctionDef) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Assert) and _mentions_ebat(node.test):
            return True
        if isinstance(node, ast.Compare) and _mentions_ebat(node):
            return True
        if (
            isinstance(node, ast.Call)
            and _call_name(node.func) in _CLAMP_CALLS
            and any(_mentions_ebat(arg) for arg in node.args)
        ):
            return True
    return False


def _is_forwarded(ctx: FileContext, name: ast.Name) -> bool:
    """True when this ``ebat`` load is a bare call argument or is only
    being formatted into a message."""
    parent = ctx.parent(name)
    if isinstance(parent, ast.Call) and name in parent.args:
        return True
    if isinstance(parent, ast.keyword):
        grandparent = ctx.parent(parent)
        if isinstance(grandparent, ast.Call):
            return True
    if isinstance(parent, ast.FormattedValue):
        return True
    return False


@register
class EbatRangeRule(Rule):
    """ebat parameters are validated, clamped, or delegated — never raw."""

    name = "ebat-range"
    code = "BEES106"
    summary = (
        "functions taking ebat must clamp/assert it into [0, 1] or forward "
        "it to a policy call; raw arithmetic on ebat is banned"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in iter_nodes(ctx.tree, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not _takes_ebat(func):
                continue
            if _has_guard(func):
                continue
            offending = [
                node
                for node in ast.walk(func)
                if isinstance(node, ast.Name)
                and node.id == _PARAM
                and isinstance(node.ctx, ast.Load)
                and not _is_forwarded(ctx, node)
            ]
            if offending:
                yield self.make(
                    ctx,
                    offending[0],
                    f"{func.name}() consumes 'ebat' without clamping or "
                    "asserting it into [0, 1] (and without delegating it to "
                    "a policy call)",
                )
