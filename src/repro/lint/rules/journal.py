"""BEES108 ``missing-journal-event`` — decision sites must journal.

The decision-provenance journal (:mod:`repro.obs.journal`) is only a
flight recorder if every decision site reports to it: a verdict that
never lands in the journal cannot be explained, diffed, or replayed.
This rule walks the four decision-bearing modules — ``core/ard.py``,
``core/aiu.py``, ``core/policies.py``, ``dtn/routing.py`` — and flags
any *decision site* that can return without a journal event on any
path to ``.emit(...)``:

* functions whose return annotation names a verdict type
  (``CbrdDecision``, ``AiuResult``, ``DeliveryReport``);
* ``__call__`` on ``*Policy*`` classes (the EAAS policies);
* the DTN dynamics entry points ``_exchange`` and ``step``.

A site passes if it emits directly **or** calls (by simple name,
transitively, within the same file) a function that does — the idiom
here is a per-module ``_emit`` funnel, and e.g. ``decide`` →
``_classify`` → ``_emit`` must count as covered.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import FileContext, Rule, iter_nodes, register

#: Basenames of the modules whose functions make journaled decisions.
_TARGET_BASENAMES = frozenset(
    {"ard.py", "aiu.py", "policies.py", "routing.py", "transfer.py"}
)

#: Return-annotation type names that mark a function as a decision site.
_DECISION_TYPES = ("CbrdDecision", "AiuResult", "DeliveryReport", "ChunkedOutcome")

#: Function names that are decision sites regardless of annotation
#: (the DTN dynamics: forwarding and gateway delivery).
_NAMED_SITES = frozenset({"_exchange", "step"})

_FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)


def _is_abstract(func: "ast.FunctionDef | ast.AsyncFunctionDef") -> bool:
    for decorator in func.decorator_list:
        name = ""
        if isinstance(decorator, ast.Name):
            name = decorator.id
        elif isinstance(decorator, ast.Attribute):
            name = decorator.attr
        if name in {"abstractmethod", "abstractproperty"}:
            return True
    return False


def _emits_directly(func: ast.AST) -> bool:
    """Does *func* contain an ``<anything>.emit(...)`` call?"""
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "emit"
        ):
            return True
    return False


def _called_names(func: ast.AST) -> "set[str]":
    """Simple names *func* calls: ``foo(...)`` and ``self.foo(...)``."""
    names = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Name):
            names.add(node.func.id)
        elif isinstance(node.func, ast.Attribute):
            names.add(node.func.attr)
    return names


def _enclosing_class(ctx: FileContext, node: ast.AST) -> "ast.ClassDef | None":
    parent = ctx.parent(node)
    while parent is not None:
        if isinstance(parent, ast.ClassDef):
            return parent
        parent = ctx.parent(parent)
    return None


def _returns_text(func: "ast.FunctionDef | ast.AsyncFunctionDef") -> str:
    if func.returns is None:
        return ""
    return ast.unparse(func.returns)


@register
class MissingJournalEventRule(Rule):
    """Decision sites in the journaled modules must reach ``.emit``."""

    name = "missing-journal-event"
    code = "BEES108"
    summary = (
        "decision sites in core/ard.py, core/aiu.py, core/policies.py, "
        "dtn/routing.py, and network/transfer.py must emit (or "
        "transitively reach) a decision-journal event"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        basename = ctx.path.replace("\\", "/").rsplit("/", 1)[-1]
        if basename not in _TARGET_BASENAMES:
            return
        functions = [
            node
            for node in iter_nodes(ctx.tree, _FunctionNode)
            if isinstance(node, _FunctionNode)
        ]
        # Fixpoint closure over same-file calls by simple name: a
        # function "emits" if it contains .emit(...) or calls another
        # in-file function that does (e.g. decide -> _classify -> _emit).
        emitting = {func.name for func in functions if _emits_directly(func)}
        calls = {func.name: _called_names(func) for func in functions}
        changed = True
        while changed:
            changed = False
            for func in functions:
                if func.name in emitting:
                    continue
                if calls[func.name] & emitting:
                    emitting.add(func.name)
                    changed = True
        for func in functions:
            if _is_abstract(func) or func.name in emitting:
                continue
            site = self._site_kind(ctx, func)
            if site is None:
                continue
            yield self.make(
                ctx,
                func,
                f"{func.name} is a decision site ({site}) but no path "
                "through it reaches a journal .emit(...) — every verdict "
                "must land in the decision journal",
            )

    def _site_kind(
        self, ctx: FileContext, func: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> "str | None":
        """Why *func* is a decision site, or ``None`` if it isn't one."""
        returns = _returns_text(func)
        for type_name in _DECISION_TYPES:
            if type_name in returns:
                return f"returns {type_name}"
        enclosing = _enclosing_class(ctx, func)
        if (
            func.name == "__call__"
            and enclosing is not None
            and "Policy" in enclosing.name
        ):
            return f"{enclosing.name}.__call__ policy application"
        if func.name in _NAMED_SITES:
            return f"DTN dynamics entry point {func.name}"
        return None
