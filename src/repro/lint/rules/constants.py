"""BEES101 ``paper-constants`` — paper-constant provenance.

The EAAS thresholds (``T = 0.013 + 0.006 * Ebat``, so the strictest
threshold is 0.019) and the fixed JPEG quality proportion (0.85) are
*the* numbers the paper's figures rest on.  They may be spelled as
literals only in :mod:`repro.core.config` and
:mod:`repro.core.policies`; everywhere else must import them, so a
retune happens in exactly one place.

The rule's detection set is *imported* from those modules rather than
re-stated here — beeslint itself obeys the invariant it enforces.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ...core.config import DEFAULT_QUALITY_PROPORTION
from ...core.policies import edr_policy
from ..findings import Finding
from ..registry import FileContext, Rule, iter_nodes, register

#: value -> what the paper calls it.
_EDR = edr_policy()
_PROTECTED = {
    DEFAULT_QUALITY_PROPORTION: "the fixed JPEG quality proportion",
    _EDR.intercept: "the EDR threshold floor (T at Ebat=0)",
    _EDR.slope: "the EDR threshold slope",
    _EDR(1.0): "the strictest EDR threshold (T at Ebat=1)",
}

#: Module paths where the literals are allowed to live.
_ALLOWED_SUFFIXES = ("repro/core/config.py", "repro/core/policies.py")


def _is_allowed_file(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return normalized.endswith(_ALLOWED_SUFFIXES)


def _call_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


@register
class PaperConstantRule(Rule):
    """Paper constants must be imported, never re-stated."""

    name = "paper-constants"
    code = "BEES101"
    summary = (
        "EAAS/quality constants (0.85, 0.013, 0.006, 0.019) may only be "
        "literal in repro.core.config / repro.core.policies"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if _is_allowed_file(ctx.path):
            return
        for node in iter_nodes(ctx.tree, ast.Constant):
            value = node.value
            if isinstance(value, float) and value in _PROTECTED:
                yield self.make(
                    ctx,
                    node,
                    f"literal {value} is {_PROTECTED[value]}; import it from "
                    "repro.core.config / repro.core.policies instead",
                )
        for call in iter_nodes(ctx.tree, ast.Call):
            if _call_name(call.func) != "LinearPolicy":
                continue
            literal_args = [
                arg
                for arg in list(call.args) + [kw.value for kw in call.keywords]
                if isinstance(arg, ast.Constant) and isinstance(arg.value, (int, float))
            ]
            if literal_args:
                yield self.make(
                    ctx,
                    call,
                    "LinearPolicy built from numeric literals outside "
                    "repro.core.policies; use the policy factories "
                    "(eac_policy/edr_policy/eau_policy) or LinearPolicy.fixed "
                    "over an imported constant",
                )
