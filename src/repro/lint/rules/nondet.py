"""BEES111 ``nondet-order`` — unordered iteration must not reach
deterministic surfaces.

Journal replay reproduces fingerprints *byte*-identically only because
every payload, every ranked vote, and every float accumulation happens
in a deterministic order.  Python ``set``s (and views over them) are
the classic leak: ``PYTHONHASHSEED`` scrambles their iteration order
between processes, so a set-derived list inside a journal payload
replays differently on another machine even though the run was
"correct".  BEES102–108 cannot see this — the hazard is a *value*
property, not a syntax shape.

The analysis tracks an UNORDERED taint through each function's CFG:

* **Sources** — set literals/comprehensions, ``set()``/``frozenset()``
  calls, set operators, ``.keys()/.values()/.items()`` over a tainted
  value, and calls to project functions whose summary says they return
  an unordered value.
* **Propagation** — ``list()``/``tuple()``/``iter()``/``reversed()``/
  ``enumerate()``/comprehensions over a tainted iterable keep the
  taint (materialising a set does not order it); appends and
  float-looking accumulation *inside a loop over a tainted iterable*
  taint the accumulator (iteration order becomes element order).
* **Sanitizers** — ``sorted()`` (and ``min``/``max``/``len``/``any``/
  ``all``/``in``, whose results are order-independent).

Sinks, flagged when a tainted value arrives:

* journal payloads (any argument of an ``.emit(...)`` call);
* fingerprints (arguments to ``*fingerprint*`` callees);
* ranked decisions (arguments to ``rank_votes``);
* float accumulation order (``sum()`` over a tainted iterable of
  float-suffixed values).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..flow.callgraph import CallGraph, fixpoint_summaries
from ..flow.cfg import CFG, Block, build_module_cfg, evaluated_nodes
from ..flow.dataflow import ForwardAnalysis, run_forward
from ..flow.symbols import FunctionInfo
from ..registry import FileContext, Rule, register

#: The abstract value for set-derived data.
UNORDERED = "unordered"

#: Callables producing unordered values outright.
_SET_MAKERS = frozenset({"set", "frozenset"})

#: Callables whose result keeps the (non-)order of their argument.
_ORDER_KEEPERS = frozenset({"list", "tuple", "iter", "reversed", "enumerate"})

#: Callables whose result is order-independent — sanitizers.
_SANITIZERS = frozenset({"sorted", "min", "max", "len", "any", "all"})

#: Dict/set view methods: unordered iff the receiver is.
_VIEW_METHODS = frozenset({"keys", "values", "items"})

#: Set methods returning a set whatever the receiver.
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)

#: Unit suffixes whose values are floats — the accumulation-order
#: hazard (int sums commute exactly; float sums do not).
_FLOAT_SUFFIXES = ("_joules", "_seconds")


def _call_name(call: ast.Call) -> "str | None":
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _looks_float(node: ast.AST) -> bool:
    """Could *node* evaluate to a float (suffix or literal evidence)?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
            return True
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name is not None and name.endswith(_FLOAT_SUFFIXES):
            return True
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
            return True
    return False


class _TaintEval:
    """Expression -> ordered/unordered against one environment."""

    def __init__(
        self,
        env: "dict[str, object]",
        resolver: "CallGraph | None",
        caller: "FunctionInfo | None",
        summaries: "dict[str, object]",
    ) -> None:
        self.env = env
        self.resolver = resolver
        self.caller = caller
        self.summaries = summaries

    def tainted(self, node: "ast.AST | None") -> bool:
        if node is None:
            return False
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return self.env.get(node.id) == UNORDERED
        if isinstance(node, ast.Starred):
            return self.tainted(node.value)
        if isinstance(node, ast.IfExp):
            return self.tainted(node.body) or self.tainted(node.orelse)
        if isinstance(node, ast.BinOp):
            # Set operators propagate; on non-sets they're arithmetic
            # and arithmetic on scalars carries no order.
            if isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.BitXor)):
                return self.tainted(node.left) or self.tainted(node.right)
            if isinstance(node.op, ast.Sub):
                return self.tainted(node.left) or self.tainted(node.right)
            return False
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return any(
                self.tainted(generator.iter) for generator in node.generators
            )
        if isinstance(node, ast.Call):
            return self._call_tainted(node)
        return False

    def _call_tainted(self, call: ast.Call) -> bool:
        name = _call_name(call)
        if name in _SET_MAKERS or name in _SET_METHODS:
            return True
        if name in _SANITIZERS:
            return False
        if name in _ORDER_KEEPERS:
            return bool(call.args) and self.tainted(call.args[0])
        if name in _VIEW_METHODS and isinstance(call.func, ast.Attribute):
            return self.tainted(call.func.value)
        if name == "join" and call.args:
            return self.tainted(call.args[0])
        if self.resolver is not None and self.caller is not None:
            target = self.resolver.resolve_call(call, self.caller)
            if target is not None:
                return self.summaries.get(target.key) == UNORDERED
        return False


class _TaintAnalysis(ForwardAnalysis):
    def __init__(self, evaluator_factory) -> None:
        self._factory = evaluator_factory

    def entry_state(self, cfg: CFG) -> "dict[str, object]":
        return {}

    def join_values(self, left: object, right: object) -> object:
        return UNORDERED if UNORDERED in (left, right) else left

    def transfer(
        self, block: Block, stmt: object, state: "dict[str, object]"
    ) -> "dict[str, object]":
        evaluator = self._factory(state)
        out = state
        if isinstance(stmt, ast.Assign):
            tainted = evaluator.tainted(stmt.value)
            out = dict(state)
            for target in stmt.targets:
                _bind(out, target, tainted)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            out = dict(state)
            _bind(out, stmt.target, evaluator.tainted(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                out = dict(state)
                already = state.get(stmt.target.id) == UNORDERED
                grows = evaluator.tainted(stmt.value) or (
                    _in_tainted_loop(block, evaluator)
                    and _looks_float(stmt.value)
                )
                _bind(out, stmt.target, already or grows)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            # The loop variable itself is a plain element — its *order*
            # is what is nondeterministic, which matters only when the
            # element lands in an order-sensitive accumulation (below).
            if isinstance(stmt.target, ast.Name):
                out = dict(state)
                _bind(out, stmt.target, False)
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            # ordered.append(x) inside a loop over a tainted iterable
            # makes the list order nondeterministic.
            call = stmt.value
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in ("append", "extend", "insert", "add")
                and isinstance(call.func.value, ast.Name)
                and _in_tainted_loop(block, evaluator)
            ):
                out = dict(state)
                out[call.func.value.id] = UNORDERED
        return out


def _in_tainted_loop(block: Block, evaluator: _TaintEval) -> bool:
    """Is *block* inside a loop iterating an unordered value?"""
    for loop in block.loops:
        if isinstance(loop, (ast.For, ast.AsyncFor)) and evaluator.tainted(
            loop.iter
        ):
            return True
    return False


def _bind(env: "dict[str, object]", target: ast.expr, tainted: bool) -> None:
    if isinstance(target, ast.Name):
        if tainted:
            env[target.id] = UNORDERED
        else:
            env.pop(target.id, None)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _bind(env, element, False)


def _linear_summary(
    function: FunctionInfo,
    resolver: CallGraph,
    summaries: "dict[str, object]",
) -> "object":
    """Does *function* return an unordered value? (source-order pass)"""
    env: "dict[str, object]" = {}
    evaluator = _TaintEval(env, resolver, function, summaries)
    verdict: object = None
    for node in ast.walk(function.node):
        if isinstance(node, ast.Assign):
            tainted = evaluator.tainted(node.value)
            for target in node.targets:
                _bind(env, target, tainted)
        elif isinstance(node, ast.Return) and node.value is not None:
            if evaluator.tainted(node.value):
                verdict = UNORDERED
    return verdict


@register
class NondetOrderRule(Rule):
    """Set-iteration order stays out of journals and fingerprints."""

    name = "nondet-order"
    code = "BEES111"
    summary = (
        "set-derived (hash-ordered) values never reach journal "
        "payloads, fingerprints, rank_votes, or float accumulation "
        "without sorted()"
    )
    requires_project = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        project = ctx.project
        if project is None:
            return
        resolver = project.artifact("callgraph", lambda: CallGraph(project))
        assert isinstance(resolver, CallGraph)
        summaries = project.artifact(
            "nondet.summaries",
            lambda: fixpoint_summaries(
                project,
                lambda function, current: _linear_summary(
                    function, resolver, current
                ),
            ),
        )
        assert isinstance(summaries, dict)
        module = project.module_at(ctx.path)
        if module is None:
            return
        scopes: "list[tuple[FunctionInfo | None, CFG]]" = [
            (None, build_module_cfg(ctx.tree))
        ]
        for function in module.functions.values():
            scopes.append((function, project.cfg_of(function)))
        for class_info in module.classes.values():
            for method in class_info.methods.values():
                scopes.append((method, project.cfg_of(method)))
        for function, cfg in scopes:
            yield from self._check_scope(ctx, function, cfg, resolver, summaries)

    def _check_scope(
        self,
        ctx: FileContext,
        function: "FunctionInfo | None",
        cfg: CFG,
        resolver: CallGraph,
        summaries: "dict[str, object]",
    ) -> Iterator[Finding]:
        def factory(state: "dict[str, object]") -> _TaintEval:
            return _TaintEval(state, resolver, function, summaries)

        analysis = _TaintAnalysis(factory)
        solution = run_forward(cfg, analysis)
        for block_id in sorted(cfg.blocks):
            block = cfg.blocks[block_id]
            state = dict(solution.in_states.get(block_id, {}))
            for stmt in block.statements:
                evaluator = factory(state)
                yield from self._check_stmt(ctx, stmt, evaluator)
                state = analysis.transfer(block, stmt, state)

    def _check_stmt(
        self, ctx: FileContext, stmt: ast.stmt, evaluator: _TaintEval
    ) -> Iterator[Finding]:
        for node in evaluated_nodes(stmt):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name == "emit" and isinstance(node.func, ast.Attribute):
                for arg in list(node.args) + [
                    keyword.value for keyword in node.keywords
                ]:
                    if evaluator.tainted(arg):
                        yield self.make(
                            ctx,
                            node,
                            "a set-derived (hash-ordered) value reaches a "
                            "journal payload; wrap it in sorted() so "
                            "replay and cross-run diffs stay "
                            "byte-identical",
                        )
                        break
            elif name == "rank_votes":
                for arg in node.args:
                    if evaluator.tainted(arg):
                        yield self.make(
                            ctx,
                            node,
                            "a set-derived (hash-ordered) value feeds "
                            "rank_votes; decisions must rank "
                            "deterministically ordered inputs",
                        )
                        break
            elif name is not None and "fingerprint" in name.lower():
                for arg in list(node.args) + [
                    keyword.value for keyword in node.keywords
                ]:
                    if evaluator.tainted(arg):
                        yield self.make(
                            ctx,
                            node,
                            "a set-derived (hash-ordered) value flows into "
                            f"{name}(); fingerprints must digest a "
                            "deterministic order",
                        )
                        break
            elif name == "sum" and node.args:
                arg = node.args[0]
                if evaluator.tainted(arg) and _looks_float(arg):
                    yield self.make(
                        ctx,
                        node,
                        "float accumulation over a set-derived "
                        "(hash-ordered) iterable: addition order is "
                        "nondeterministic; sort first",
                    )
