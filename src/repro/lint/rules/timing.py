"""BEES107 ``raw-timing`` — clock deltas outside the obs layer.

Every duration this repo reports should flow through the observability
layer — spans (``obs.span``) or the ``bees_stage_seconds`` /
``bees_link_transfer_seconds`` histograms — so latency numbers share
one pipeline, one bucket layout, and one export path.  A bare
``time.perf_counter() - t0`` recorded ad hoc bypasses all of it: the
number never reaches an artifact, a dashboard, or an SLO.

The rule flags subtraction expressions where either operand is a wall
clock read (``time.time`` / ``perf_counter`` / ``monotonic`` and their
``_ns`` variants), directly or through a name assigned from one::

    t0 = time.perf_counter()
    ...
    elapsed = time.perf_counter() - t0   # BEES107

Sanctioned homes for raw deltas — the tracer and profiler internals
(they *are* the obs helpers), the bench harness's wall clock, and the
micro-benchmarks' timing loops — carry explicit
``# beeslint: disable=raw-timing`` / ``disable-file=raw-timing``
suppressions with justifications, which keeps every exception visible
and greppable.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import FileContext, Rule, iter_nodes, register

#: ``time`` module functions that read a wall/monotonic clock.
_CLOCK_FUNCS = frozenset(
    {
        "time",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)


def _is_clock_call(node: ast.AST) -> bool:
    """``time.perf_counter()`` / ``perf_counter()`` style calls."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return (
            func.attr in _CLOCK_FUNCS
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
        )
    if isinstance(func, ast.Name):
        return func.id in _CLOCK_FUNCS
    return False


def _clock_names(tree: ast.Module) -> "set[str]":
    """Names assigned (anywhere in the file) from a clock read."""
    names: "set[str]" = set()
    for node in ast.walk(tree):
        value = None
        targets: "list[ast.expr]" = []
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value, targets = node.value, [node.target]
        elif isinstance(node, ast.keyword) and node.arg is not None:
            # ``Span(..., _t0=time.perf_counter())`` captures too.
            if _is_clock_call(node.value):
                names.add(node.arg)
            continue
        if value is not None and _is_clock_call(value):
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
                elif isinstance(target, ast.Attribute):
                    names.add(target.attr)
    return names


@register
class RawTimingRule(Rule):
    """Clock-delta arithmetic belongs inside the obs helpers."""

    name = "raw-timing"
    code = "BEES107"
    summary = (
        "time.time()/perf_counter() deltas must go through repro.obs "
        "(spans or histograms), not ad-hoc subtraction"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        clock_names = _clock_names(ctx.tree)

        def reads_clock(node: ast.AST) -> bool:
            if _is_clock_call(node):
                return True
            if isinstance(node, ast.Name):
                return node.id in clock_names
            if isinstance(node, ast.Attribute):
                return node.attr in clock_names
            return False

        for binop in iter_nodes(ctx.tree, ast.BinOp):
            assert isinstance(binop, ast.BinOp)
            if not isinstance(binop.op, ast.Sub):
                continue
            if reads_clock(binop.left) or reads_clock(binop.right):
                yield self.make(
                    ctx,
                    binop,
                    "raw clock delta recorded outside the obs layer; time "
                    "it with obs.span(...) or a bees_* histogram so the "
                    "number reaches artifacts, dashboards, and SLOs "
                    "(suppress with a justification if this IS an obs "
                    "helper or a benchmark timing loop)",
                )
