"""BEES102 ``unit-suffix`` — byte/joule/second naming discipline.

BEES' evaluation is an exercise in unit-consistent accounting: bytes on
the uplink, joules out of the battery, seconds of pipeline delay.  The
rule pins the naming convention that keeps that accounting auditable:

* identifiers carrying a unit end in the *canonical* suffix
  (``_bytes`` / ``_joules`` / ``_seconds``), never an abbreviation
  (``_j``, ``_s``, ``_sec``, ``_secs``, ``_byte``, ``_joule``);
* the unit token is a suffix, not a prefix (``sent_bytes``, not
  ``bytes_sent``) — rate names containing ``_per_`` are exempt;
* ``+``/``-``/comparisons between identifiers whose suffixes name
  *different* units are flagged (adding joules to seconds is always a
  bug, whatever the types say).

Only Python identifiers are checked.  String literals — artifact JSON
keys, Prometheus metric names, span attributes — are wire formats with
their own compatibility story and are deliberately out of scope.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..findings import Finding
from ..registry import FileContext, Rule, iter_nodes, register

_CANONICAL = ("_bytes", "_joules", "_seconds")

#: deprecated suffix -> canonical replacement.
_ABBREVIATIONS = {
    "_j": "_joules",
    "_joule": "_joules",
    "_s": "_seconds",
    "_sec": "_seconds",
    "_secs": "_seconds",
    "_byte": "_bytes",
}

_PREFIX_RE = re.compile(r"^(bytes|joules|seconds)_")


def unit_of(identifier: str) -> "str | None":
    """The canonical unit suffix of *identifier*, if it carries one."""
    lowered = identifier.lower()
    for suffix in _CANONICAL:
        if lowered.endswith(suffix):
            return suffix
    return None


def _bad_suffix(identifier: str) -> "str | None":
    """The canonical suffix an abbreviated identifier should use."""
    lowered = identifier.lower()
    for abbrev, canonical in _ABBREVIATIONS.items():
        if lowered.endswith(abbrev):
            return canonical
    return None


def _identifier_nodes(ctx: FileContext) -> "Iterator[tuple[ast.AST, str]]":
    """(node, identifier) pairs for every name-like site in the file."""
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Name):
            yield node, node.id
        elif isinstance(node, ast.Attribute):
            yield node, node.attr
        elif isinstance(node, ast.arg):
            yield node, node.arg
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.name
        elif isinstance(node, ast.keyword) and node.arg is not None:
            yield node, node.arg


def _operand_unit(node: ast.expr) -> "str | None":
    if isinstance(node, ast.Name):
        return unit_of(node.id)
    if isinstance(node, ast.Attribute):
        return unit_of(node.attr)
    return None


@register
class UnitSuffixRule(Rule):
    """Unit-carrying names end in _bytes/_joules/_seconds; no mixing."""

    name = "unit-suffix"
    code = "BEES102"
    summary = (
        "byte/joule/second identifiers use canonical suffixes and are "
        "never mixed across units in +/-/comparisons"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        seen: "set[tuple[str, int]]" = set()
        for node, identifier in _identifier_nodes(ctx):
            line = getattr(node, "lineno", 1)
            if (identifier, line) in seen:
                continue
            canonical = _bad_suffix(identifier)
            if canonical is not None:
                seen.add((identifier, line))
                yield self.make(
                    ctx,
                    node,
                    f"identifier {identifier!r} abbreviates a unit; "
                    f"use the {canonical!r} suffix",
                )
                continue
            if (
                _PREFIX_RE.match(identifier)
                and unit_of(identifier) is None
                and "_per_" not in identifier
            ):
                seen.add((identifier, line))
                unit = identifier.split("_", 1)[0]
                yield self.make(
                    ctx,
                    node,
                    f"identifier {identifier!r} carries unit {unit!r} as a "
                    f"prefix; make it the suffix (e.g. "
                    f"{'_'.join(identifier.split('_')[1:])}_{unit})",
                )
        for binop in iter_nodes(ctx.tree, ast.BinOp):
            if not isinstance(binop.op, (ast.Add, ast.Sub)):
                continue
            left, right = _operand_unit(binop.left), _operand_unit(binop.right)
            if left is not None and right is not None and left != right:
                yield self.make(
                    ctx,
                    binop,
                    f"arithmetic mixes units: {left!r} and {right!r} operands "
                    "in one +/- expression",
                )
        for compare in iter_nodes(ctx.tree, ast.Compare):
            operands = [compare.left] + list(compare.comparators)
            for first, second in zip(operands, operands[1:]):
                left, right = _operand_unit(first), _operand_unit(second)
                if left is not None and right is not None and left != right:
                    yield self.make(
                        ctx,
                        compare,
                        f"comparison mixes units: {left!r} vs {right!r}",
                    )
