"""BEES103 ``seeded-rng`` — deterministic randomness only.

Every figure in the reproduction must be re-runnable bit-for-bit: the
bench harness diffs byte and joule counts exactly.  That dies the
moment any module reaches for process-global randomness.  The rule
bans the legacy ``np.random.*`` functions and the stdlib ``random``
module outright, and requires ``numpy.random.default_rng(seed)`` —
i.e. explicit ``Generator`` objects threaded as parameters.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import FileContext, Rule, iter_nodes, register

#: The only attributes of ``numpy.random`` a module may touch.
_ALLOWED_NP_RANDOM = {"default_rng", "Generator", "BitGenerator", "SeedSequence"}


def _np_random_attr(func: ast.expr) -> "str | None":
    """``np.random.X`` / ``numpy.random.X`` -> ``X``, else None."""
    if not isinstance(func, ast.Attribute):
        return None
    value = func.value
    if (
        isinstance(value, ast.Attribute)
        and value.attr == "random"
        and isinstance(value.value, ast.Name)
        and value.value.id in {"np", "numpy"}
    ):
        return func.attr
    return None


def _stdlib_random_attr(func: ast.expr) -> "str | None":
    """``random.X`` (the stdlib module) -> ``X``, else None."""
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "random"
    ):
        return func.attr
    return None


@register
class SeededRngRule(Rule):
    """No global RNG state; Generators are seeded and passed around."""

    name = "seeded-rng"
    code = "BEES103"
    summary = (
        "no np.random.*/random.* global-state calls; use seeded "
        "numpy.random.default_rng Generators passed as parameters"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in iter_nodes(ctx.tree, (ast.Import, ast.ImportFrom)):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        yield self.make(
                            ctx,
                            node,
                            "stdlib 'random' has process-global state; use a "
                            "seeded numpy.random.Generator instead",
                        )
            elif node.module == "random":
                yield self.make(
                    ctx,
                    node,
                    "importing from stdlib 'random' introduces global RNG "
                    "state; use a seeded numpy.random.Generator instead",
                )
        for call in iter_nodes(ctx.tree, ast.Call):
            attr = _np_random_attr(call.func)
            if attr is not None and attr not in _ALLOWED_NP_RANDOM:
                yield self.make(
                    ctx,
                    call,
                    f"np.random.{attr} uses the legacy global RNG; build a "
                    "seeded Generator with np.random.default_rng(seed)",
                )
                continue
            if attr == "default_rng" and not call.args and not call.keywords:
                yield self.make(
                    ctx,
                    call,
                    "np.random.default_rng() without a seed is "
                    "nondeterministic; pass an explicit seed",
                )
                continue
            std_attr = _stdlib_random_attr(call.func)
            if std_attr is not None:
                yield self.make(
                    ctx,
                    call,
                    f"random.{std_attr} uses process-global state; use a "
                    "seeded numpy.random.Generator parameter",
                )
            if (
                isinstance(call.func, ast.Name)
                and call.func.id == "default_rng"
                and not call.args
                and not call.keywords
            ):
                yield self.make(
                    ctx,
                    call,
                    "default_rng() without a seed is nondeterministic; pass "
                    "an explicit seed",
                )
