"""beeslint — the BEES-invariant static analysis suite.

An AST-based linter whose rules encode the *semantic* invariants the
paper's numbers rest on, the ones a generic linter cannot know:

==========  =================  ==========================================
code        slug               protects
==========  =================  ==========================================
BEES101     paper-constants    EAAS / quality constants live in one place
BEES102     unit-suffix        byte/joule/second accounting stays legible
BEES103     seeded-rng         every run is reproducible bit-for-bit
BEES104     float-equality     similarity comparisons are well-defined
BEES105     obs-coverage       every scheme/benchmark is instrumented
BEES106     ebat-range         battery fractions stay in [0, 1]
BEES109     lock-discipline    shared shard state is touched lock-held
BEES110     unit-flow          bytes/joules/seconds never cross-assign
BEES111     nondet-order       unordered iteration never reaches journals
==========  =================  ==========================================

Use it as a library (:func:`lint_paths`, :func:`lint_source`) or via
``python -m repro lint``.  Suppress a finding with an inline
``# beeslint: disable=<slug>`` comment; suppress file-wide with
``# beeslint: disable-file=<slug>``.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .engine import (
    LintResult,
    changed_python_files,
    iter_python_files,
    lint_paths,
    lint_source,
)
from .findings import FileReport, Finding
from .flow.cache import CACHE_DIR_NAME
from .registry import FileContext, Rule, all_rules, register, resolve_rules
from .reporters import render_console, render_json, render_sarif

__all__ = [
    "ConfigurationError",
    "FileContext",
    "FileReport",
    "Finding",
    "LintResult",
    "Rule",
    "CACHE_DIR_NAME",
    "all_rules",
    "changed_python_files",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "register",
    "render_console",
    "render_json",
    "render_sarif",
    "resolve_rules",
]
