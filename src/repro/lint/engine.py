"""The beeslint engine: walk, parse, check, suppress.

Pure stdlib (``ast`` + ``tokenize``), so the gate runs anywhere the
pipeline runs — no third-party linter needed for the BEES-specific
invariants.  Generic style is ruff's job; *semantic* drift (paper
constants, units, determinism, instrumentation) is beeslint's.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from ..errors import ConfigurationError
from .findings import FileReport, Finding
from .registry import FileContext, Rule, all_rules, walk_with_parents
from .suppression import parse_suppressions

#: Directory basenames never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "results", ".venv", "node_modules"}


@dataclass(frozen=True)
class LintResult:
    """The outcome of one lint run over a set of paths."""

    reports: "tuple[FileReport, ...]" = field(default=())

    @property
    def findings(self) -> "tuple[Finding, ...]":
        """Every finding across every file, in path/line order."""
        collected = [f for report in self.reports for f in report.findings]
        return tuple(sorted(collected))

    @property
    def errors(self) -> "tuple[FileReport, ...]":
        """Files that failed to parse."""
        return tuple(r for r in self.reports if r.error is not None)

    @property
    def files_checked(self) -> int:
        """How many files were parsed and checked."""
        return len(self.reports)

    @property
    def ok(self) -> bool:
        """True when no findings and no parse errors."""
        return not self.findings and not self.errors


def iter_python_files(paths: "Sequence[str]") -> "Iterator[str]":
    """Expand files/directories into a sorted stream of ``.py`` paths."""
    seen = set()
    for raw in paths:
        path = os.path.normpath(raw)
        if os.path.isfile(path):
            if path.endswith(".py") and path not in seen:
                seen.add(path)
                yield path
            continue
        if not os.path.isdir(path):
            raise ConfigurationError(f"lint path does not exist: {raw}")
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames if d not in _SKIP_DIRS and not d.startswith(".")
            )
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                full = os.path.join(dirpath, filename)
                if full not in seen:
                    seen.add(full)
                    yield full


def _rule_aliases(rules: "Iterable[Rule]") -> "dict[str, str]":
    """slug-and-code -> canonical slug, for suppression matching."""
    aliases = {}
    for rule in rules:
        aliases[rule.name] = rule.name
        aliases[rule.code] = rule.name
    return aliases


def lint_source(
    source: str,
    path: str = "<string>",
    rules: "Sequence[Rule] | None" = None,
) -> FileReport:
    """Lint one in-memory module; the unit tests' entry point."""
    active = tuple(rules) if rules is not None else all_rules()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return FileReport(path=path, error=f"syntax error: {exc.msg} (line {exc.lineno})")
    ctx = FileContext(
        path=path,
        source=source,
        tree=tree,
        lines=tuple(source.splitlines()),
        parents=walk_with_parents(tree),
    )
    table = parse_suppressions(source)
    aliases = _rule_aliases(active)
    findings = []
    for rule in active:
        for finding in rule.check(ctx):
            if not table.suppresses(finding, aliases):
                findings.append(finding)
    return FileReport(path=path, findings=tuple(sorted(findings)))


def lint_paths(
    paths: "Sequence[str]",
    rules: "Sequence[Rule] | None" = None,
) -> LintResult:
    """Lint every ``.py`` file under *paths*."""
    reports = []
    for path in iter_python_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            reports.append(FileReport(path=path, error=f"unreadable: {exc}"))
            continue
        reports.append(lint_source(source, path=path, rules=rules))
    return LintResult(reports=tuple(reports))
