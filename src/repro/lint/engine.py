"""The beeslint engine: walk, parse, check, suppress.

Pure stdlib (``ast`` + ``tokenize``), so the gate runs anywhere the
pipeline runs — no third-party linter needed for the BEES-specific
invariants.  Generic style is ruff's job; *semantic* drift (paper
constants, units, determinism, instrumentation) is beeslint's.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from ..errors import ConfigurationError
from .findings import FileReport, Finding
from .registry import FileContext, Rule, all_rules, walk_with_parents
from .suppression import parse_suppressions

#: Directory basenames never descended into.
_SKIP_DIRS = {
    "__pycache__",
    ".git",
    ".hypothesis",
    "results",
    ".venv",
    "node_modules",
    ".beeslint_cache",
}


@dataclass(frozen=True)
class LintResult:
    """The outcome of one lint run over a set of paths."""

    reports: "tuple[FileReport, ...]" = field(default=())
    #: Incremental-cache accounting for this run (0/0 when uncached).
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def findings(self) -> "tuple[Finding, ...]":
        """Every finding across every file, in path/line order."""
        collected = [f for report in self.reports for f in report.findings]
        return tuple(sorted(collected))

    @property
    def errors(self) -> "tuple[FileReport, ...]":
        """Files that failed to parse."""
        return tuple(r for r in self.reports if r.error is not None)

    @property
    def files_checked(self) -> int:
        """How many files were parsed and checked."""
        return len(self.reports)

    @property
    def ok(self) -> bool:
        """True when no findings and no parse errors."""
        return not self.findings and not self.errors


def iter_python_files(paths: "Sequence[str]") -> "Iterator[str]":
    """Expand files/directories into a sorted stream of ``.py`` paths."""
    seen = set()
    for raw in paths:
        path = os.path.normpath(raw)
        if os.path.isfile(path):
            if path.endswith(".py") and path not in seen:
                seen.add(path)
                yield path
            continue
        if not os.path.isdir(path):
            raise ConfigurationError(f"lint path does not exist: {raw}")
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames if d not in _SKIP_DIRS and not d.startswith(".")
            )
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                full = os.path.join(dirpath, filename)
                if full not in seen:
                    seen.add(full)
                    yield full


def changed_python_files(paths: "Sequence[str]") -> "list[str]":
    """The subset of ``iter_python_files(paths)`` that differs from git HEAD.

    "Changed" means modified/added relative to HEAD (staged or not) or
    untracked-but-not-ignored — exactly the files a pre-push lint run
    cares about.  Paths come back repo-root-relative from git, so they
    are re-anchored to the current working directory first.
    """
    import subprocess

    def _git(*argv: str) -> "list[str]":
        try:
            proc = subprocess.run(
                ["git", *argv],
                capture_output=True,
                text=True,
                check=True,
            )
        except (OSError, subprocess.CalledProcessError) as exc:
            raise ConfigurationError(
                f"--changed requires a git checkout: git {argv[0]} failed ({exc})"
            ) from None
        return [line for line in proc.stdout.splitlines() if line.strip()]

    toplevel = _git("rev-parse", "--show-toplevel")[0]
    changed = set()
    for listing in (
        _git("diff", "--name-only", "HEAD", "--"),
        _git("ls-files", "--others", "--exclude-standard"),
    ):
        for line in listing:
            changed.add(os.path.normpath(os.path.join(toplevel, line)))
    return [
        path
        for path in iter_python_files(paths)
        if os.path.normpath(os.path.abspath(path)) in changed
    ]


def _rule_aliases(rules: "Iterable[Rule]") -> "dict[str, str]":
    """slug-and-code -> canonical slug, for suppression matching."""
    aliases = {}
    for rule in rules:
        aliases[rule.name] = rule.name
        aliases[rule.code] = rule.name
    return aliases


def _needs_project(rules: "Sequence[Rule]") -> bool:
    return any(getattr(rule, "requires_project", False) for rule in rules)


def _check_file(
    path: str,
    source: str,
    tree: ast.Module,
    active: "Sequence[Rule]",
    project: object,
) -> FileReport:
    """Run every rule over one parsed file and apply suppressions."""
    ctx = FileContext(
        path=path,
        source=source,
        tree=tree,
        lines=tuple(source.splitlines()),
        parents=walk_with_parents(tree),
        project=project,  # type: ignore[arg-type]
    )
    table = parse_suppressions(source)
    aliases = _rule_aliases(active)
    findings = []
    for rule in active:
        for finding in rule.check(ctx):
            if not table.suppresses(finding, aliases):
                findings.append(finding)
    return FileReport(path=path, findings=tuple(sorted(findings)))


def _syntax_error_report(path: str, exc: SyntaxError) -> FileReport:
    return FileReport(
        path=path, error=f"syntax error: {exc.msg} (line {exc.lineno})"
    )


def lint_source(
    source: str,
    path: str = "<string>",
    rules: "Sequence[Rule] | None" = None,
) -> FileReport:
    """Lint one in-memory module; the unit tests' entry point.

    Whole-program rules see a single-file project, so intra-file
    interprocedural flows (helper -> caller) still resolve.
    """
    active = tuple(rules) if rules is not None else all_rules()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return _syntax_error_report(path, exc)
    project = None
    if _needs_project(active):
        from .flow.project import Project

        project = Project.from_sources([(path, tree)])
    return _check_file(path, source, tree, active, project)


def lint_paths(
    paths: "Sequence[str]",
    rules: "Sequence[Rule] | None" = None,
    cache_dir: "str | None" = None,
    project_paths: "Sequence[str] | None" = None,
) -> LintResult:
    """Lint every ``.py`` file under *paths*.

    *project_paths* widens the whole-program context beyond the checked
    set (``--changed`` passes the default roots here so interprocedural
    summaries always see the full program).  *cache_dir* enables the
    content-hash incremental cache: files whose own digest **and**
    project digest match a prior run are served from cache without
    re-running any rule — and when every file hits, the project is not
    even built.
    """
    active = tuple(rules) if rules is not None else all_rules()
    needs_project = _needs_project(active)
    checked = list(iter_python_files(paths))
    scope = list(checked)
    if project_paths is not None:
        in_scope = set(scope)
        for path in iter_python_files(project_paths):
            if path not in in_scope:
                in_scope.add(path)
                scope.append(path)

    sources: "dict[str, str]" = {}
    read_errors: "dict[str, str]" = {}
    for path in scope:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                sources[path] = handle.read()
        except OSError as exc:
            read_errors[path] = f"unreadable: {exc}"

    cache = None
    proj_digest = None
    if cache_dir is not None:
        from .flow.cache import LintCache, file_digest, project_digest, rule_salt

        digests = {
            path: file_digest(source) for path, source in sources.items()
        }
        if needs_project:
            proj_digest = project_digest(digests)
        cache = LintCache(
            cache_dir, rule_salt(rule.code for rule in active)
        )

    reports: "dict[str, FileReport]" = {}
    to_analyze: "list[str]" = []
    for path in checked:
        if path in read_errors:
            reports[path] = FileReport(path=path, error=read_errors[path])
            continue
        if cache is not None:
            hit = cache.lookup(path, digests[path], proj_digest)
            if hit is not None:
                reports[path] = hit
                continue
        to_analyze.append(path)

    if to_analyze:
        trees: "dict[str, ast.Module]" = {}
        for path, source in sources.items():
            try:
                trees[path] = ast.parse(source, filename=path)
            except SyntaxError as exc:
                if path in to_analyze:
                    reports[path] = _syntax_error_report(path, exc)
                    if cache is not None:
                        cache.store(reports[path], digests[path], proj_digest)
        project = None
        if needs_project:
            from .flow.project import Project

            project = Project.from_sources(sorted(trees.items()))
        for path in to_analyze:
            if path in reports:  # syntax error, already reported
                continue
            reports[path] = _check_file(
                path, sources[path], trees[path], active, project
            )
            if cache is not None:
                cache.store(reports[path], digests[path], proj_digest)

    if cache is not None:
        cache.save()
    return LintResult(
        reports=tuple(reports[path] for path in checked),
        cache_hits=0 if cache is None else cache.hits,
        cache_misses=0 if cache is None else cache.misses,
    )
