"""The unit of beeslint output: one finding at one source location.

Findings are plain frozen dataclasses so reporters can render them
however they like (console lines, JSON objects) and tests can compare
them structurally.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def as_dict(self) -> "dict[str, object]":
        """The JSON-reporter shape of this finding."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    def format(self) -> str:
        """``path:line:col: [rule] message`` — the console shape."""
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class FileReport:
    """Everything one file produced: findings plus parse failures."""

    path: str
    findings: "tuple[Finding, ...]" = field(default=())
    error: "str | None" = None

    @property
    def ok(self) -> bool:
        """True when the file parsed and produced no findings."""
        return self.error is None and not self.findings
