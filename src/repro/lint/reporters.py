"""beeslint output formats: console lines and a JSON document."""

from __future__ import annotations

import json

from .engine import LintResult


def render_console(result: LintResult) -> str:
    """One ``path:line:col: [rule] message`` line per finding."""
    lines = []
    for report in result.errors:
        lines.append(f"{report.path}: error: {report.error}")
    for finding in result.findings:
        lines.append(finding.format())
    count = len(result.findings)
    noun = "finding" if count == 1 else "findings"
    lines.append(
        f"beeslint: {count} {noun} in {result.files_checked} file(s)"
        + (f", {len(result.errors)} file error(s)" if result.errors else "")
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """A machine-readable report (stable key order, trailing newline)."""
    document = {
        "tool": "beeslint",
        "files_checked": result.files_checked,
        "findings": [finding.as_dict() for finding in result.findings],
        "errors": [
            {"path": report.path, "error": report.error} for report in result.errors
        ],
        "ok": result.ok,
    }
    return json.dumps(document, indent=2, sort_keys=False) + "\n"
