"""beeslint output formats: console lines, JSON, and SARIF 2.1.0."""

from __future__ import annotations

import json
import os

from .engine import LintResult
from .registry import all_rules

#: The canonical SARIF 2.1.0 schema location, embedded so consumers
#: (GitHub code scanning, IDE viewers) can validate the document.
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
SARIF_VERSION = "2.1.0"


def render_console(result: LintResult) -> str:
    """One ``path:line:col: [rule] message`` line per finding."""
    lines = []
    for report in result.errors:
        lines.append(f"{report.path}: error: {report.error}")
    for finding in result.findings:
        lines.append(finding.format())
    count = len(result.findings)
    noun = "finding" if count == 1 else "findings"
    lines.append(
        f"beeslint: {count} {noun} in {result.files_checked} file(s)"
        + (f", {len(result.errors)} file error(s)" if result.errors else "")
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """A machine-readable report (stable key order, trailing newline)."""
    document = {
        "tool": "beeslint",
        "files_checked": result.files_checked,
        "findings": [finding.as_dict() for finding in result.findings],
        "errors": [
            {"path": report.path, "error": report.error} for report in result.errors
        ],
        "ok": result.ok,
    }
    return json.dumps(document, indent=2, sort_keys=False) + "\n"


def _sarif_uri(path: str) -> str:
    """A SARIF artifact URI: relative, forward-slashed."""
    relative = os.path.relpath(path)
    if relative.startswith(".."):
        relative = path  # outside the working tree; keep it absolute-ish
    return relative.replace(os.sep, "/")


def render_sarif(result: LintResult) -> str:
    """A SARIF 2.1.0 document for code-scanning upload.

    Every registered rule is described in the driver (so suppressed or
    clean rules still show up in the scanning UI), findings become
    ``results`` with one physical location each, and unreadable files
    surface as tool-configuration notifications so a parse failure is
    never silently dropped from the upload.
    """
    from .. import __version__  # local: avoid a package-level cycle

    rules = sorted(all_rules(), key=lambda rule: rule.code)
    rule_index = {rule.name: position for position, rule in enumerate(rules)}
    descriptors = [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in rules
    ]
    results = []
    for finding in result.findings:
        entry: "dict[str, object]" = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": _sarif_uri(finding.path)},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if finding.rule in rule_index:
            entry["ruleIndex"] = rule_index[finding.rule]
            entry["ruleId"] = rules[rule_index[finding.rule]].code
        results.append(entry)
    notifications = [
        {
            "level": "error",
            "message": {"text": report.error or "unreadable file"},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": _sarif_uri(report.path)}
                    }
                }
            ],
        }
        for report in result.errors
    ]
    run: "dict[str, object]" = {
        "tool": {
            "driver": {
                "name": "beeslint",
                "version": __version__,
                "informationUri": "https://example.invalid/bees-repro/beeslint",
                "rules": descriptors,
            }
        },
        "results": results,
        "columnKind": "utf16CodeUnits",
    }
    if notifications:
        run["invocations"] = [
            {
                "executionSuccessful": False,
                "toolConfigurationNotifications": notifications,
            }
        ]
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [run],
    }
    return json.dumps(document, indent=2, sort_keys=False) + "\n"
