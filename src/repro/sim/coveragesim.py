"""The coverage experiment — Figure 12.

Protocol (Section IV-B6): the Paris test subset is divided equally
among N phones (paper: 25); every phone starts with a full battery and
uploads one group (paper: 40 images) every 20 minutes to the *shared*
servers; when all batteries are dead, the images the servers received
are mapped by geotag.  The score is coverage — the number of unique
locations received — where BEES' redundancy elimination lets the same
energy budget cover ~2x the locations of Direct Upload.

All phones share one server (and hence one index): a location one phone
has already covered is redundant for every other phone, which is the
cross-phone elimination the experiment demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baselines.base import SharingScheme
from ..datasets.base import batched
from ..datasets.geo import unique_locations
from ..datasets.paris import SyntheticParis
from ..energy import Battery
from ..errors import SimulationError
from ..network import FluctuatingChannel, Uplink
from .device import Smartphone
from .session import UploadSession, build_server

#: The paper's parameters (scaled down by default in the benches).
DEFAULT_PHONES = 25
DEFAULT_GROUP_SIZE = 40


@dataclass(frozen=True)
class CoverageResult:
    """Outcome of one scheme's coverage run."""

    scheme: str
    images_uploaded: int
    locations_covered: int
    intervals_survived: int
    #: Geotags of every image the server received (map drawing).
    received_geotags: tuple = ()

    @property
    def locations_per_image(self) -> float:
        """Information efficiency: unique locations per uploaded image."""
        if self.images_uploaded == 0:
            return 0.0
        return self.locations_covered / self.images_uploaded


@dataclass
class CoverageExperiment:
    """N phones draining their batteries into a shared server."""

    dataset: SyntheticParis = field(default_factory=SyntheticParis)
    n_phones: int = 5
    group_size: int = 20
    interval_seconds: float = 20 * 60.0
    capacity_fraction: float = 1.0
    shuffle_seed: int = 42

    def __post_init__(self) -> None:
        if self.n_phones < 1:
            raise SimulationError(f"n_phones must be >= 1, got {self.n_phones}")
        if self.group_size < 1:
            raise SimulationError(f"group_size must be >= 1, got {self.group_size}")
        if not 0.0 < self.capacity_fraction <= 1.0:
            raise SimulationError(
                f"capacity_fraction must be in (0, 1], got {self.capacity_fraction}"
            )

    def _phone_batches(self) -> "list[list[list]]":
        """Deal the shuffled dataset equally to phones, then batch it."""
        refs = self.dataset.shuffled_refs(self.shuffle_seed)
        per_phone = len(refs) // self.n_phones
        batches = []
        for phone in range(self.n_phones):
            share = refs[phone * per_phone : (phone + 1) * per_phone]
            images = [self.dataset.image(loc, view) for loc, view in share]
            batches.append(batched(images, self.group_size))
        return batches

    def run(self, scheme: SharingScheme) -> CoverageResult:
        """Drain all phones round-robin; then score the server's map."""
        server = build_server(scheme)
        sessions = []
        for phone in range(self.n_phones):
            # Stagger channel seeds so phones see independent goodput.
            device = Smartphone(
                name=f"phone-{phone}",
                uplink=Uplink(channel=FluctuatingChannel(seed=phone)),
            )
            device.battery = Battery(
                capacity_joules=device.profile.battery_capacity_joules * self.capacity_fraction
            )
            sessions.append(UploadSession(scheme=scheme, device=device, server=server))

        phone_batches = self._phone_batches()
        intervals = 0
        interval = 0
        while True:
            progressed = False
            for phone, session in enumerate(sessions):
                batches = phone_batches[phone]
                if interval >= len(batches) or not session.device.alive:
                    continue
                session.run_batch(batches[interval])
                session.device.idle(self.interval_seconds)
                progressed = True
            if not progressed:
                break
            intervals += 1
            interval += 1

        geotags = [
            record.geotag
            for record in server.store.records()
            if record.received_bytes > 0
        ]
        uploaded = sum(session.total_uploaded for session in sessions)
        return CoverageResult(
            scheme=scheme.name,
            images_uploaded=uploaded,
            locations_covered=unique_locations(geotags),
            intervals_survived=intervals,
            received_geotags=tuple(geotags),
        )
