"""Per-batch session telemetry.

A :class:`TimelineRecorder` attached to an :class:`~repro.sim.session.
UploadSession` captures one row per processed batch — battery level
before/after, bytes, energy by category, eliminations — so experiment
drivers and notebooks can analyse *trajectories* (how BEES' behaviour
shifts as the battery drains) rather than just end-state aggregates.
"""

from __future__ import annotations

import csv
import pathlib
from dataclasses import asdict, dataclass, field, fields

from ..baselines.base import BatchReport
from ..errors import SimulationError


@dataclass(frozen=True)
class TimelineRow:
    """One batch's worth of telemetry."""

    batch_index: int
    scheme: str
    ebat_before: float
    ebat_after: float
    n_images: int
    n_uploaded: int
    n_eliminated_cross: int
    n_eliminated_in_batch: int
    sent_bytes: int
    energy_joules: float
    halted: bool

    @property
    def ebat_spent(self) -> float:
        """Battery fraction this batch consumed."""
        return self.ebat_before - self.ebat_after


@dataclass
class TimelineRecorder:
    """Accumulates :class:`TimelineRow` entries across a session."""

    rows: "list[TimelineRow]" = field(default_factory=list)

    def record(
        self, report: BatchReport, ebat_before: float, ebat_after: float
    ) -> TimelineRow:
        """Append one batch's telemetry."""
        if not 0.0 <= ebat_after <= ebat_before <= 1.0:
            raise SimulationError(
                f"inconsistent battery readings: {ebat_before} -> {ebat_after}"
            )
        row = TimelineRow(
            batch_index=len(self.rows),
            scheme=report.scheme,
            ebat_before=ebat_before,
            ebat_after=ebat_after,
            n_images=report.n_images,
            n_uploaded=report.n_uploaded,
            n_eliminated_cross=len(report.eliminated_cross_batch),
            n_eliminated_in_batch=len(report.eliminated_in_batch),
            sent_bytes=report.sent_bytes,
            energy_joules=report.total_energy_joules,
            halted=report.halted,
        )
        self.rows.append(row)
        return row

    def __len__(self) -> int:
        return len(self.rows)

    # -- trajectory queries ----------------------------------------------------

    def energy_series(self) -> "list[float]":
        """Per-batch energy — BEES' falls as Ebat drains (EAAS)."""
        return [row.energy_joules for row in self.rows]

    def sent_bytes_series(self) -> "list[int]":
        """Per-batch uplink bytes — the bandwidth trajectory."""
        return [row.sent_bytes for row in self.rows]

    def upload_ratio_series(self) -> "list[float]":
        """Per-batch fraction of images actually uploaded."""
        return [
            row.n_uploaded / row.n_images if row.n_images else 0.0
            for row in self.rows
        ]

    def total_energy_joules(self) -> float:
        """Total joules across all recorded batches."""
        return float(sum(row.energy_joules for row in self.rows))

    # -- exports ---------------------------------------------------------------

    def to_dicts(self) -> "list[dict]":
        """The timeline as plain dicts — the shared data path that the
        observability exporters and notebooks both consume."""
        return [asdict(row) for row in self.rows]

    def to_csv(self, path) -> int:
        """Write one CSV row per batch to *path*; returns row count."""
        columns = [column.name for column in fields(TimelineRow)]
        with pathlib.Path(path).open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns)
            writer.writeheader()
            writer.writerows(self.to_dicts())
        return len(self.rows)
