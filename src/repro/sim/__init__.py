"""End-to-end simulation harness: phones, sessions, experiment drivers."""

from .coveragesim import CoverageExperiment, CoverageResult
from .device import Smartphone
from .lifetime import LifetimeExperiment, LifetimePoint, LifetimeResult
from .metrics import SchemeMetrics, summarize
from .session import UploadSession, build_server, scheme_extractor
from .telemetry import TimelineRecorder, TimelineRow

__all__ = [
    "CoverageExperiment",
    "CoverageResult",
    "LifetimeExperiment",
    "LifetimePoint",
    "LifetimeResult",
    "SchemeMetrics",
    "Smartphone",
    "TimelineRecorder",
    "TimelineRow",
    "UploadSession",
    "build_server",
    "scheme_extractor",
    "summarize",
]
