"""Aggregation helpers over batch reports."""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.base import BatchReport


@dataclass(frozen=True)
class SchemeMetrics:
    """The per-scheme row the comparison figures print."""

    scheme: str
    n_images: int
    n_uploaded: int
    energy_joules: float
    sent_bytes: int
    avg_image_seconds: float
    eliminated_cross_batch: int
    eliminated_in_batch: int


def summarize(reports: "list[BatchReport]") -> SchemeMetrics:
    """Collapse a scheme's reports into one comparison row."""
    if not reports:
        raise ValueError("cannot summarize zero reports")
    n_images = sum(report.n_images for report in reports)
    # Elimination-phase time counts toward the paper's average delay.
    total_seconds = sum(report.pipeline_seconds for report in reports)
    return SchemeMetrics(
        scheme=reports[0].scheme,
        n_images=n_images,
        n_uploaded=sum(report.n_uploaded for report in reports),
        energy_joules=sum(report.total_energy_joules for report in reports),
        sent_bytes=sum(report.sent_bytes for report in reports),
        avg_image_seconds=total_seconds / n_images if n_images else 0.0,
        eliminated_cross_batch=sum(
            len(report.eliminated_cross_batch) for report in reports
        ),
        eliminated_in_batch=sum(len(report.eliminated_in_batch) for report in reports),
    )
