"""The battery-lifetime experiment — Figure 9.

Protocol (Section IV-B3(3)): groups of Paris images are stored on the
phone; one group is uploaded every 20 minutes with ~50% cross-batch
redundancy ("by adjusting the server index") and almost no in-batch
similars; the screen stays bright (the baseline draw); the remaining
energy is recorded every interval until the battery is exhausted.

The driver is scheme-agnostic: hand it a scheme, it reports the
``(minutes, Ebat)`` trace whose shape the paper plots — straight-ish
lines for the non-adaptive schemes, the characteristic flattening curve
for BEES (as Ebat falls, EAAS spends less per group).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baselines.base import SharingScheme
from ..energy import Battery
from ..errors import SimulationError
from ..imaging.image import Image
from ..imaging.synth import SceneGenerator
from .device import Smartphone
from .session import UploadSession, build_server, scheme_extractor

#: The paper uploads one group every 20 minutes.
DEFAULT_INTERVAL_SECONDS = 20 * 60.0


@dataclass(frozen=True)
class LifetimePoint:
    """One sample of the remaining-energy trace."""

    minutes: float
    ebat: float


@dataclass(frozen=True)
class LifetimeResult:
    """The outcome of one scheme's lifetime run."""

    scheme: str
    trace: "list[LifetimePoint]"
    groups_completed: int
    images_uploaded: int

    @property
    def lifetime_minutes(self) -> float:
        """Wall-clock minutes until the battery died."""
        return self.trace[-1].minutes if self.trace else 0.0


@dataclass
class LifetimeExperiment:
    """Drives one scheme until its battery dies."""

    group_size: int = 40
    redundancy_ratio: float = 0.5
    interval_seconds: float = DEFAULT_INTERVAL_SECONDS
    capacity_fraction: float = 1.0
    max_groups: int = 150
    generator: SceneGenerator = field(default_factory=SceneGenerator)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.group_size < 1:
            raise SimulationError(f"group_size must be >= 1, got {self.group_size}")
        if not 0.0 <= self.redundancy_ratio <= 1.0:
            raise SimulationError(
                f"redundancy_ratio must be in [0, 1], got {self.redundancy_ratio}"
            )
        if not 0.0 < self.capacity_fraction <= 1.0:
            raise SimulationError(
                f"capacity_fraction must be in (0, 1], got {self.capacity_fraction}"
            )
        if self.max_groups < 1:
            raise SimulationError(f"max_groups must be >= 1, got {self.max_groups}")

    # -- group construction ----------------------------------------------------

    def _group(self, index: int) -> "tuple[list[Image], list[Image]]":
        """Group *index*'s images and the server-seed partners.

        Fresh scenes per group (the paper stores 150 distinct groups on
        the phone); the first ``redundancy_ratio`` share of each group
        gets a high-similarity partner seeded into the index, which is
        how the paper holds cross-batch redundancy at ~50%.
        """
        base = 4_000_000 + self.seed * 100_000 + index * self.group_size
        images = []
        partners = []
        n_redundant = int(round(self.redundancy_ratio * self.group_size))
        for offset in range(self.group_size):
            scene = base + offset
            image = self.generator.view(
                scene,
                0,
                image_id=f"life{self.seed}-g{index}-i{offset}",
                group_id=f"life-s{scene}",
            )
            images.append(image)
            if offset < n_redundant:
                partners.append(
                    self.generator.view(
                        scene, 2, image_id=f"life-seed-s{scene}", group_id=f"life-s{scene}"
                    )
                )
        return images, partners

    # -- the run -----------------------------------------------------------------

    def run(self, scheme: SharingScheme) -> LifetimeResult:
        """Upload groups every interval until the battery dies."""
        device = Smartphone()
        device.battery = Battery(
            capacity_joules=device.profile.battery_capacity_joules * self.capacity_fraction
        )
        server = build_server(scheme)
        extractor = scheme_extractor(scheme)
        session = UploadSession(scheme=scheme, device=device, server=server)

        trace = [LifetimePoint(minutes=0.0, ebat=device.ebat)]
        groups = 0
        uploaded = 0
        for index in range(self.max_groups):
            images, partners = self._group(index)
            for partner in partners:
                server.seed_image(partner, extractor.extract(partner))
            report = session.run_batch(images)
            uploaded += report.n_uploaded
            alive = device.idle(self.interval_seconds) and not report.halted
            trace.append(
                LifetimePoint(minutes=(index + 1) * self.interval_seconds / 60.0, ebat=device.ebat)
            )
            if not alive:
                break
            groups += 1
        return LifetimeResult(
            scheme=scheme.name,
            trace=trace,
            groups_completed=groups,
            images_uploaded=uploaded,
        )
