"""Session orchestration: running schemes over batches with matched servers.

Each scheme queries an index of its *own* feature kind (SmartEye cannot
query ORB descriptors), so experiments that compare schemes build one
server per scheme, seeded with the same ground-truth redundant images —
exactly how the paper "adds redundant images into the servers" before a
measured run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baselines.base import BatchReport, SharingScheme
from ..core.server import BeesServer
from ..errors import SimulationError
from ..features.orb import OrbExtractor
from ..imaging.image import Image
from ..index import FeatureIndex
from ..obs.runtime import get_obs
from .device import Smartphone
from .telemetry import TimelineRecorder


def scheme_extractor(scheme: SharingScheme):
    """The feature extractor a scheme uses (for seeding its server)."""
    extractor = getattr(scheme, "extractor", None)
    if extractor is not None:
        return extractor
    afe = getattr(scheme, "afe", None)
    if afe is not None:
        return afe.extractor
    return OrbExtractor()


def build_server(
    scheme: SharingScheme, seed_images: "list[Image] | None" = None
) -> BeesServer:
    """A fresh server whose index matches *scheme*'s feature kind.

    ``seed_images`` are pre-loaded (features extracted server-side) to
    establish the experiment's cross-batch redundancy.
    """
    extractor = scheme_extractor(scheme)
    server = BeesServer(index=FeatureIndex(kind=extractor.kind))
    for image in seed_images or []:
        server.seed_image(image, extractor.extract(image))
    return server


@dataclass
class UploadSession:
    """One phone running one scheme against one server."""

    scheme: SharingScheme
    device: Smartphone
    server: BeesServer
    reports: "list[BatchReport]" = field(default_factory=list)
    #: Optional per-batch telemetry sink.
    recorder: "TimelineRecorder | None" = None

    def run_batch(self, images: "list[Image]") -> BatchReport:
        """Process one batch and keep its report."""
        if not images:
            raise SimulationError("cannot run an empty batch")
        ebat_before = self.device.ebat
        with get_obs().span(
            "session.batch",
            batch_index=len(self.reports),
            scheme=self.scheme.name,
            device=self.device.name,
            ebat=ebat_before,
        ) as span:
            report = self.scheme.process_batch(self.device, self.server, images)
            span.set_attribute("ebat_after", self.device.ebat)
            span.set_attribute("bytes_sent", report.sent_bytes)
            span.set_attribute("energy_j", report.total_energy_joules)
        self.reports.append(report)
        if self.recorder is not None:
            self.recorder.record(report, ebat_before, self.device.ebat)
        return report

    def run(self, batches: "list[list[Image]]") -> "list[BatchReport]":
        """Process batches in order, stopping when the battery dies."""
        for batch in batches:
            report = self.run_batch(batch)
            if report.halted or not self.device.alive:
                break
        return self.reports

    # -- aggregates -------------------------------------------------------

    @property
    def total_energy_joules(self) -> float:
        return float(sum(report.total_energy_joules for report in self.reports))

    @property
    def total_bytes(self) -> int:
        return int(sum(report.sent_bytes for report in self.reports))

    @property
    def total_uploaded(self) -> int:
        return int(sum(report.n_uploaded for report in self.reports))
