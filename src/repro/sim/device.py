"""The simulated smartphone.

Bundles the battery, the energy meter, the uplink, and the cost model,
and exposes the two operations every scheme needs: ``spend`` (charge a
CPU cost) and ``upload`` (push bytes through the radio).  Both return
falsy values once the battery dies, which is how long-running
experiments (Figures 9 and 12) terminate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..energy import (
    BASELINE,
    Battery,
    DeviceProfile,
    EnergyCostModel,
    EnergyMeter,
    WorkCost,
)
from ..energy.profiles import DEFAULT_PROFILE
from ..errors import SimulationError
from ..network import FluctuatingChannel, TransferResult, Uplink


@dataclass
class Smartphone:
    """One simulated phone: battery + meter + radio + cost model."""

    profile: DeviceProfile = DEFAULT_PROFILE
    battery: Battery = None  # type: ignore[assignment]
    meter: EnergyMeter = field(default_factory=EnergyMeter)
    uplink: Uplink = None  # type: ignore[assignment]
    cost_model: EnergyCostModel = None  # type: ignore[assignment]
    name: str = "phone-0"

    def __post_init__(self) -> None:
        if self.battery is None:
            self.battery = Battery(capacity_joules=self.profile.battery_capacity_joules)
        if self.uplink is None:
            self.uplink = Uplink(channel=FluctuatingChannel())
        if self.cost_model is None:
            self.cost_model = EnergyCostModel(profile=self.profile)

    # -- state -------------------------------------------------------------

    @property
    def ebat(self) -> float:
        """Remaining-energy fraction — the EAAS policies' input."""
        return self.battery.ebat

    @property
    def alive(self) -> bool:
        """Whether the phone still has charge."""
        return not self.battery.is_empty

    # -- charging operations -------------------------------------------------

    def spend(self, cost: WorkCost, category: str) -> bool:
        """Charge a CPU cost; returns False when the battery dies.

        A partial drain (battery runs out mid-operation) is recorded for
        the drained amount and reported as death.
        """
        drained = self.battery.drain(cost.joules)
        self.meter.record(category, drained)
        return drained >= cost.joules and self.alive

    def upload(self, payload_bytes: int, category: str) -> Optional[TransferResult]:
        """Send bytes upstream, paying radio energy; None once dead."""
        if not self.alive:
            return None
        result = self.uplink.transfer(payload_bytes)
        cost = self.cost_model.transfer_cost(result.seconds)
        drained = self.battery.drain(cost.joules)
        self.meter.record(category, drained)
        if drained < cost.joules:
            return None
        return result

    def idle(self, seconds: float) -> bool:
        """Baseline system draw over a wall-clock interval."""
        if seconds < 0:
            raise SimulationError(f"idle seconds must be >= 0, got {seconds}")
        cost = self.cost_model.baseline_cost(seconds)
        drained = self.battery.drain(cost.joules)
        self.meter.record(BASELINE, drained)
        return self.alive
