"""Concurrent multi-device fleet simulation.

Runs N :class:`~repro.sim.device.Smartphone` devices against one shared
server — optionally backed by the sharded, thread-safe
:class:`~repro.index.ShardedFeatureIndex` — under round-barrier
semantics that make the concurrent run **byte-identical** to a
sequential single-index reference run of the same seed.  See
:mod:`repro.fleet.staging` for the protocol and
:mod:`repro.fleet.report` for the equivalence contract.
"""

from .replay import ReplayReport, format_replay, replay_journal
from .report import DeviceResult, FleetResult, assert_equivalent
from .runner import INDEX_MODES, MODES, FleetRunner
from .staging import StagedServer, StagedUpload
from .workload import FleetWorkload

__all__ = [
    "DeviceResult",
    "FleetResult",
    "FleetRunner",
    "FleetWorkload",
    "INDEX_MODES",
    "MODES",
    "ReplayReport",
    "StagedServer",
    "StagedUpload",
    "assert_equivalent",
    "format_replay",
    "replay_journal",
]
