"""Deterministic multi-device fleet workloads.

Every (device, round, slot) triple maps to exactly one image, generated
on demand from the workload seed — no shared RNG stream, so batches can
be produced in any order (or from any thread) and always come out
identical.  That is the foundation the fleet equivalence contract
stands on: the sequential reference run and the concurrent run consume
literally the same pixels.

The scene layout manufactures both kinds of redundancy the BEES
pipeline eliminates:

* **Cross-device** — the first ``shared_fraction`` of each batch is
  drawn from *fleet-shared* scenes that persist across rounds: every
  device photographs the same scene each round, through its own view.
  Round 0's committed uploads put those scenes in the index, so from
  round 1 on the re-captures are CBRD-redundant — the cross-device,
  cross-round elimination the shared index exists for.
* **In-batch** — every third device-private slot re-shoots the previous
  slot's scene, giving SSMM pairs to collapse.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError
from ..imaging.image import Image
from ..imaging.synth import SceneGenerator

#: Scene-seed spacing between workload seeds; large enough that one
#: workload's shared and private scene ranges never overlap the next's.
_SEED_STRIDE = 1_000_000
#: Offset separating device-private scene seeds from fleet-shared ones.
_PRIVATE_OFFSET = 500_000


def _default_generator() -> SceneGenerator:
    # The reduced frame keeps ORB extraction fast enough to run dozens
    # of fleet batches inside the test suite.
    return SceneGenerator(height=72, width=96)


@dataclass
class FleetWorkload:
    """Image batches for ``n_devices`` devices over ``n_rounds`` rounds."""

    n_devices: int = 4
    n_rounds: int = 3
    batch_size: int = 8
    seed: int = 0
    #: Fraction of each batch drawn from fleet-shared scenes.
    shared_fraction: float = 0.5
    generator: SceneGenerator = field(default_factory=_default_generator)

    def __post_init__(self) -> None:
        if self.n_devices < 1:
            raise SimulationError(f"n_devices must be >= 1, got {self.n_devices}")
        if self.n_rounds < 1:
            raise SimulationError(f"n_rounds must be >= 1, got {self.n_rounds}")
        if self.batch_size < 1:
            raise SimulationError(f"batch_size must be >= 1, got {self.batch_size}")
        if not 0.0 <= self.shared_fraction <= 1.0:
            raise SimulationError(
                f"shared_fraction must be in [0, 1], got {self.shared_fraction}"
            )

    @property
    def n_shared_slots(self) -> int:
        """Slots per batch drawn from fleet-shared scenes."""
        return int(round(self.batch_size * self.shared_fraction))

    def batch_for(self, device: int, round_no: int) -> "list[Image]":
        """The batch *device* captures in *round_no* (pure function)."""
        if not 0 <= device < self.n_devices:
            raise SimulationError(
                f"device must be in [0, {self.n_devices}), got {device}"
            )
        if not 0 <= round_no < self.n_rounds:
            raise SimulationError(
                f"round_no must be in [0, {self.n_rounds}), got {round_no}"
            )
        base = self.seed * _SEED_STRIDE
        images = []
        for slot in range(self.batch_size):
            image_id = f"d{device:02d}-r{round_no:02d}-i{slot:02d}"
            if slot < self.n_shared_slots:
                # Fleet-shared scene, persistent across rounds: every
                # (device, round) contributes a distinct view of it.
                scene = base + slot
                view = round_no * self.n_devices + device
                group = f"shared-s{slot}"
            elif slot % 3 == 2 and slot - 1 >= self.n_shared_slots:
                # Re-shoot the previous private slot: in-batch redundancy.
                scene = self._private_scene(device, round_no, slot - 1)
                view = 1
                group = f"dev{device}-r{round_no}-s{slot - 1}"
            else:
                scene = self._private_scene(device, round_no, slot)
                view = 0
                group = f"dev{device}-r{round_no}-s{slot}"
            images.append(
                self.generator.view(
                    scene, view, image_id=image_id, group_id=group
                )
            )
        return images

    def _private_scene(self, device: int, round_no: int, slot: int) -> int:
        base = self.seed * _SEED_STRIDE + _PRIVATE_OFFSET
        return (
            base
            + (round_no * self.n_devices + device) * self.batch_size
            + slot
        )
