"""Fleet run accounting and the equivalence contract.

A :class:`FleetResult` reduces a run to exactly the facts the
correctness contract covers — per-device kept/eliminated image ids,
bytes, joules — plus a stable fingerprint over them.  Two runs of the
same workload are *equivalent* iff their fingerprints match, and
:func:`assert_equivalent` turns a mismatch into a readable per-device
diff instead of a bare hash inequality.

Wall-clock time, span counts, and shard/contention telemetry are
deliberately **excluded** from the fingerprint: they legitimately vary
between the sequential reference and the concurrent run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import BeesError, SimulationError
from ..obs.journal import first_divergence, read_journal

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..baselines.base import BatchReport


@dataclass(frozen=True)
class DeviceResult:
    """One device's decisions and totals, aggregated over all rounds."""

    device: str
    uploaded_ids: "tuple[str, ...]"
    eliminated_cross_batch: "tuple[str, ...]"
    eliminated_in_batch: "tuple[str, ...]"
    sent_bytes: int
    energy_joules: float
    halted: bool

    @classmethod
    def from_reports(
        cls, device: str, reports: "list[BatchReport]"
    ) -> "DeviceResult":
        """Fold one device's per-round reports, in round order.

        The float energy total is summed in round order so the
        sequential and concurrent paths add the same numbers in the
        same order — float addition is not associative, and the
        equivalence contract is *byte*-level.
        """
        energy = 0.0
        for report in reports:
            energy += report.total_energy_joules
        return cls(
            device=device,
            uploaded_ids=tuple(
                image_id for report in reports for image_id in report.uploaded_ids
            ),
            eliminated_cross_batch=tuple(
                image_id
                for report in reports
                for image_id in report.eliminated_cross_batch
            ),
            eliminated_in_batch=tuple(
                image_id
                for report in reports
                for image_id in report.eliminated_in_batch
            ),
            sent_bytes=int(sum(report.sent_bytes for report in reports)),
            energy_joules=energy,
            halted=any(report.halted for report in reports),
        )

    def decision_record(self) -> dict:
        """The canonical (JSON-stable) form of this device's outcome."""
        return {
            "uploaded": list(self.uploaded_ids),
            "eliminated_cross_batch": list(self.eliminated_cross_batch),
            "eliminated_in_batch": list(self.eliminated_in_batch),
            "sent_bytes": self.sent_bytes,
            "energy_joules": self.energy_joules,
            "halted": self.halted,
        }


@dataclass(frozen=True)
class FleetResult:
    """Outcome of one fleet run."""

    mode: str
    scheme: str
    n_devices: int
    n_shards: int
    n_rounds: int
    seed: int
    devices: "tuple[DeviceResult, ...]"
    wall_seconds: float
    #: Path of the decision journal recorded alongside the run, if any.
    #: Excluded from the fingerprint (it's provenance, not a decision);
    #: :func:`assert_equivalent` reads it to *name* the first divergent
    #: event when two runs disagree.
    journal_path: "str | None" = None

    # -- totals (device-order sums: see DeviceResult.from_reports) ---------

    @property
    def total_bytes(self) -> int:
        return int(sum(result.sent_bytes for result in self.devices))

    @property
    def total_energy_joules(self) -> float:
        total = 0.0
        for result in self.devices:
            total += result.energy_joules
        return total

    @property
    def total_uploaded(self) -> int:
        return sum(len(result.uploaded_ids) for result in self.devices)

    @property
    def total_eliminated(self) -> int:
        return sum(
            len(result.eliminated_cross_batch) + len(result.eliminated_in_batch)
            for result in self.devices
        )

    # -- the contract -------------------------------------------------------

    def decisions(self) -> dict:
        """Per-device decision records, keyed by device name."""
        return {
            result.device: result.decision_record() for result in self.devices
        }

    def fingerprint(self) -> str:
        """SHA-256 over the canonical decision records.

        Covers exactly what the equivalence contract covers; mode,
        shard count, and wall time are excluded on purpose so the
        sequential reference and the concurrent run can match.
        """
        canonical = json.dumps(self.decisions(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def assert_equivalent(reference: FleetResult, candidate: FleetResult) -> None:
    """Raise with a pinpoint diagnosis unless the two runs match exactly.

    When both results carry decision journals, the failure names the
    **first divergent journal event** — device, image, stage, and the
    payload fields that differ — turning the boolean fingerprint check
    into a localized diagnosis.  Without journals it falls back to the
    per-device summary diff (which keys differ, not why).
    """
    if reference.fingerprint() == candidate.fingerprint():
        return
    lines = [
        "fleet runs are not equivalent "
        f"({reference.mode}/{reference.n_shards} shard(s) vs "
        f"{candidate.mode}/{candidate.n_shards} shard(s)):"
    ]
    divergence = _journal_divergence(reference, candidate)
    if divergence is not None:
        lines.append(f"  first divergent journal event: {divergence}")
    left = reference.decisions()
    right = candidate.decisions()
    for device in sorted(set(left) | set(right)):
        a, b = left.get(device), right.get(device)
        if a == b:
            continue
        if a is None or b is None:
            lines.append(f"  {device}: present in only one run")
            continue
        for key in sorted(set(a) | set(b)):
            if a.get(key) != b.get(key):
                lines.append(f"  {device}.{key}: differs")
    raise SimulationError("\n".join(lines))


def _journal_divergence(
    reference: FleetResult, candidate: FleetResult
) -> "str | None":
    """Describe the first divergent journal event, if journals exist."""
    if reference.journal_path is None or candidate.journal_path is None:
        return None
    try:
        divergence = first_divergence(
            read_journal(reference.journal_path),
            read_journal(candidate.journal_path),
        )
    except (BeesError, OSError):
        return None  # a missing/corrupt journal must not mask the diff
    if divergence is None:
        return None
    return divergence.describe()
