"""The fleet runner: N devices draining into one shared server.

Both execution modes drive the *same* round-barrier protocol
(:mod:`repro.fleet.staging`):

``sequential``
    The reference path.  One thread processes the devices in device
    order; writes still stage and commit at the barrier, so a device
    never sees a same-round upload — not even its neighbour's.

``concurrent``
    The same protocol with the per-device work fanned out over a
    :class:`~concurrent.futures.ThreadPoolExecutor`.  Each device's
    computation touches only its own state (battery, channel RNG,
    scheme instance) plus the round-frozen shared index, so the results
    are a pure function of (device state, frozen index) — *identical*
    to the sequential path by construction, which
    :func:`repro.fleet.report.assert_equivalent` enforces and the
    differential tests pin.

Instrumentation: the run opens a ``fleet.run`` span with one
``fleet.round`` child per round and one ``fleet.device`` grandchild per
device job.  In concurrent mode the round thread captures its
:class:`~repro.obs.tracer.TraceContext` and each pool job
:meth:`~repro.obs.tracer.Tracer.attach`\\ es it, so every span the job
opens — ``fleet.device`` and the whole BEES pipeline underneath —
lands in one connected trace tree (``tests/obs/test_propagation.py``
pins this);
``bees_fleet_rounds_total``, ``bees_fleet_queue_depth``, and the
per-shard contention/occupancy series cover the metrics side.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..baselines.base import BatchReport, SharingScheme
from ..core.server import BeesServer
from ..energy import Battery
from ..errors import SimulationError
from ..index import FeatureIndex, ProcessShardedIndex, ShardedFeatureIndex
from ..kernels.cache import get_match_cache
from ..network import DegradedNetConfig, FluctuatingChannel, Uplink
from ..obs import get_obs
from ..obs.journal import get_journal
from ..schemes import make_scheme
from ..sim.device import Smartphone
from ..sim.session import scheme_extractor
from .report import DeviceResult, FleetResult
from .staging import StagedServer
from .workload import FleetWorkload

#: Spacing between per-device channel seeds within one fleet seed.
_CHANNEL_SEED_STRIDE = 1_000

MODES = ("sequential", "concurrent")

#: Where the shared index lives: ``thread`` keeps shards in-process
#: (:class:`~repro.index.sharded.ShardedFeatureIndex`, or the plain
#: :class:`~repro.index.index.FeatureIndex` when ``n_shards == 1``);
#: ``process`` promotes every shard to a worker process
#: (:class:`~repro.index.procpool.ProcessShardedIndex`).  All three
#: answer byte-identically, so the choice never changes a decision.
INDEX_MODES = ("thread", "process")


@dataclass
class FleetRunner:
    """One configured fleet simulation, ready to :meth:`run`."""

    n_devices: int = 4
    n_rounds: int = 3
    batch_size: int = 8
    n_shards: int = 1
    seed: int = 0
    scheme: str = "bees"
    mode: str = "sequential"
    #: Thread-pool width in concurrent mode (default: one per device).
    workers: "int | None" = None
    #: Starting battery fraction (below 1.0 exercises the halted path).
    capacity_fraction: float = 1.0
    #: Degraded-network profile: when set, every device gets a
    #: :class:`~repro.network.LossyChannel` plus a chunked transport
    #: (same per-device seeds as the clean path, so zero-loss degraded
    #: runs are byte- and joule-identical to ``net=None``).
    net: "DegradedNetConfig | None" = None
    workload: "FleetWorkload | None" = None
    #: ``thread`` (default) or ``process`` — see :data:`INDEX_MODES`.
    index_mode: str = "thread"
    #: Segment directory for process mode: workers journal every add
    #: before acknowledging it, making shards crash-recoverable.
    #: ``None`` runs the pool in memory only.
    index_segment_dir: "str | None" = None
    _schemes: "list[SharingScheme]" = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise SimulationError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.index_mode not in INDEX_MODES:
            raise SimulationError(
                f"index_mode must be one of {INDEX_MODES}, got {self.index_mode!r}"
            )
        if self.index_segment_dir is not None and self.index_mode != "process":
            raise SimulationError(
                "index_segment_dir requires index_mode='process'"
            )
        if self.n_shards < 1:
            raise SimulationError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.workers is not None and self.workers < 1:
            raise SimulationError(f"workers must be >= 1, got {self.workers}")
        if not 0.0 < self.capacity_fraction <= 1.0:
            raise SimulationError(
                f"capacity_fraction must be in (0, 1], got {self.capacity_fraction}"
            )
        if self.workload is None:
            self.workload = FleetWorkload(
                n_devices=self.n_devices,
                n_rounds=self.n_rounds,
                batch_size=self.batch_size,
                seed=self.seed,
            )
        # One scheme instance per device: process_batch wires the
        # device's cost model into the scheme's stages, so instances
        # must never be shared across concurrent devices.
        self._schemes = [make_scheme(self.scheme) for _ in range(self.n_devices)]

    # -- construction --------------------------------------------------------

    def _build_devices(self) -> "list[Smartphone]":
        devices = []
        for number in range(self.n_devices):
            channel_seed = self.seed * _CHANNEL_SEED_STRIDE + number
            if self.net is None:
                uplink = Uplink(channel=FluctuatingChannel(seed=channel_seed))
            else:
                uplink = Uplink(
                    channel=self.net.build_channel(seed=channel_seed),
                    transport=self.net.build_transport(),
                )
            device = Smartphone(name=f"dev-{number:02d}", uplink=uplink)
            device.battery = Battery(
                capacity_joules=device.profile.battery_capacity_joules
                * self.capacity_fraction
            )
            devices.append(device)
        return devices

    def _build_server(self) -> BeesServer:
        kind = scheme_extractor(self._schemes[0]).kind
        if self.index_mode == "process":
            return BeesServer(
                index=ProcessShardedIndex(
                    kind=kind,
                    n_shards=self.n_shards,
                    segment_dir=self.index_segment_dir,
                )
            )
        if self.n_shards == 1:
            return BeesServer(index=FeatureIndex(kind=kind))
        return BeesServer(
            index=ShardedFeatureIndex(kind=kind, n_shards=self.n_shards)
        )

    # -- execution -----------------------------------------------------------

    def run(self) -> FleetResult:
        """Run all rounds; returns the per-device decision summary.

        When the global decision journal (:func:`repro.obs.journal.
        get_journal`) is enabled, the run brackets its events with
        ``fleet.run.start`` / ``fleet.run.end`` records — the contract
        ``repro journal replay`` rebuilds the result from — and the
        returned :class:`FleetResult` carries the journal path.
        """
        assert self.workload is not None
        devices = self._build_devices()
        server = self._build_server()
        reports: "list[list[BatchReport]]" = [[] for _ in range(self.n_devices)]
        halted = [False] * self.n_devices
        obs = get_obs()
        journal = get_journal()
        if journal.enabled:
            journal.emit(
                "fleet.run.start",
                mode=self.mode,
                scheme=self.scheme,
                n_devices=self.n_devices,
                n_shards=self.n_shards,
                index_mode=self.index_mode,
                n_rounds=self.n_rounds,
                batch_size=self.batch_size,
                seed=self.seed,
                devices=[device.name for device in devices],
                net=None if self.net is None else self.net.describe(),
            )
        cache_stats_start = get_match_cache().stats()
        t0 = time.perf_counter()
        try:
            with obs.span(
                "fleet.run",
                mode=self.mode,
                scheme=self.scheme,
                n_devices=self.n_devices,
                n_shards=self.n_shards,
                index_mode=self.index_mode,
                n_rounds=self.n_rounds,
                seed=self.seed,
            ) as run_span:
                if self.mode == "concurrent":
                    max_workers = self.workers or self.n_devices
                    with ThreadPoolExecutor(max_workers=max_workers) as pool:
                        for round_no in range(self.n_rounds):
                            self._run_round(
                                round_no, devices, server, reports, halted, pool
                            )
                else:
                    for round_no in range(self.n_rounds):
                        self._run_round(
                            round_no, devices, server, reports, halted, None
                        )
                if obs.enabled:
                    # Repeat CBRD verifications across rounds land in the
                    # kernel match cache; hit-or-miss never changes a
                    # decision, so this is diagnostics only.
                    cache_stats = get_match_cache().stats()
                    run_span.set_attribute(
                        "kernel_cache_hits",
                        cache_stats["hits"] - cache_stats_start["hits"],
                    )
                    run_span.set_attribute(
                        "kernel_cache_misses",
                        cache_stats["misses"] - cache_stats_start["misses"],
                    )
            wall_seconds = time.perf_counter() - t0  # beeslint: disable=raw-timing (FleetResult wall clock, reported not recorded)
        finally:
            # Process-mode shard workers own OS resources (worker
            # processes, shared-memory arenas, segment files); release
            # them even when a round raises.
            if isinstance(server.index, ProcessShardedIndex):
                server.index.close()
        result = FleetResult(
            mode=self.mode,
            scheme=self.scheme,
            n_devices=self.n_devices,
            n_shards=self.n_shards,
            n_rounds=self.n_rounds,
            seed=self.seed,
            devices=tuple(
                DeviceResult.from_reports(devices[number].name, reports[number])
                for number in range(self.n_devices)
            ),
            wall_seconds=wall_seconds,
            journal_path=(
                str(journal.path)
                if journal.enabled and journal.path is not None
                else None
            ),
        )
        if journal.enabled:
            journal.emit(
                "fleet.run.end",
                fingerprint=result.fingerprint(),
                total_bytes=result.total_bytes,
                total_energy_joules=result.total_energy_joules,
                total_uploaded=result.total_uploaded,
                total_eliminated=result.total_eliminated,
            )
            journal.flush()
        return result

    def _run_round(
        self,
        round_no: int,
        devices: "list[Smartphone]",
        server: BeesServer,
        reports: "list[list[BatchReport]]",
        halted: "list[bool]",
        pool: "ThreadPoolExecutor | None",
    ) -> None:
        assert self.workload is not None
        obs = get_obs()
        journal = get_journal()
        round_cache_start = (
            get_match_cache().stats() if journal.enabled else None
        )
        active = [
            number
            for number in range(self.n_devices)
            if devices[number].alive and not halted[number]
        ]
        with obs.span(
            "fleet.round", round=round_no, n_active=len(active)
        ) as round_span:
            if not active:
                return
            # Batches are materialised on the coordinator thread so the
            # parallel section holds only per-device pipeline work.
            batches = {
                number: self.workload.batch_for(number, round_no)
                for number in active
            }
            proxies = {number: StagedServer(server) for number in active}
            if obs.enabled:
                obs.fleet_queue_depth.set(len(active))
            # Explicit cross-thread propagation: capture the round span
            # here (the coordinator owns it) and attach it inside each
            # job, so every span a device opens — fleet.device and the
            # whole pipeline beneath it — parents into one trace tree
            # even when the job runs on a pool thread.
            round_context = obs.capture_context()

            def job(number: int) -> BatchReport:
                # The journal binding wraps the whole pipeline, so every
                # decision event the stages emit (cbrd.verdict,
                # aiu.prepare, policy.applied, ssmm.select) carries this
                # device — thread-local, so concurrent jobs never leak
                # into each other's streams.
                with obs.attach(round_context), journal.bind(
                    devices[number].name
                ):
                    with obs.span(
                        "fleet.device",
                        device=devices[number].name,
                        round=round_no,
                    ) as span:
                        report = self._schemes[number].process_batch(
                            devices[number], proxies[number], batches[number]
                        )
                        span.set_attribute("n_uploaded", report.n_uploaded)
                        span.set_attribute("halted", report.halted)
                    if journal.enabled:
                        journal.emit(
                            "fleet.batch",
                            round=round_no,
                            n_images=report.n_images,
                            uploaded=list(report.uploaded_ids),
                            eliminated_cross=list(
                                report.eliminated_cross_batch
                            ),
                            eliminated_in=list(report.eliminated_in_batch),
                            sent_bytes=report.sent_bytes,
                            energy=dict(report.energy_by_category),
                            halted=report.halted,
                        )
                if obs.enabled:
                    obs.fleet_queue_depth.dec()
                return report

            if pool is None:
                round_reports = {number: job(number) for number in active}
            else:
                futures = {number: pool.submit(job, number) for number in active}
                round_reports = {
                    number: futures[number].result() for number in active
                }

            # The barrier: stage buffers flush in device order — the
            # one serialization point, identical in both modes.
            committed = 0
            for number in active:
                report = round_reports[number]
                reports[number].append(report)
                if report.halted:
                    halted[number] = True
                committed += proxies[number].commit()
            round_span.set_attribute("n_committed", committed)
            if obs.enabled:
                obs.fleet_queue_depth.set(0)
                obs.fleet_rounds.inc()
            if journal.enabled and round_cache_start is not None:
                journal.emit(
                    "fleet.round",
                    round=round_no,
                    n_active=len(active),
                    n_committed=committed,
                )
                # Aggregated per-round cache deltas: the shared LRU
                # races across device threads (hit-or-miss never
                # changes a decision), so this event is diagnostics
                # only and diffs ignore it (DIFF_IGNORED_EVENTS).
                cache_stats = get_match_cache().stats()
                journal.emit(
                    "kernel.cache",
                    round=round_no,
                    hits=cache_stats["hits"] - round_cache_start["hits"],
                    misses=(
                        cache_stats["misses"] - round_cache_start["misses"]
                    ),
                )
