"""Round staging: per-device write buffering against the shared server.

The fleet runs with **round-barrier** semantics: within one round every
device's CBRD queries see the shared index *frozen* at the previous
round's end, and every device's uploads are buffered and committed at
the barrier, in device order.  This matches the paper's server model —
"the servers add the features of the uploaded images into the index ...
once receiving the images" — under the reading that uploads in flight
during the same capture interval are not yet visible to each other, and
it is what makes the concurrent fleet *byte-identical* to the
sequential reference: no device ever observes another device's
same-round uploads, in either mode.

:class:`StagedServer` is the per-device, per-round view that implements
this.  Reads pass through to the shared :class:`~repro.core.server.
BeesServer` (lock-free — the index is frozen for the round); writes
land in a local staging list the runner flushes with :meth:`commit`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.server import BeesServer
from ..errors import SimulationError
from ..features.base import FeatureSet
from ..imaging.image import Image
from ..index import QueryResult


@dataclass(frozen=True)
class StagedUpload:
    """One buffered ``receive_image`` (or bare store ``add``) call."""

    image: Image
    #: ``None`` for store-only writes (Direct Upload without server-side
    #: indexing); otherwise indexed at commit exactly like the real
    #: server would have.
    features: "FeatureSet | None"
    received_bytes: "int | None"


class _StagingStore:
    """Duck-types the ``server.store.add`` surface schemes touch."""

    def __init__(self, owner: "StagedServer") -> None:
        self._owner = owner

    def add(self, image: Image, received_bytes: "int | None" = None) -> None:
        self._owner.staged.append(
            StagedUpload(image=image, features=None, received_bytes=received_bytes)
        )


class StagedServer:
    """One device's round-frozen view of the shared server.

    Exposes the full surface schemes use (``query_features`` /
    ``query_features_batch`` / ``query_top`` / ``receive_image`` /
    ``query_response_bytes`` / ``store.add``); queries answer from the
    shared server, writes stage locally until :meth:`commit`.
    """

    def __init__(self, base: BeesServer) -> None:
        self.base = base
        self.staged: "list[StagedUpload]" = []
        self.store = _StagingStore(self)

    @property
    def query_response_bytes(self) -> int:
        return self.base.query_response_bytes

    @property
    def index(self):
        """The shared (round-frozen) index — read-only by contract."""
        return self.base.index

    def query_features(self, features: FeatureSet) -> QueryResult:
        return self.base.query_features(features)

    def query_features_batch(
        self, feature_sets: "list[FeatureSet]"
    ) -> "list[QueryResult]":
        return self.base.query_features_batch(feature_sets)

    def query_top(self, features: FeatureSet, k: int) -> "list[tuple[str, float]]":
        return self.base.query_top(features, k)

    def receive_image(
        self,
        image: Image,
        features: FeatureSet,
        received_bytes: Optional[int] = None,
    ) -> None:
        """Buffer an upload for the round barrier."""
        if features.image_id != image.image_id:
            raise SimulationError(
                f"feature id {features.image_id!r} does not match image "
                f"{image.image_id!r}"
            )
        self.staged.append(
            StagedUpload(
                image=image, features=features, received_bytes=received_bytes
            )
        )

    def commit(self) -> int:
        """Flush staged uploads into the shared server, in stage order.

        Called by the runner at the round barrier, devices in device
        order — the single serialization point of a fleet round.
        Returns the number of uploads committed.
        """
        count = len(self.staged)
        for upload in self.staged:
            if upload.features is None:
                self.base.store.add(
                    upload.image, received_bytes=upload.received_bytes
                )
            else:
                self.base.receive_image(
                    upload.image,
                    upload.features,
                    received_bytes=upload.received_bytes,
                )
        self.staged.clear()
        return count

    def __len__(self) -> int:
        return len(self.base) + len(self.staged)
