"""Re-derive a :class:`FleetResult` from a decision journal alone.

``repro journal replay`` is the journal's integrity proof: if the
journal really captured every decision, then folding its ``fleet.batch``
events back together must reproduce the run's bytes, joules, and
eliminated-image lists **byte-identically** — the same fingerprint the
live run recorded in its ``fleet.run.end`` event.

Exactness notes (why this works at the byte level):

* JSON round-trips Python floats exactly (``repr``-based encoding), so
  summing the journalled per-category joules in the order they were
  written reproduces :attr:`repro.baselines.base.BatchReport.
  total_energy_joules` bit-for-bit.
* Per-device energy folds in round order, mirroring
  :meth:`repro.fleet.report.DeviceResult.from_reports` — float addition
  is not associative, and the fingerprint is byte-level.
* Device order comes from the ``fleet.run.start`` event's device list,
  matching the runner's construction order.

Beyond the fingerprint, replay cross-checks the fine-grained decision
events against the per-batch summaries: every image a ``cbrd.verdict``
called redundant must appear in that batch's ``eliminated_cross`` list,
and every image an ``ssmm.select`` rejected must appear in
``eliminated_in`` — catching a journal whose summaries and events
disagree even when the summaries alone are self-consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..errors import SimulationError
from ..obs.journal import JournalFile, JournalRecord, read_journal
from .report import DeviceResult, FleetResult


@dataclass(frozen=True)
class ReplayReport:
    """The outcome of replaying one journal."""

    result: FleetResult
    #: Fingerprint of the replayed result.
    fingerprint: str
    #: Fingerprint recorded by the live run, if the journal has one.
    recorded_fingerprint: "str | None"
    #: Cross-check failures (empty on a healthy journal).
    issues: "tuple[str, ...]"

    @property
    def ok(self) -> bool:
        return (
            not self.issues
            and self.recorded_fingerprint is not None
            and self.fingerprint == self.recorded_fingerprint
        )


def replay_journal(source: "str | Path | JournalFile") -> ReplayReport:
    """Rebuild the :class:`FleetResult` of a journalled fleet run.

    Raises :class:`~repro.errors.SimulationError` when the journal does
    not describe exactly one fleet run; torn tails and cross-check
    mismatches are reported via :attr:`ReplayReport.issues` instead.
    """
    journal = (
        source if isinstance(source, JournalFile) else read_journal(source)
    )
    starts = journal.events("fleet.run.start")
    if len(starts) != 1:
        raise SimulationError(
            f"journal {journal.path} contains {len(starts)} fleet runs; "
            "replay needs exactly one (one file per run)"
        )
    config = starts[0].data
    device_names = [str(name) for name in _expect_list(config, "devices")]
    issues: "list[str]" = []
    if journal.torn_tail is not None:
        issues.append("journal has a torn final record (skipped by reader)")

    streams = journal.by_device()
    devices = []
    for name in device_names:
        stream = streams.get(name, [])
        devices.append(_fold_device(name, stream, issues))

    result = FleetResult(
        mode=str(config.get("mode", "")),
        scheme=str(config.get("scheme", "")),
        n_devices=_as_int(config.get("n_devices", len(device_names))),
        n_shards=_as_int(config.get("n_shards", 1)),
        n_rounds=_as_int(config.get("n_rounds", 0)),
        seed=_as_int(config.get("seed", 0)),
        devices=tuple(devices),
        wall_seconds=0.0,
        journal_path=journal.path,
    )
    fingerprint = result.fingerprint()
    ends = journal.events("fleet.run.end")
    recorded: "str | None" = None
    if ends:
        recorded = str(ends[-1].data.get("fingerprint", ""))
        if recorded != fingerprint:
            issues.append(
                f"replayed fingerprint {fingerprint[:16]}… does not match "
                f"recorded {recorded[:16]}…"
            )
    else:
        issues.append("journal has no fleet.run.end event (run incomplete?)")
    return ReplayReport(
        result=result,
        fingerprint=fingerprint,
        recorded_fingerprint=recorded,
        issues=tuple(issues),
    )


def _fold_device(
    name: str,
    stream: "list[JournalRecord]",
    issues: "list[str]",
) -> DeviceResult:
    uploaded: "list[str]" = []
    eliminated_cross: "list[str]" = []
    eliminated_in: "list[str]" = []
    sent_bytes = 0
    energy = 0.0
    halted = False
    # Fine-grained decision events, for the summary cross-check.
    cbrd_redundant: "list[str]" = []
    ssmm_rejected: "list[str]" = []
    for record in stream:
        if record.event == "fleet.batch":
            data = record.data
            uploaded.extend(_string_list(data.get("uploaded")))
            eliminated_cross.extend(_string_list(data.get("eliminated_cross")))
            eliminated_in.extend(_string_list(data.get("eliminated_in")))
            sent_bytes += _as_int(data.get("sent_bytes", 0))
            batch_energy = data.get("energy")
            if isinstance(batch_energy, dict):
                # Mirror BatchReport.total_energy_joules: sum the
                # categories in recorded (insertion) order, then fold
                # batches in round order — byte-exact float addition.
                batch_total = 0.0
                for joules in batch_energy.values():
                    batch_total += _as_float(joules)
                energy += float(batch_total)
            halted = halted or bool(data.get("halted"))
        elif record.event == "cbrd.verdict":
            if bool(record.data.get("redundant")) and record.image:
                cbrd_redundant.append(record.image)
        elif record.event == "ssmm.select":
            ssmm_rejected.extend(_string_list(record.data.get("rejected")))
    if cbrd_redundant and cbrd_redundant != eliminated_cross:
        issues.append(
            f"{name}: cbrd.verdict events name {len(cbrd_redundant)} "
            f"redundant image(s) but batch summaries eliminated "
            f"{len(eliminated_cross)} (or in a different order)"
        )
    if ssmm_rejected and ssmm_rejected != eliminated_in:
        issues.append(
            f"{name}: ssmm.select events reject {len(ssmm_rejected)} "
            f"image(s) but batch summaries eliminated "
            f"{len(eliminated_in)} in-batch (or in a different order)"
        )
    return DeviceResult(
        device=name,
        uploaded_ids=tuple(uploaded),
        eliminated_cross_batch=tuple(eliminated_cross),
        eliminated_in_batch=tuple(eliminated_in),
        sent_bytes=sent_bytes,
        energy_joules=energy,
        halted=halted,
    )


def _expect_list(data: "dict[str, object]", key: str) -> "list[object]":
    value = data.get(key)
    if not isinstance(value, list):
        raise SimulationError(
            f"fleet.run.start event is missing the {key!r} list"
        )
    return value


def _string_list(value: object) -> "list[str]":
    if not isinstance(value, list):
        return []
    return [str(item) for item in value]


def _as_int(value: object) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise SimulationError(f"expected an integer journal field, got {value!r}")
    return value


def _as_float(value: object) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SimulationError(f"expected a numeric journal field, got {value!r}")
    return float(value)


def format_replay(report: ReplayReport) -> str:
    """Human-readable ``repro journal replay`` output."""
    result = report.result
    lines = [
        f"replayed {result.n_devices} device(s) × {result.n_rounds} "
        f"round(s) [{result.mode}/{result.n_shards} shard(s), "
        f"seed {result.seed}]:",
        f"  bytes:      {result.total_bytes}",
        f"  joules:     {result.total_energy_joules:.6f}",
        f"  uploaded:   {result.total_uploaded}",
        f"  eliminated: {result.total_eliminated}",
        f"  fingerprint {report.fingerprint}",
    ]
    if report.recorded_fingerprint is not None:
        verdict = (
            "MATCHES" if report.fingerprint == report.recorded_fingerprint
            else "DOES NOT MATCH"
        )
        lines.append(f"  recorded    {report.recorded_fingerprint} [{verdict}]")
    for issue in report.issues:
        lines.append(f"  issue: {issue}")
    lines.append("replay OK" if report.ok else "replay FAILED")
    return "\n".join(lines)
