"""Reading and writing images on disk — PPM/PGM, dependency-free.

The library is numpy-only, so it speaks the Netpbm formats natively:
binary PPM (P6, colour) and PGM (P5, grayscale).  That is enough to run
the whole BEES pipeline on a directory of real photographs (convert
once with any tool: ``convert photo.jpg photo.ppm``), and to dump
synthetic scenes for eyeballing.
"""

from __future__ import annotations

import pathlib

import numpy as np

from ..errors import CodecError
from .image import Image

_MAGIC_PPM = b"P6"
_MAGIC_PGM = b"P5"


def _read_tokens(data: bytes, count: int, offset: int) -> "tuple[list[int], int]":
    """Read *count* whitespace-separated ASCII integers (skipping
    ``#`` comments) starting at *offset*; returns (values, new_offset)."""
    values: list[int] = []
    i = offset
    while len(values) < count:
        if i >= len(data):
            raise CodecError("truncated Netpbm header")
        byte = data[i : i + 1]
        if byte == b"#":
            while i < len(data) and data[i : i + 1] != b"\n":
                i += 1
        elif byte.isspace():
            i += 1
        else:
            start = i
            while i < len(data) and not data[i : i + 1].isspace():
                i += 1
            token = data[start:i]
            if not token.isdigit():
                raise CodecError(f"bad Netpbm header token {token!r}")
            values.append(int(token))
    return values, i + 1  # consume the single whitespace after the header


def read_netpbm(path: "str | pathlib.Path") -> Image:
    """Load a binary PPM (P6) or PGM (P5) file as an :class:`Image`.

    The image id defaults to the file stem.
    """
    path = pathlib.Path(path)
    data = path.read_bytes()
    magic = data[:2]
    if magic not in (_MAGIC_PPM, _MAGIC_PGM):
        raise CodecError(f"unsupported Netpbm magic {magic!r} in {path.name}")
    (width, height, maxval), offset = _read_tokens(data, 3, 2)
    if width < 1 or height < 1:
        raise CodecError(f"bad dimensions {width}x{height} in {path.name}")
    if not 0 < maxval < 256:
        raise CodecError(f"only 8-bit Netpbm supported, maxval={maxval}")
    channels = 3 if magic == _MAGIC_PPM else 1
    expected = width * height * channels
    pixels = np.frombuffer(data, dtype=np.uint8, offset=offset)
    if len(pixels) < expected:
        raise CodecError(
            f"{path.name}: expected {expected} pixel bytes, got {len(pixels)}"
        )
    pixels = pixels[:expected].reshape(height, width, channels)
    if channels == 1:
        pixels = np.repeat(pixels, 3, axis=2)
    return Image(bitmap=pixels.copy(), image_id=path.stem)


def write_ppm(image: Image, path: "str | pathlib.Path") -> None:
    """Write *image* as a binary PPM (P6) file."""
    path = pathlib.Path(path)
    header = f"P6\n{image.width} {image.height}\n255\n".encode("ascii")
    path.write_bytes(header + image.bitmap.tobytes())


def write_pgm(image: Image, path: "str | pathlib.Path") -> None:
    """Write *image*'s luma plane as a binary PGM (P5) file."""
    path = pathlib.Path(path)
    plane = np.clip(np.rint(image.gray()), 0, 255).astype(np.uint8)
    header = f"P5\n{image.width} {image.height}\n255\n".encode("ascii")
    path.write_bytes(header + plane.tobytes())
