"""Bitmap compression — the AFE knob of Section III-A.

The paper defines the *bitmap compression proportion* as "the ratio of the
decrement in the length or width of the compressed image bitmap to those
of the original bitmap".  A proportion ``C`` therefore shrinks each linear
dimension by a factor ``1 - C``: a 1000x500 bitmap compressed with
``C = 0.4`` becomes 600x300, and the pixel count — which is what the CPU
cost of feature extraction is proportional to — drops to ``(1 - C)^2``
of the original.
"""

from __future__ import annotations

import numpy as np

from ..errors import ImageError
from .image import Image
from .transforms import resize_area

#: Upper bound on the proportion so at least a sliver of image survives.
MAX_PROPORTION = 0.95


def validate_proportion(proportion: float) -> float:
    """Validate a compression proportion and return it as ``float``."""
    proportion = float(proportion)
    if not 0.0 <= proportion <= MAX_PROPORTION:
        raise ImageError(
            f"compression proportion must be in [0, {MAX_PROPORTION}], got {proportion}"
        )
    return proportion


def compressed_dimensions(height: int, width: int, proportion: float) -> tuple[int, int]:
    """Return ``(height, width)`` after compressing with *proportion*."""
    proportion = validate_proportion(proportion)
    scale = 1.0 - proportion
    return (max(1, int(round(height * scale))), max(1, int(round(width * scale))))


def pixel_fraction(proportion: float) -> float:
    """Fraction of the original pixel count that survives compression."""
    scale = 1.0 - validate_proportion(proportion)
    return scale * scale


def compress_bitmap(bitmap: np.ndarray, proportion: float) -> np.ndarray:
    """Downscale a raw bitmap array by the given compression proportion."""
    bitmap = np.asarray(bitmap)
    h, w = bitmap.shape[:2]
    nh, nw = compressed_dimensions(h, w, proportion)
    if (nh, nw) == (h, w):
        return bitmap
    return resize_area(bitmap, nh, nw)


def compress_image(image: Image, proportion: float) -> Image:
    """Return *image* with its in-memory bitmap compressed.

    This is a pre-processing step for feature extraction only: it does
    not change the image's nominal file size, because the full-quality
    image is what would eventually be uploaded (AIU compresses the upload
    separately).
    """
    return image.with_bitmap(compress_bitmap(image.bitmap, proportion))
