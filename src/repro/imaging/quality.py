"""Pixel-fidelity metrics complementing SSIM.

The paper quantifies compression damage with SSIM (Figure 5a); MSE and
PSNR are the standard companions — PSNR in particular is what codec
literature reports, and having both lets the quality benchmarks show
the familiar "SSIM falls faster than PSNR once structure goes" effect.
"""

from __future__ import annotations

import numpy as np

from ..errors import ImageError
from .image import Image

#: Peak signal value of 8-bit images.
PEAK = 255.0


def mse(image_a: Image, image_b: Image) -> float:
    """Mean squared error between two equal-size images (luma plane)."""
    a = image_a.gray()
    b = image_b.gray()
    if a.shape != b.shape:
        raise ImageError(f"shape mismatch: {a.shape} vs {b.shape}")
    diff = a - b
    return float(np.mean(diff * diff))


def psnr(image_a: Image, image_b: Image) -> float:
    """Peak signal-to-noise ratio in dB; ``inf`` for identical images."""
    error = mse(image_a, image_b)
    if error == 0.0:
        return float("inf")
    return float(10.0 * np.log10(PEAK * PEAK / error))
