"""A JPEG-style lossy codec — the quality-compression knob of AIU.

The paper uses libjpeg; we implement the same pipeline shape in numpy:

* 8x8 block DCT-II on the luma plane (chroma is carried at reduced cost
  in the size model, mirroring 4:2:0 subsampling),
* quantisation with the standard JPEG luminance table scaled by a quality
  factor (the libjpeg ``quality`` → table-scale mapping),
* an entropy-size model that counts the bits needed for the quantised
  coefficients (magnitude bits + run-length overhead), which yields the
  characteristic convex size-vs-quality curve of Figure 5(a).

The paper's *quality compression proportion* maps to libjpeg quality as
``quality = 100 * (1 - proportion)`` — proportion 0 is (near) lossless,
and beyond the suggested fixed proportion of 0.85 the SSIM of the decoded
image drops sharply, which is exactly why BEES pins it at 0.85.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CodecError
from .bitmap import validate_proportion
from .image import Image

#: Standard JPEG luminance quantisation table (Annex K of the spec).
BASE_QUANT_TABLE = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)

#: Fixed per-file overhead of the size model (headers, Huffman tables).
HEADER_BYTES = 600

#: Estimated bits of run-length/Huffman overhead per non-zero coefficient.
RUN_LENGTH_BITS = 4.0

#: Chroma planes add roughly half the luma bits under 4:2:0 subsampling.
CHROMA_BIT_FACTOR = 1.5

#: The compression proportion the *nominal* 700 KB photo already sits
#: at: "normal-quality" smartphone JPEGs are encoded near libjpeg
#: quality 80, i.e. proportion 0.2.  Size factors are normalised to this
#: baseline — re-encoding at a proportion below it saves nothing.
NOMINAL_QUALITY_PROPORTION = 0.2


def _dct_matrix() -> np.ndarray:
    """The 8x8 orthonormal DCT-II matrix."""
    n = 8
    k = np.arange(n)[:, None]
    i = np.arange(n)[None, :]
    mat = np.cos((2 * i + 1) * k * np.pi / (2 * n))
    mat *= np.sqrt(2.0 / n)
    mat[0, :] = np.sqrt(1.0 / n)
    return mat


_DCT = _dct_matrix()


def proportion_to_quality(proportion: float) -> int:
    """Map the paper's quality-compression proportion to libjpeg quality."""
    proportion = validate_proportion(proportion)
    return max(1, int(round(100.0 * (1.0 - proportion))))


def quant_table_for_quality(quality: int) -> np.ndarray:
    """Scale the base table for a libjpeg-style quality in [1, 100]."""
    if not 1 <= quality <= 100:
        raise CodecError(f"quality must be in [1, 100], got {quality}")
    if quality < 50:
        scale = 5000.0 / quality
    else:
        scale = 200.0 - 2.0 * quality
    table = np.floor((BASE_QUANT_TABLE * scale + 50.0) / 100.0)
    return np.clip(table, 1.0, 255.0)


def _to_blocks(plane: np.ndarray) -> tuple[np.ndarray, tuple[int, int]]:
    """Pad a plane to multiples of 8 and reshape into (n, 8, 8) blocks."""
    h, w = plane.shape
    ph = (-h) % 8
    pw = (-w) % 8
    padded = np.pad(plane, ((0, ph), (0, pw)), mode="edge")
    hh, ww = padded.shape
    blocks = padded.reshape(hh // 8, 8, ww // 8, 8).transpose(0, 2, 1, 3)
    return blocks.reshape(-1, 8, 8), (hh, ww)


def _from_blocks(blocks: np.ndarray, padded_shape: tuple[int, int], shape: tuple[int, int]) -> np.ndarray:
    hh, ww = padded_shape
    grid = blocks.reshape(hh // 8, ww // 8, 8, 8).transpose(0, 2, 1, 3)
    return grid.reshape(hh, ww)[: shape[0], : shape[1]]


@dataclass(frozen=True)
class JpegEncoded:
    """The result of encoding: quantised coefficients + size estimate."""

    coefficients: np.ndarray  # (n_blocks, 8, 8) int32
    quant_table: np.ndarray
    shape: tuple[int, int]
    padded_shape: tuple[int, int]
    quality: int
    estimated_bytes: int


def _estimate_bits(quantised: np.ndarray) -> float:
    """Bits to entropy-code the quantised coefficients.

    Each non-zero coefficient costs its magnitude-category bits plus a
    run-length prefix; every block pays a small DC-difference cost.  This
    is the standard back-of-envelope JPEG size model and reproduces the
    convex quality/size curve without a full Huffman coder.
    """
    magnitudes = np.abs(quantised).astype(np.float64)
    nonzero = magnitudes > 0
    magnitude_bits = np.zeros_like(magnitudes)
    magnitude_bits[nonzero] = np.floor(np.log2(magnitudes[nonzero])) + 1.0
    ac_bits = float((magnitude_bits[nonzero] + RUN_LENGTH_BITS).sum())
    dc_bits = 6.0 * quantised.shape[0]
    return (ac_bits + dc_bits) * CHROMA_BIT_FACTOR


def encode(image: Image, proportion: float) -> JpegEncoded:
    """Quality-compress *image* with the given compression proportion."""
    quality = proportion_to_quality(proportion)
    table = quant_table_for_quality(quality)
    plane = image.gray() - 128.0
    blocks, padded_shape = _to_blocks(plane)
    coeffs = np.einsum("ij,njk,lk->nil", _DCT, blocks, _DCT)
    quantised = np.rint(coeffs / table).astype(np.int32)
    size = HEADER_BYTES + int(np.ceil(_estimate_bits(quantised) / 8.0))
    return JpegEncoded(
        coefficients=quantised,
        quant_table=table,
        shape=plane.shape,
        padded_shape=padded_shape,
        quality=quality,
        estimated_bytes=size,
    )


def decode(encoded: JpegEncoded) -> np.ndarray:
    """Reconstruct a uint8 RGB bitmap from encoded coefficients."""
    coeffs = encoded.coefficients.astype(np.float64) * encoded.quant_table
    blocks = np.einsum("ji,njk,kl->nil", _DCT, coeffs, _DCT)
    plane = _from_blocks(blocks, encoded.padded_shape, encoded.shape) + 128.0
    plane = np.clip(np.rint(plane), 0, 255).astype(np.uint8)
    return np.repeat(plane[:, :, None], 3, axis=2)


def size_factor(image: Image, proportion: float) -> float:
    """File-size multiplier of quality compression.

    Relative to the nominal baseline encoding (the ~quality-80 JPEG the
    700 KB file size corresponds to), so re-encoding at or below the
    baseline proportion yields a factor of 1.
    """
    baseline = encode(image, NOMINAL_QUALITY_PROPORTION).estimated_bytes
    compressed = encode(image, proportion).estimated_bytes
    return min(1.0, compressed / max(1, baseline))


def compress_quality(image: Image, proportion: float) -> Image:
    """Round-trip *image* through the codec; size shrinks, quality drops.

    The returned image keeps the original resolution (quality compression
    "does not change the resolution of an image") but carries the decoded
    lossy bitmap and a reduced nominal file size.
    """
    encoded = encode(image, proportion)
    baseline = encode(image, NOMINAL_QUALITY_PROPORTION).estimated_bytes
    factor = min(1.0, encoded.estimated_bytes / max(1, baseline))
    return image.with_bitmap(decode(encoded), nominal_bytes=image.scaled_nominal_bytes(factor))
