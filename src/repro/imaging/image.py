"""The core :class:`Image` type used throughout the BEES reproduction.

An image is an 8-bit RGB bitmap (``numpy`` array of shape ``(h, w, 3)``)
plus the metadata the paper's experiments rely on:

* ``image_id`` — a stable identifier (used by the server index),
* ``group_id`` — ground-truth scene/group label (Kentucky-style groups),
* ``geotag``  — an optional ``(longitude, latitude)`` pair (Paris-style),
* ``nominal_bytes`` — the modelled on-disk file size.  The paper resizes
  every image to about 700 KB ("the average size of normal-quality images
  taken by smartphones"); our synthetic bitmaps are much smaller than a
  real photo, so the *transfer* size used by the network and energy models
  is this nominal figure scaled by whatever compression the pipeline
  applies, not ``bitmap.nbytes``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

import numpy as np

from ..errors import ImageError

#: The file size the paper normalises every test image to (Section IV-A).
DEFAULT_NOMINAL_BYTES = 700 * 1024

#: The photographic resolution the nominal file size corresponds to —
#: a 2 MP JPEG at normal quality is ~700 KB.  CPU work (feature
#: extraction, encoding) is charged against this resolution, not the
#: small synthetic bitmap.
DEFAULT_NOMINAL_RESOLUTION = (1632, 1224)


def _validate_bitmap(bitmap: np.ndarray) -> np.ndarray:
    """Check that *bitmap* is a well-formed uint8 RGB array.

    Grayscale 2-D arrays are accepted and broadcast to three channels so
    that every downstream consumer can assume an ``(h, w, 3)`` layout.
    """
    arr = np.asarray(bitmap)
    if arr.ndim == 2:
        arr = np.repeat(arr[:, :, None], 3, axis=2)
    if arr.ndim != 3 or arr.shape[2] != 3:
        raise ImageError(f"expected (h, w, 3) bitmap, got shape {arr.shape}")
    if arr.shape[0] < 1 or arr.shape[1] < 1:
        raise ImageError(f"empty bitmap with shape {arr.shape}")
    if arr.dtype != np.uint8:
        if np.issubdtype(arr.dtype, np.floating):
            arr = np.clip(np.rint(arr), 0, 255).astype(np.uint8)
        elif np.issubdtype(arr.dtype, np.integer):
            arr = np.clip(arr, 0, 255).astype(np.uint8)
        else:
            raise ImageError(f"unsupported bitmap dtype {arr.dtype}")
    return arr


@dataclass(frozen=True)
class Image:
    """An immutable image record.

    The bitmap itself is stored as a read-only numpy array; derived images
    (compressed, resized...) are produced by returning new ``Image``
    instances via :meth:`with_bitmap`.
    """

    bitmap: np.ndarray
    image_id: str = ""
    group_id: str = ""
    geotag: Optional[Tuple[float, float]] = None
    nominal_bytes: int = DEFAULT_NOMINAL_BYTES
    nominal_resolution: Tuple[int, int] = DEFAULT_NOMINAL_RESOLUTION
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        arr = _validate_bitmap(self.bitmap)
        arr = np.ascontiguousarray(arr)
        arr.setflags(write=False)
        object.__setattr__(self, "bitmap", arr)
        if self.nominal_bytes <= 0:
            raise ImageError(f"nominal_bytes must be positive, got {self.nominal_bytes}")
        nw, nh = self.nominal_resolution
        if nw < 1 or nh < 1:
            raise ImageError(
                f"nominal_resolution must be positive, got {self.nominal_resolution}"
            )

    # -- geometry ---------------------------------------------------------

    @property
    def height(self) -> int:
        """Bitmap height in pixels."""
        return int(self.bitmap.shape[0])

    @property
    def width(self) -> int:
        """Bitmap width in pixels."""
        return int(self.bitmap.shape[1])

    @property
    def resolution(self) -> Tuple[int, int]:
        """``(width, height)`` in pixels, the photographic convention."""
        return (self.width, self.height)

    @property
    def pixels(self) -> int:
        """Total pixel count (``width * height``)."""
        return self.width * self.height

    @property
    def nominal_pixels(self) -> int:
        """Pixel count at the modelled photographic resolution."""
        return int(self.nominal_resolution[0]) * int(self.nominal_resolution[1])

    # -- conversions ------------------------------------------------------

    def gray(self) -> np.ndarray:
        """Return the luma plane as ``float64`` in ``[0, 255]``.

        Uses the ITU-R BT.601 weights, the same convention as OpenCV's
        ``cvtColor(..., COLOR_RGB2GRAY)`` which the paper's prototype uses.
        """
        b = self.bitmap.astype(np.float64)
        return 0.299 * b[:, :, 0] + 0.587 * b[:, :, 1] + 0.114 * b[:, :, 2]

    def with_bitmap(self, bitmap: np.ndarray, **overrides) -> "Image":
        """Return a copy of this image carrying a new bitmap.

        Metadata (id, group, geotag, nominal size) is preserved unless
        explicitly overridden.
        """
        return replace(self, bitmap=_validate_bitmap(bitmap), **overrides)

    def scaled_nominal_bytes(self, factor: float) -> int:
        """Nominal file size scaled by *factor*, at least one byte."""
        if factor < 0:
            raise ImageError(f"scale factor must be non-negative, got {factor}")
        return max(1, int(round(self.nominal_bytes * factor)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = f" geo={self.geotag}" if self.geotag else ""
        return (
            f"Image(id={self.image_id!r}, group={self.group_id!r}, "
            f"{self.width}x{self.height}{tag}, ~{self.nominal_bytes}B)"
        )
