"""Geometric and photometric transforms on bitmaps.

These implement the perturbations the synthetic datasets need (small
shifts, brightness changes, noise — to fabricate "four views of the same
scene" groups) and the resampling primitives used by bitmap/resolution
compression.
"""

from __future__ import annotations

import numpy as np

from ..errors import ImageError


def _as_float_rgb(bitmap: np.ndarray) -> np.ndarray:
    arr = np.asarray(bitmap, dtype=np.float64)
    if arr.ndim == 2:
        arr = np.repeat(arr[:, :, None], 3, axis=2)
    if arr.ndim != 3 or arr.shape[2] != 3:
        raise ImageError(f"expected an (h, w, 3) bitmap, got shape {arr.shape}")
    return arr


def _to_uint8(arr: np.ndarray) -> np.ndarray:
    return np.clip(np.rint(arr), 0, 255).astype(np.uint8)


def resize_bilinear(bitmap: np.ndarray, new_height: int, new_width: int) -> np.ndarray:
    """Resize a bitmap with bilinear interpolation (align-corners=False).

    Matches the sampling convention of OpenCV's ``INTER_LINEAR``: the
    source coordinate of output pixel ``i`` is ``(i + 0.5) * scale - 0.5``.
    """
    arr = _as_float_rgb(bitmap)
    h, w = arr.shape[:2]
    if new_height < 1 or new_width < 1:
        raise ImageError(f"target size must be >= 1x1, got {new_width}x{new_height}")
    if (new_height, new_width) == (h, w):
        return _to_uint8(arr)

    ys = (np.arange(new_height) + 0.5) * (h / new_height) - 0.5
    xs = (np.arange(new_width) + 0.5) * (w / new_width) - 0.5
    ys = np.clip(ys, 0, h - 1)
    xs = np.clip(xs, 0, w - 1)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y1 = np.minimum(y0 + 1, h - 1)
    x1 = np.minimum(x0 + 1, w - 1)
    wy = (ys - y0)[:, None, None]
    wx = (xs - x0)[None, :, None]

    top = arr[y0][:, x0] * (1 - wx) + arr[y0][:, x1] * wx
    bottom = arr[y1][:, x0] * (1 - wx) + arr[y1][:, x1] * wx
    return _to_uint8(top * (1 - wy) + bottom * wy)


def resize_area(bitmap: np.ndarray, new_height: int, new_width: int) -> np.ndarray:
    """Area-averaging downscale (OpenCV ``INTER_AREA`` analogue).

    For integer shrink factors this is exact block averaging; for
    fractional factors it falls back to bilinear, which is what OpenCV
    effectively does for mild shrinks.
    """
    arr = _as_float_rgb(bitmap)
    h, w = arr.shape[:2]
    if new_height < 1 or new_width < 1:
        raise ImageError(f"target size must be >= 1x1, got {new_width}x{new_height}")
    if h % new_height == 0 and w % new_width == 0:
        fy, fx = h // new_height, w // new_width
        blocks = arr.reshape(new_height, fy, new_width, fx, 3)
        return _to_uint8(blocks.mean(axis=(1, 3)))
    return resize_bilinear(bitmap, new_height, new_width)


def translate(bitmap: np.ndarray, dy: int, dx: int) -> np.ndarray:
    """Shift a bitmap by whole pixels, reflecting at the borders.

    Reflection keeps the image statistics stationary, which matters for
    the similarity ground truth (a shifted view must stay "the same
    scene" rather than acquiring black borders no camera would produce).
    """
    arr = _as_float_rgb(bitmap)
    h, w = arr.shape[:2]
    pad_y, pad_x = abs(int(dy)), abs(int(dx))
    if pad_y >= h or pad_x >= w:
        raise ImageError(f"shift ({dy}, {dx}) larger than bitmap {w}x{h}")
    padded = np.pad(arr, ((pad_y, pad_y), (pad_x, pad_x), (0, 0)), mode="reflect")
    y0 = pad_y - int(dy)
    x0 = pad_x - int(dx)
    return _to_uint8(padded[y0 : y0 + h, x0 : x0 + w])


def adjust_brightness(bitmap: np.ndarray, delta: float) -> np.ndarray:
    """Add *delta* (in 0..255 units, may be negative) to every channel."""
    return _to_uint8(_as_float_rgb(bitmap) + float(delta))


def adjust_contrast(bitmap: np.ndarray, gain: float) -> np.ndarray:
    """Scale contrast about the mid-gray point by *gain*."""
    if gain <= 0:
        raise ImageError(f"contrast gain must be positive, got {gain}")
    arr = _as_float_rgb(bitmap)
    return _to_uint8((arr - 128.0) * float(gain) + 128.0)


def add_gaussian_noise(bitmap: np.ndarray, sigma: float, rng: np.random.Generator) -> np.ndarray:
    """Add zero-mean Gaussian pixel noise with std *sigma*."""
    if sigma < 0:
        raise ImageError(f"noise sigma must be non-negative, got {sigma}")
    arr = _as_float_rgb(bitmap)
    return _to_uint8(arr + rng.normal(0.0, sigma, size=arr.shape))


def center_crop_fraction(bitmap: np.ndarray, fraction: float) -> np.ndarray:
    """Crop the central ``fraction`` of the bitmap and scale back up.

    Emulates a slight zoom-in between two shots of the same scene.
    """
    if not 0.0 < fraction <= 1.0:
        raise ImageError(f"crop fraction must be in (0, 1], got {fraction}")
    arr = _as_float_rgb(bitmap)
    h, w = arr.shape[:2]
    ch = max(1, int(round(h * fraction)))
    cw = max(1, int(round(w * fraction)))
    y0 = (h - ch) // 2
    x0 = (w - cw) // 2
    crop = arr[y0 : y0 + ch, x0 : x0 + cw]
    return resize_bilinear(crop, h, w)
