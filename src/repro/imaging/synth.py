"""Deterministic synthetic scene generation.

The paper evaluates on real photo collections (Kentucky, a Nepal disaster
crawl, Paris).  Offline we substitute procedurally generated scenes with
the one property every experiment actually depends on: images of the same
scene are *similar* (shared structure, small viewpoint/photometric
differences) and images of different scenes are *dissimilar*.

A scene is drawn from a seed as a textured background plus a collection
of high-contrast geometric primitives (rectangles, ellipses, bars), which
gives the corner-rich content the FAST/ORB detector needs.  "Another
photo of the same scene" is the same primitives re-rendered through a
small random perturbation (translation, brightness, contrast, sensor
noise, slight zoom), exactly the variation between the four views in a
Kentucky group.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ImageError
from .filters import gaussian_blur
from .image import DEFAULT_NOMINAL_BYTES, Image
from .transforms import (
    add_gaussian_noise,
    adjust_brightness,
    adjust_contrast,
    center_crop_fraction,
    translate,
)

DEFAULT_HEIGHT = 120
DEFAULT_WIDTH = 160


@dataclass(frozen=True)
class PerturbationSpec:
    """How much two views of the same scene may differ."""

    max_shift: int = 3
    max_brightness: float = 10.0
    contrast_range: tuple[float, float] = (0.92, 1.08)
    noise_sigma: float = 2.0
    min_crop: float = 0.95

    def __post_init__(self) -> None:
        if self.max_shift < 0:
            raise ImageError(f"max_shift must be >= 0, got {self.max_shift}")
        if not 0.0 < self.min_crop <= 1.0:
            raise ImageError(f"min_crop must be in (0, 1], got {self.min_crop}")
        low, high = self.contrast_range
        if not 0.0 < low <= high:
            raise ImageError(f"bad contrast range {self.contrast_range}")


@dataclass
class SceneGenerator:
    """Draws deterministic scenes and perturbed views of them."""

    height: int = DEFAULT_HEIGHT
    width: int = DEFAULT_WIDTH
    min_shapes: int = 18
    max_shapes: int = 30
    texture_sigma: float = 14.0
    nominal_bytes: int = DEFAULT_NOMINAL_BYTES
    perturbation: PerturbationSpec = field(default_factory=PerturbationSpec)

    def __post_init__(self) -> None:
        if self.height < 32 or self.width < 32:
            raise ImageError(
                f"scenes must be at least 32x32, got {self.width}x{self.height}"
            )
        if not 1 <= self.min_shapes <= self.max_shapes:
            raise ImageError(
                f"bad shape-count range [{self.min_shapes}, {self.max_shapes}]"
            )

    # -- scene synthesis --------------------------------------------------

    def _background(self, rng: np.random.Generator) -> np.ndarray:
        """A smooth two-axis gradient plus low-frequency texture."""
        ys = np.linspace(0.0, 1.0, self.height)[:, None]
        xs = np.linspace(0.0, 1.0, self.width)[None, :]
        base = rng.uniform(60, 160)
        gy = rng.uniform(-50, 50)
        gx = rng.uniform(-50, 50)
        plane = base + gy * ys + gx * xs
        # Low-frequency sinusoidal texture keeps the background from being
        # flat (flat regions would starve SIFT of gradient signal).
        fy = rng.uniform(1.0, 3.0)
        fx = rng.uniform(1.0, 3.0)
        phase = rng.uniform(0, 2 * np.pi)
        plane = plane + 8.0 * np.sin(2 * np.pi * (fy * ys + fx * xs) + phase)
        # Fine-grained scene texture: real photos (rubble, vegetation,
        # asphalt) are textured everywhere, which is what gives SIFT/FAST
        # their keypoint density.  The texture belongs to the *scene* — it
        # is rendered before view perturbations, so two views of the same
        # scene share it, while different scenes get independent texture.
        if self.texture_sigma > 0.0:
            speckle = rng.normal(0.0, self.texture_sigma, size=(self.height, self.width))
            plane = plane + gaussian_blur(speckle, 0.8)
        rgb = np.repeat(plane[:, :, None], 3, axis=2)
        tint = rng.uniform(-15, 15, size=3)
        return rgb + tint[None, None, :]

    def _shape_params(self, rng: np.random.Generator, count: int) -> list[dict]:
        """Draw *count* shape parameter dicts from *rng*."""
        h, w = self.height, self.width
        params = []
        for _ in range(count):
            kind = rng.choice(["rect", "ellipse", "bar"])
            spec = {
                "kind": str(kind),
                "colour": rng.uniform(0, 255, size=3),
                "cy": rng.uniform(0.1 * h, 0.9 * h),
                "cx": rng.uniform(0.1 * w, 0.9 * w),
            }
            if kind == "rect":
                spec["hh"] = rng.uniform(0.04, 0.22) * h
                spec["ww"] = rng.uniform(0.04, 0.22) * w
            elif kind == "ellipse":
                spec["ry"] = max(2.0, rng.uniform(0.04, 0.18) * h)
                spec["rx"] = max(2.0, rng.uniform(0.04, 0.18) * w)
            else:
                spec["angle"] = rng.uniform(0, np.pi)
                spec["thickness"] = rng.uniform(1.5, 4.0)
                spec["length"] = rng.uniform(0.2, 0.6) * min(h, w)
            params.append(spec)
        return params

    def _render_shapes(self, canvas: np.ndarray, params: list[dict]) -> np.ndarray:
        h, w = canvas.shape[:2]
        yy, xx = np.mgrid[0:h, 0:w]
        for spec in params:
            cy, cx = spec["cy"], spec["cx"]
            if spec["kind"] == "rect":
                mask = (np.abs(yy - cy) < spec["hh"]) & (np.abs(xx - cx) < spec["ww"])
            elif spec["kind"] == "ellipse":
                mask = ((yy - cy) / spec["ry"]) ** 2 + ((xx - cx) / spec["rx"]) ** 2 < 1.0
            else:  # bar: a thin rotated stripe — strong straight edges
                angle = spec["angle"]
                dy = np.cos(angle)
                dx = np.sin(angle)
                dist = np.abs((yy - cy) * dx - (xx - cx) * dy)
                along = np.abs((yy - cy) * dy + (xx - cx) * dx)
                mask = (dist < spec["thickness"]) & (along < spec["length"] / 2)
            canvas[mask] = spec["colour"][None, :]
        return canvas

    def scene(
        self,
        seed: int,
        shared_seed: int | None = None,
        shared_fraction: float = 0.0,
    ) -> np.ndarray:
        """Render the canonical bitmap of scene *seed* (uint8 RGB).

        When ``shared_seed`` is given, ``shared_fraction`` of the shapes
        are drawn from that seed instead of the scene's own.  Datasets
        use this to build *scene families*: different scenes that share
        some content, the way unrelated disaster photos still show the
        same streets and rubble.  Family pairs are what populate the
        moderate-similarity tail of the dissimilar distribution in the
        paper's Figure 4.
        """
        if not 0.0 <= shared_fraction <= 1.0:
            raise ImageError(f"shared_fraction must be in [0, 1], got {shared_fraction}")
        rng = np.random.default_rng(np.uint64(seed) ^ np.uint64(0x5EED_BEE5))
        canvas = self._background(rng)
        n_shapes = int(rng.integers(self.min_shapes, self.max_shapes + 1))
        n_shared = int(round(n_shapes * shared_fraction)) if shared_seed is not None else 0
        params: list[dict] = []
        if n_shared:
            family_rng = np.random.default_rng(
                np.uint64(shared_seed) ^ np.uint64(0xFA111E5)
            )
            params.extend(self._shape_params(family_rng, n_shared))
        params.extend(self._shape_params(rng, n_shapes - n_shared))
        canvas = self._render_shapes(canvas, params)
        return np.clip(np.rint(canvas), 0, 255).astype(np.uint8)

    # -- views ------------------------------------------------------------

    def view(
        self,
        seed: int,
        view_index: int,
        image_id: str = "",
        group_id: str = "",
        shared_seed: int | None = None,
        shared_fraction: float = 0.0,
    ) -> Image:
        """A perturbed photograph of scene *seed*.

        ``view_index == 0`` is the canonical view; higher indices apply a
        deterministic perturbation drawn from ``(seed, view_index)``.
        ``shared_seed``/``shared_fraction`` pass through to :meth:`scene`.
        """
        bitmap = self.scene(seed, shared_seed=shared_seed, shared_fraction=shared_fraction)
        if view_index:
            rng = np.random.default_rng(
                (np.uint64(seed) << np.uint64(20)) ^ np.uint64(view_index)
            )
            spec = self.perturbation
            if spec.max_shift:
                dy = int(rng.integers(-spec.max_shift, spec.max_shift + 1))
                dx = int(rng.integers(-spec.max_shift, spec.max_shift + 1))
                bitmap = translate(bitmap, dy, dx)
            crop = rng.uniform(spec.min_crop, 1.0)
            if crop < 1.0:
                bitmap = center_crop_fraction(bitmap, crop)
            bitmap = adjust_brightness(bitmap, rng.uniform(-spec.max_brightness, spec.max_brightness))
            bitmap = adjust_contrast(bitmap, rng.uniform(*spec.contrast_range))
            if spec.noise_sigma:
                bitmap = add_gaussian_noise(bitmap, spec.noise_sigma, rng)
        return Image(
            bitmap=bitmap,
            image_id=image_id or f"scene{seed}-v{view_index}",
            group_id=group_id or f"scene{seed}",
            nominal_bytes=self.nominal_bytes,
        )
