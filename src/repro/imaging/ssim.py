"""SSIM — the Structural SIMilarity index (Wang et al., 2004).

The paper uses SSIM to quantify how much quality compression degrades an
image (Figure 5(a)).  This is the standard single-scale implementation:
an 11x11 Gaussian window with sigma 1.5, K1=0.01, K2=0.03, dynamic range
255, computed on the luma plane.
"""

from __future__ import annotations

import numpy as np

from ..errors import ImageError
from .filters import gaussian_kernel1d, _correlate1d
from .image import Image

K1 = 0.01
K2 = 0.03
DYNAMIC_RANGE = 255.0
WINDOW_SIGMA = 1.5
WINDOW_RADIUS = 5


def _window_mean(plane: np.ndarray) -> np.ndarray:
    kernel = gaussian_kernel1d(WINDOW_SIGMA, radius=WINDOW_RADIUS)
    return _correlate1d(_correlate1d(plane, kernel, axis=0), kernel, axis=1)


def ssim_map(plane_a: np.ndarray, plane_b: np.ndarray) -> np.ndarray:
    """Per-pixel SSIM map of two 2-D float planes in [0, 255]."""
    a = np.asarray(plane_a, dtype=np.float64)
    b = np.asarray(plane_b, dtype=np.float64)
    if a.shape != b.shape:
        raise ImageError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.ndim != 2:
        raise ImageError(f"ssim_map expects 2-D planes, got {a.ndim}-D")
    if min(a.shape) < 2 * WINDOW_RADIUS + 1:
        raise ImageError(
            f"plane {a.shape} smaller than the {2 * WINDOW_RADIUS + 1}px SSIM window"
        )

    c1 = (K1 * DYNAMIC_RANGE) ** 2
    c2 = (K2 * DYNAMIC_RANGE) ** 2

    mu_a = _window_mean(a)
    mu_b = _window_mean(b)
    mu_aa = mu_a * mu_a
    mu_bb = mu_b * mu_b
    mu_ab = mu_a * mu_b
    sigma_aa = _window_mean(a * a) - mu_aa
    sigma_bb = _window_mean(b * b) - mu_bb
    sigma_ab = _window_mean(a * b) - mu_ab

    numerator = (2.0 * mu_ab + c1) * (2.0 * sigma_ab + c2)
    denominator = (mu_aa + mu_bb + c1) * (sigma_aa + sigma_bb + c2)
    return numerator / denominator


def ssim(image_a: Image, image_b: Image) -> float:
    """Mean SSIM between two images of identical resolution."""
    return float(ssim_map(image_a.gray(), image_b.gray()).mean())
