"""Image substrate: bitmaps, transforms, codecs, and quality metrics.

This subpackage replaces the OpenCV image operations the BEES prototype
links against, implemented from scratch on numpy.
"""

from .bitmap import compress_bitmap, compress_image, compressed_dimensions, pixel_fraction
from .image import DEFAULT_NOMINAL_BYTES, Image
from .io import read_netpbm, write_pgm, write_ppm
from .jpeg import JpegEncoded, compress_quality, decode, encode, proportion_to_quality
from .quality import mse, psnr
from .resolution import compress_resolution, compressed_resolution
from .ssim import ssim, ssim_map
from .synth import PerturbationSpec, SceneGenerator

__all__ = [
    "DEFAULT_NOMINAL_BYTES",
    "Image",
    "JpegEncoded",
    "PerturbationSpec",
    "SceneGenerator",
    "compress_bitmap",
    "compress_image",
    "compress_quality",
    "compress_resolution",
    "compressed_dimensions",
    "compressed_resolution",
    "decode",
    "encode",
    "mse",
    "pixel_fraction",
    "psnr",
    "read_netpbm",
    "proportion_to_quality",
    "ssim",
    "ssim_map",
    "write_pgm",
    "write_ppm",
]
