"""Low-level image filters used by the feature extractors and codecs.

Everything here operates on 2-D ``float64`` arrays (one image plane) and
is vectorised with numpy; no Python-level per-pixel loops.  These filters
replace the OpenCV primitives the paper's prototype links against.
"""

from __future__ import annotations

import numpy as np

from ..errors import ImageError


def gaussian_kernel1d(sigma: float, radius: int | None = None) -> np.ndarray:
    """Return a normalised 1-D Gaussian kernel.

    The radius defaults to ``ceil(3 * sigma)`` which captures >99.7% of
    the mass, matching the truncation OpenCV uses for ``GaussianBlur``.
    """
    if sigma <= 0:
        raise ImageError(f"sigma must be positive, got {sigma}")
    if radius is None:
        radius = max(1, int(np.ceil(3.0 * sigma)))
    x = np.arange(-radius, radius + 1, dtype=np.float64)
    kernel = np.exp(-(x * x) / (2.0 * sigma * sigma))
    return kernel / kernel.sum()


def _correlate1d(plane: np.ndarray, kernel: np.ndarray, axis: int) -> np.ndarray:
    """Correlate *plane* with a 1-D *kernel* along *axis* (reflect pad)."""
    radius = len(kernel) // 2
    pad = [(0, 0), (0, 0)]
    pad[axis] = (radius, radius)
    padded = np.pad(plane, pad, mode="reflect")
    out = np.zeros_like(plane, dtype=np.float64)
    for i, weight in enumerate(kernel):
        if axis == 0:
            out += weight * padded[i : i + plane.shape[0], :]
        else:
            out += weight * padded[:, i : i + plane.shape[1]]
    return out


def gaussian_blur(plane: np.ndarray, sigma: float) -> np.ndarray:
    """Separable Gaussian blur of a 2-D plane."""
    plane = np.asarray(plane, dtype=np.float64)
    if plane.ndim != 2:
        raise ImageError(f"gaussian_blur expects a 2-D plane, got {plane.ndim}-D")
    kernel = gaussian_kernel1d(sigma)
    return _correlate1d(_correlate1d(plane, kernel, axis=0), kernel, axis=1)


def box_blur(plane: np.ndarray, radius: int) -> np.ndarray:
    """Box blur via a summed-area table; O(1) per pixel in the radius."""
    plane = np.asarray(plane, dtype=np.float64)
    if plane.ndim != 2:
        raise ImageError(f"box_blur expects a 2-D plane, got {plane.ndim}-D")
    if radius < 1:
        return plane.copy()
    size = 2 * radius + 1
    padded = np.pad(plane, radius, mode="reflect")
    sat = np.cumsum(np.cumsum(padded, axis=0), axis=1)
    sat = np.pad(sat, ((1, 0), (1, 0)))
    h, w = plane.shape
    total = (
        sat[size : size + h, size : size + w]
        - sat[0:h, size : size + w]
        - sat[size : size + h, 0:w]
        + sat[0:h, 0:w]
    )
    return total / float(size * size)


def sobel_gradients(plane: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(gx, gy)`` Sobel gradients of a 2-D plane."""
    plane = np.asarray(plane, dtype=np.float64)
    if plane.ndim != 2:
        raise ImageError(f"sobel_gradients expects a 2-D plane, got {plane.ndim}-D")
    smooth = np.array([1.0, 2.0, 1.0])
    diff = np.array([-1.0, 0.0, 1.0])
    gx = _correlate1d(_correlate1d(plane, diff, axis=1), smooth, axis=0)
    gy = _correlate1d(_correlate1d(plane, diff, axis=0), smooth, axis=1)
    return gx, gy


def gradient_magnitude_orientation(plane: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Gradient magnitude and orientation (radians in ``[-pi, pi]``)."""
    gx, gy = sobel_gradients(plane)
    return np.hypot(gx, gy), np.arctan2(gy, gx)


def local_maxima(response: np.ndarray, radius: int = 1) -> np.ndarray:
    """Boolean mask of strict local maxima within a square window.

    Used for non-maximum suppression of corner responses.  A pixel is kept
    when it is >= every neighbour and > at least one (so constant plateaus
    are not all kept).
    """
    response = np.asarray(response, dtype=np.float64)
    if response.ndim != 2:
        raise ImageError(f"local_maxima expects a 2-D plane, got {response.ndim}-D")
    # Out-of-bounds neighbours must be neutral: they never beat a pixel
    # (-inf pad for the >= test) and never count as beaten evidence
    # (+inf pad for the strict test).
    pad_low = np.pad(response, radius, mode="constant", constant_values=-np.inf)
    pad_high = np.pad(response, radius, mode="constant", constant_values=np.inf)
    keep = np.ones_like(response, dtype=bool)
    strictly_greater = np.zeros_like(response, dtype=bool)
    h, w = response.shape
    for dy in range(-radius, radius + 1):
        for dx in range(-radius, radius + 1):
            if dy == 0 and dx == 0:
                continue
            rows = slice(radius + dy, radius + dy + h)
            cols = slice(radius + dx, radius + dx + w)
            keep &= response >= pad_low[rows, cols]
            strictly_greater |= response > pad_high[rows, cols]
    return keep & strictly_greater
