"""Resolution compression — one of the two AIU knobs of Section III-C.

The *resolution compression proportion* ``Cr`` follows the same linear
convention as bitmap compression: each dimension shrinks by ``1 - Cr``
(the paper's example: 1000x500 at ``Cr = 0.2`` becomes 800x400).  The
file size of the re-encoded image shrinks with the pixel count, i.e. by
``(1 - Cr)^2`` — the paper's 8 MP example at ``Cr = 0.76`` keeps
``0.24^2 ~ 5.8%`` of the pixels, "reducing about 87% file size" once the
codec's diminishing-returns overhead is folded in.
"""

from __future__ import annotations

from ..errors import ImageError
from .bitmap import compressed_dimensions, validate_proportion
from .image import Image
from .transforms import resize_area

#: Fraction of a file that does not scale with pixel count (headers,
#: entropy-coding floor — small images compress relatively worse).
#: Keeps tiny resolutions from reaching size zero, reproduces the slight
#: concavity of Figure 5(b), and is calibrated against the paper's 8 MP
#: example: Cr = 0.76 "reduces about 87% file size".
SIZE_FLOOR_FRACTION = 0.075


def size_factor(proportion: float) -> float:
    """File-size multiplier produced by resolution compression."""
    scale = 1.0 - validate_proportion(proportion)
    return SIZE_FLOOR_FRACTION + (1.0 - SIZE_FLOOR_FRACTION) * scale * scale


def compress_resolution(image: Image, proportion: float) -> Image:
    """Downscale *image* for upload; resolution loss is unrecoverable.

    The returned image carries a proportionally smaller nominal file size
    so the network and energy models see the savings.
    """
    proportion = validate_proportion(proportion)
    nh, nw = compressed_dimensions(image.height, image.width, proportion)
    if (nh, nw) == (image.height, image.width):
        return image
    bitmap = resize_area(image.bitmap, nh, nw)
    old_w, old_h = image.nominal_resolution
    new_h, new_w = compressed_dimensions(old_h, old_w, proportion)
    return image.with_bitmap(
        bitmap,
        nominal_bytes=image.scaled_nominal_bytes(size_factor(proportion)),
        nominal_resolution=(new_w, new_h),
    )


def compressed_resolution(width: int, height: int, proportion: float) -> tuple[int, int]:
    """``(width, height)`` after resolution compression (photo convention)."""
    if width < 1 or height < 1:
        raise ImageError(f"resolution must be positive, got {width}x{height}")
    nh, nw = compressed_dimensions(height, width, proportion)
    return (nw, nh)
