"""Span tracing for the BEES pipeline.

A :class:`Tracer` produces nested, wall-clock-timed :class:`Span`\\ s via
a context manager::

    with tracer.span("bees.batch", scheme="BEES", n_images=30) as span:
        with tracer.span("bees.afe", image_id="img-0"):
            ...
        span.set_attribute("bytes_sent", 1234)

Finished spans accumulate on ``tracer.finished`` (in completion order)
and serialise to JSONL through :mod:`repro.obs.exporters`.  A disabled
tracer hands out one shared, stateless :data:`NULL_SPAN` context
manager, so instrumentation left in hot paths costs a dict build and an
attribute check — nothing else.

The tracer is **thread-safe**: each thread nests spans on its own
active stack (so concurrent fleet devices cannot corrupt each other's
parentage), while span-id allocation and the ``finished`` list are
lock-protected.

**Cross-thread propagation.**  A span opened in a worker thread has no
parent by default — worker-pool threads know nothing about the span the
coordinating thread had open when it submitted the job.  The supported
fix is explicit context capture::

    context = tracer.current_context()        # on the coordinator

    def job():                                # on a pool thread
        with tracer.attach(context):
            with tracer.span("fleet.device"):  # child of the captured span
                ...

:meth:`Tracer.attach` seats the captured span at the bottom of the
worker thread's active stack for the duration of the block, so *every*
span the job opens — the explicit ``fleet.device`` one and anything the
pipeline opens transitively — lands in one connected trace tree.  The
older per-span ``parent_span_id`` override is still honoured for
single-span grafts.

The per-thread active stacks are also registered in a shared,
lock-guarded ``thread ident -> stack`` table so the sampling profiler
(:mod:`repro.obs.profiling`) can ask "what span is thread *t* inside
right now?" from its own sampling thread (:meth:`Tracer.active_path_of`
/ :meth:`Tracer.active_paths`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field


@dataclass
class Span:
    """One timed operation, possibly nested under a parent."""

    name: str
    span_id: int
    parent_id: "int | None"
    #: Wall-clock epoch seconds when the span opened.
    start: float
    #: Seconds the span stayed open (filled on exit).
    duration: float = 0.0
    attributes: dict = field(default_factory=dict)
    #: ``"ExcType: message"`` when the span exited via an exception.
    error: "str | None" = None
    _t0: float = field(default=0.0, repr=False)

    def set_attribute(self, key: str, value: object) -> None:
        """Attach (or overwrite) one attribute."""
        self.attributes[key] = value

    def to_dict(self) -> dict:
        """The JSONL representation of this span."""
        record = {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "attributes": self.attributes,
        }
        if self.error is not None:
            record["error"] = self.error
        return record


@dataclass(frozen=True)
class TraceContext:
    """A capture of "the span this thread is inside right now".

    Produced by :meth:`Tracer.current_context` on the thread that owns
    the span, handed (it is immutable) to worker threads, and activated
    there with :meth:`Tracer.attach`.  An empty context (``span is
    None``) attaches as a no-op, so capture sites never need to guard
    against "no span open".
    """

    span: "Span | None" = None

    @property
    def span_id(self) -> "int | None":
        """The captured span's id, or ``None`` for an empty context."""
        return self.span.span_id if self.span is not None else None


#: The shared empty context: attaching it is a no-op.
EMPTY_CONTEXT = TraceContext(span=None)


class _NullSpan:
    """The reusable no-op span: accepts everything, records nothing.

    Stateless, so one shared instance can be (re-)entered from any
    number of ``with`` blocks, including nested ones.
    """

    __slots__ = ()

    def set_attribute(self, key: str, value: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False  # never swallow exceptions


#: Shared no-op span/context-manager handed out by disabled tracers.
NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager that opens a span on a tracer's active stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._stack.append(self._span)
        return self._span

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        span = self._span
        span.duration = time.perf_counter() - span._t0  # beeslint: disable=raw-timing (the tracer IS the obs helper)
        if exc_type is not None:
            span.error = f"{exc_type.__name__}: {exc_value}"
        stack = self._tracer._stack
        # Exception safety: pop *this* span even if inner spans leaked.
        while stack:
            popped = stack.pop()
            if popped is span:
                break
        with self._tracer._lock:
            self._tracer.finished.append(span)
        return False


class _AttachedContext:
    """Context manager seating a captured span on this thread's stack.

    The foreign span goes *underneath* whatever this thread opens next,
    so every span the block creates parents correctly into the captured
    trace.  The span itself stays owned (and will be closed) by the
    capturing thread — attach never closes it.
    """

    __slots__ = ("_tracer", "_context")

    def __init__(self, tracer: "Tracer", context: TraceContext) -> None:
        self._tracer = tracer
        self._context = context

    def __enter__(self) -> TraceContext:
        if self._context.span is not None:
            self._tracer._stack.append(self._context.span)
        return self._context

    def __exit__(self, *exc_info: object) -> bool:
        span = self._context.span
        if span is not None:
            stack = self._tracer._stack
            # Remove the seated span (search from the top: inner spans
            # that leaked on an exception path sit above it).
            for index in range(len(stack) - 1, -1, -1):
                if stack[index] is span:
                    del stack[index]
                    break
        return False


class _ActiveStacks(threading.local):
    """Per-thread active-span stacks."""

    def __init__(self) -> None:
        self.spans: "list[Span]" = []


class Tracer:
    """Produces nested spans; collects them as they finish.

    Safe for concurrent use: span nesting is per-thread, completion
    bookkeeping is locked.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.finished: "list[Span]" = []
        self._stacks = _ActiveStacks()
        #: thread ident -> that thread's active stack (the same list
        #: object the thread-local holds).  Read by the profiler from
        #: its sampling thread; written under ``_lock``.
        self._stacks_by_ident: "dict[int, list[Span]]" = {}
        self._next_id = 0
        self._lock = threading.Lock()

    @property
    def _stack(self) -> "list[Span]":
        """The calling thread's active-span stack."""
        stack = self._stacks.spans
        ident = threading.get_ident()
        if (
            self._stacks_by_ident.get(ident)  # beeslint: disable=lock-discipline (benign one-slice racy read; a stale miss only repeats the publish below)
            is not stack
        ):
            # First touch from this thread (or the ident was recycled
            # from a dead thread): publish the stack for the profiler.
            with self._lock:
                self._stacks_by_ident[ident] = stack
        return stack

    def span(
        self,
        name: str,
        parent_span_id: "int | None" = None,
        **attributes: object,
    ):
        """Open a span nested under the calling thread's active one.

        ``parent_span_id`` overrides the implicit parent for one span —
        for whole jobs crossing threads, prefer capturing a
        :class:`TraceContext` and :meth:`attach`\\ ing it in the worker,
        which parents everything the job opens, not just the first span.
        """
        if not self.enabled:
            return NULL_SPAN
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        stack = self._stack
        if parent_span_id is None:
            parent_id = stack[-1].span_id if stack else None
        else:
            parent_id = parent_span_id
        span = Span(
            name=name,
            span_id=span_id,
            parent_id=parent_id,
            start=time.time(),  # beeslint: disable=raw-timing (span epoch stamp, not a recorded delta)
            attributes=dict(attributes),
            _t0=time.perf_counter(),  # beeslint: disable=raw-timing (tracer internals are the obs helper)
        )
        return _SpanContext(self, span)

    # -- cross-thread propagation -------------------------------------------

    def current_context(self) -> TraceContext:
        """Capture the calling thread's innermost open span as a context.

        Returns :data:`EMPTY_CONTEXT` when no span is open (or the
        tracer is disabled), so the result is always safe to attach.
        """
        if not self.enabled:
            return EMPTY_CONTEXT
        stack = self._stack
        return TraceContext(span=stack[-1]) if stack else EMPTY_CONTEXT

    def attach(self, context: TraceContext):
        """Seat *context* under the calling thread's spans for a block.

        The worker-thread half of cross-thread propagation; see the
        module docstring for the capture/attach protocol.
        """
        if not self.enabled:
            return NULL_SPAN
        return _AttachedContext(self, context)

    # -- sampling surface (read by the profiler thread) ----------------------

    def active_path_of(self, ident: int) -> "tuple[str, ...]":
        """Span names enclosing thread *ident*, outermost first.

        Sampled from a *different* thread, so the read races benignly
        with the owner's push/pop: the snapshot is taken in one slice
        (atomic under the GIL) and may be one span stale — fine for a
        statistical profiler.
        """
        stack = self._stacks_by_ident.get(ident)  # beeslint: disable=lock-discipline (documented benign race: one-slice GIL-atomic snapshot from the profiler thread)
        if not stack:
            return ()
        return tuple(span.name for span in stack[:])

    def active_paths(self) -> "dict[int, tuple[str, ...]]":
        """``thread ident -> active span-name path`` for live threads."""
        with self._lock:
            idents = list(self._stacks_by_ident)
        paths = {}
        for ident in idents:
            path = self.active_path_of(ident)
            if path:
                paths[ident] = path
        return paths

    @property
    def active(self) -> "Span | None":
        """The calling thread's innermost open span, if any."""
        stack = self._stack
        return stack[-1] if stack else None

    def reset(self) -> None:
        """Drop all finished spans and this thread's leaked open ones."""
        with self._lock:
            self.finished.clear()
            self._next_id = 0
        self._stack.clear()

    def snapshot_finished(self) -> "list[Span]":
        """A consistent copy of the finished list (for exporters)."""
        with self._lock:
            return list(self.finished)

    def __len__(self) -> int:
        return len(self.finished)
