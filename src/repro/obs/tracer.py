"""Span tracing for the BEES pipeline.

A :class:`Tracer` produces nested, wall-clock-timed :class:`Span`\\ s via
a context manager::

    with tracer.span("bees.batch", scheme="BEES", n_images=30) as span:
        with tracer.span("bees.afe", image_id="img-0"):
            ...
        span.set_attribute("bytes_sent", 1234)

Finished spans accumulate on ``tracer.finished`` (in completion order)
and serialise to JSONL through :mod:`repro.obs.exporters`.  A disabled
tracer hands out one shared, stateless :data:`NULL_SPAN` context
manager, so instrumentation left in hot paths costs a dict build and an
attribute check — nothing else.

The tracer is **thread-safe**: each thread nests spans on its own
thread-local active stack (so concurrent fleet devices cannot corrupt
each other's parentage), while span-id allocation and the ``finished``
list are lock-protected.  A span opened in a worker thread has no
parent by default; pass ``parent_span_id`` to attach it under a span
owned by another thread (the fleet runner hangs per-device spans under
the round span this way).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field


@dataclass
class Span:
    """One timed operation, possibly nested under a parent."""

    name: str
    span_id: int
    parent_id: "int | None"
    #: Wall-clock epoch seconds when the span opened.
    start: float
    #: Seconds the span stayed open (filled on exit).
    duration: float = 0.0
    attributes: dict = field(default_factory=dict)
    #: ``"ExcType: message"`` when the span exited via an exception.
    error: "str | None" = None
    _t0: float = field(default=0.0, repr=False)

    def set_attribute(self, key: str, value: object) -> None:
        """Attach (or overwrite) one attribute."""
        self.attributes[key] = value

    def to_dict(self) -> dict:
        """The JSONL representation of this span."""
        record = {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "attributes": self.attributes,
        }
        if self.error is not None:
            record["error"] = self.error
        return record


class _NullSpan:
    """The reusable no-op span: accepts everything, records nothing.

    Stateless, so one shared instance can be (re-)entered from any
    number of ``with`` blocks, including nested ones.
    """

    __slots__ = ()

    def set_attribute(self, key: str, value: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False  # never swallow exceptions


#: Shared no-op span/context-manager handed out by disabled tracers.
NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager that opens a span on a tracer's active stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._stack.append(self._span)
        return self._span

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        span = self._span
        span.duration = time.perf_counter() - span._t0
        if exc_type is not None:
            span.error = f"{exc_type.__name__}: {exc_value}"
        stack = self._tracer._stack
        # Exception safety: pop *this* span even if inner spans leaked.
        while stack:
            popped = stack.pop()
            if popped is span:
                break
        with self._tracer._lock:
            self._tracer.finished.append(span)
        return False


class _ActiveStacks(threading.local):
    """Per-thread active-span stacks."""

    def __init__(self) -> None:
        self.spans: "list[Span]" = []


class Tracer:
    """Produces nested spans; collects them as they finish.

    Safe for concurrent use: span nesting is per-thread, completion
    bookkeeping is locked.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.finished: "list[Span]" = []
        self._stacks = _ActiveStacks()
        self._next_id = 0
        self._lock = threading.Lock()

    @property
    def _stack(self) -> "list[Span]":
        """The calling thread's active-span stack."""
        return self._stacks.spans

    def span(
        self,
        name: str,
        parent_span_id: "int | None" = None,
        **attributes: object,
    ):
        """Open a span nested under the calling thread's active one.

        ``parent_span_id`` overrides the implicit parent — the hook a
        concurrent driver uses to attach worker-thread spans under a
        span opened by the coordinating thread.
        """
        if not self.enabled:
            return NULL_SPAN
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        stack = self._stack
        if parent_span_id is None:
            parent_id = stack[-1].span_id if stack else None
        else:
            parent_id = parent_span_id
        span = Span(
            name=name,
            span_id=span_id,
            parent_id=parent_id,
            start=time.time(),
            attributes=dict(attributes),
            _t0=time.perf_counter(),
        )
        return _SpanContext(self, span)

    @property
    def active(self) -> "Span | None":
        """The calling thread's innermost open span, if any."""
        stack = self._stack
        return stack[-1] if stack else None

    def reset(self) -> None:
        """Drop all finished spans and this thread's leaked open ones."""
        with self._lock:
            self.finished.clear()
            self._next_id = 0
        self._stack.clear()

    def __len__(self) -> int:
        return len(self.finished)
