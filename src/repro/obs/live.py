"""Streaming windowed aggregation over the metrics registry.

The registry (:mod:`repro.obs.metrics`) accumulates *totals*: counters
only go up, histograms only fill.  Live telemetry needs *rates* and
*windowed* distributions — "bytes per second right now", "stage p95
over the last window" — without touching any instrumentation call site.
:class:`StreamingAggregator` closes that gap by sampling the registry
periodically and differencing against the previous sample:

* counter deltas divided by the sample interval become **rates**
  (``goodput_bytes_per_s``, ``joules_per_s``, ``cache_hit_rate``);
* gauges pass through as-is (``queue_depth``, per-shard occupancy);
* histogram *bucket-count deltas* form a windowed sub-histogram whose
  quantiles come from :func:`repro.obs.metrics.bucket_quantile`
  (``stage_p50/p95/p99`` per scheme and stage);
* finished ``fleet.device`` spans past a cursor become **per-device**
  series (uploads and span seconds per device) — the span stream is the
  one per-device signal the pipeline already emits, so no call site
  changes.

Every series lands in a fixed-capacity :class:`RingBuffer`, so a
long-running fleet holds a bounded window of history no matter how many
rounds it runs.  :class:`LiveSampler` wraps an aggregator in a daemon
thread for the ``repro top`` dashboard; tests drive
:meth:`StreamingAggregator.sample` directly with synthetic timestamps.
"""

from __future__ import annotations

# beeslint: disable-file=raw-timing (the live aggregator IS the obs-layer timing helper)

import threading
import time
from collections import deque

from ..errors import ObservabilityError
from .metrics import Counter, Gauge, HistogramSeries, bucket_quantile
from .runtime import Observability, get_obs

#: Default points of history per series (at the default 1 s cadence,
#: ten minutes — plenty for a dashboard, bounded for a long soak).
DEFAULT_CAPACITY = 600

#: Quantiles the windowed stage-latency series report.
STAGE_QUANTILES = (0.5, 0.95, 0.99)


class RingBuffer:
    """A bounded ``(timestamp, value)`` time series."""

    __slots__ = ("_points",)

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ObservabilityError(f"ring capacity must be >= 1, got {capacity}")
        self._points: "deque[tuple[float, float]]" = deque(maxlen=capacity)

    @property
    def capacity(self) -> int:
        return self._points.maxlen or 0

    def append(self, timestamp: float, value: float) -> None:
        self._points.append((timestamp, float(value)))

    def points(self) -> "list[tuple[float, float]]":
        """All retained ``(timestamp, value)`` points, oldest first."""
        return list(self._points)

    def values(self) -> "list[float]":
        return [value for _, value in self._points]

    def latest(self) -> "float | None":
        return self._points[-1][1] if self._points else None

    def window(self, seconds: float, now: "float | None" = None) -> "list[float]":
        """Values whose timestamps fall within the trailing window.

        ``now`` defaults to the newest retained timestamp, so a frozen
        series still reports its own tail deterministically.
        """
        if not self._points:
            return []
        horizon = (now if now is not None else self._points[-1][0]) - seconds
        return [value for ts, value in self._points if ts >= horizon]

    def mean(self, seconds: float, now: "float | None" = None) -> float:
        values = self.window(seconds, now)
        return sum(values) / len(values) if values else 0.0

    def __len__(self) -> int:
        return len(self._points)

    def __bool__(self) -> bool:
        return True


def series_key(name: str, labels: "dict | None" = None) -> str:
    """The canonical series id: ``name`` or ``name{k=v,...}`` sorted."""
    if not labels:
        return name
    body = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{body}}}"


class StreamingAggregator:
    """Turns the cumulative registry into windowed ring-buffer series.

    Call :meth:`sample` at a steady cadence (or let a
    :class:`LiveSampler` do it); each call differences the registry
    against the previous call and appends one point per derived series.
    Timestamps are caller-supplied, so tests can replay deterministic
    clocks.
    """

    def __init__(
        self,
        obs: "Observability | None" = None,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        self.obs = obs if obs is not None else get_obs()
        self.capacity = int(capacity)
        self.series: "dict[str, RingBuffer]" = {}
        self._lock = threading.Lock()
        self._last_time: "float | None" = None
        self._prev_counters: "dict[str, float]" = {}
        self._prev_histograms: "dict[str, HistogramSeries]" = {}
        self._span_cursor = 0

    # -- series access -------------------------------------------------------

    def _buffer(self, key: str) -> RingBuffer:
        buffer = self.series.get(key)
        if buffer is None:
            buffer = self.series[key] = RingBuffer(self.capacity)
        return buffer

    def get(self, name: str, **labels: object) -> "RingBuffer | None":
        """The ring buffer for one derived series, if it exists yet."""
        with self._lock:
            return self.series.get(series_key(name, dict(labels) or None))

    def latest(self) -> "dict[str, float]":
        """The newest value of every series (one locked snapshot)."""
        with self._lock:
            out = {}
            for key, buffer in self.series.items():
                value = buffer.latest()
                if value is not None:
                    out[key] = value
            return out

    def snapshot(self) -> "dict[str, list[tuple[float, float]]]":
        """Full retained history per series (for the HTML report)."""
        with self._lock:
            return {key: buffer.points() for key, buffer in self.series.items()}

    # -- sampling ------------------------------------------------------------

    def sample(self, now: "float | None" = None) -> "dict[str, float]":
        """Take one sample; returns the values appended this tick.

        The first call only establishes baselines for the differenced
        series (rates and windowed quantiles need a previous sample),
        so it reports gauges alone.
        """
        if now is None:
            now = time.monotonic()
        with self._lock:
            dt = None if self._last_time is None else now - self._last_time
            if dt is not None and dt < 0:
                raise ObservabilityError(
                    f"samples must move forward in time (dt={dt})"
                )
            if dt == 0:
                return {}  # same-instant tick: nothing to difference
            appended: "dict[str, float]" = {}
            self._sample_gauges(now, appended)
            self._sample_counters(now, dt, appended)
            self._sample_histograms(now, dt, appended)
            self._sample_device_spans(now, appended)
            self._last_time = now
            return appended

    def _append(self, key: str, now: float, value: float, out: dict) -> None:
        self._buffer(key).append(now, value)
        out[key] = value

    def _sample_gauges(self, now: float, out: dict) -> None:
        obs = self.obs
        self._append("queue_depth", now, _scalar(obs.fleet_queue_depth), out)
        for labels, value in obs.shard_entries.labeled_values():
            key = series_key("shard_entries", labels)
            self._append(key, now, float(value), out)

    def _sample_counters(self, now: float, dt: "float | None", out: dict) -> None:
        obs = self.obs
        rates = (
            ("goodput_bytes_per_s", obs.sent_bytes, ("scheme",)),
            ("joules_per_s", obs.energy_joules, ("scheme",)),
            ("uploads_per_s", obs.images, ("scheme",)),
        )
        for name, counter, keep in rates:
            totals: "dict[tuple, float]" = {}
            for labels, value in counter.labeled_values():
                if labels.get("outcome") not in (None, "uploaded"):
                    continue
                group = tuple((label, labels[label]) for label in keep)
                totals[group] = totals.get(group, 0.0) + float(value)
            for group, total in totals.items():
                key = series_key(name, dict(group))
                previous = self._prev_counters.get(key, 0.0)
                self._prev_counters[key] = total
                if dt is not None:
                    self._append(key, now, max(0.0, total - previous) / dt, out)
        # Cache hit rate: hits / lookups over the window (a ratio of two
        # counter deltas, so it reflects *recent* behaviour, not the
        # all-time average).
        hits = _scalar(obs.kernel_cache_events, event="hit")
        misses = _scalar(obs.kernel_cache_events, event="miss")
        previous_hits = self._prev_counters.get("cache_hits", 0.0)
        previous_misses = self._prev_counters.get("cache_misses", 0.0)
        self._prev_counters["cache_hits"] = hits
        self._prev_counters["cache_misses"] = misses
        if dt is not None:
            delta_hits = max(0.0, hits - previous_hits)
            delta_total = delta_hits + max(0.0, misses - previous_misses)
            if delta_total > 0:
                self._append("cache_hit_rate", now, delta_hits / delta_total, out)

    def _sample_histograms(self, now: float, dt: "float | None", out: dict) -> None:
        histogram = self.obs.stage_seconds
        buckets = histogram.buckets
        for labels, series in histogram.labeled_values():
            key = series_key("stage_seconds", labels)
            previous = self._prev_histograms.get(key)
            self._prev_histograms[key] = series
            if dt is None:
                continue
            if previous is None:
                previous = HistogramSeries(len(buckets))
            delta_counts = [
                current - before
                for current, before in zip(
                    series.bucket_counts, previous.bucket_counts
                )
            ]
            delta_n = series.count - previous.count
            if delta_n <= 0:
                continue
            for q in STAGE_QUANTILES:
                quantile_key = series_key(
                    f"stage_p{round(q * 100):d}", labels
                )
                value = bucket_quantile(buckets, delta_counts, delta_n, q)
                self._append(quantile_key, now, value, out)

    def _sample_device_spans(self, now: float, out: dict) -> None:
        tracer = self.obs.tracer
        spans = tracer.snapshot_finished()
        fresh, self._span_cursor = spans[self._span_cursor:], len(spans)
        uploads: "dict[str, float]" = {}
        seconds: "dict[str, float]" = {}
        for span in fresh:
            if span.name != "fleet.device":
                continue
            device = str(span.attributes.get("device", "?"))
            uploads[device] = uploads.get(device, 0.0) + float(
                span.attributes.get("n_uploaded", 0) or 0
            )
            seconds[device] = seconds.get(device, 0.0) + span.duration
        for device, count in uploads.items():
            key = series_key("device_uploads", {"device": device})
            self._append(key, now, count, out)
        for device, wall in seconds.items():
            key = series_key("device_seconds", {"device": device})
            self._append(key, now, wall, out)


def _scalar(metric: "Counter | Gauge", **labels: object) -> float:
    value = metric.value(**labels)
    return float(value) if not isinstance(value, HistogramSeries) else 0.0


class LiveSampler:
    """A daemon thread driving one aggregator at a fixed cadence."""

    def __init__(
        self,
        aggregator: "StreamingAggregator | None" = None,
        interval: float = 1.0,
    ) -> None:
        if interval <= 0:
            raise ObservabilityError(f"interval must be positive, got {interval}")
        self.aggregator = (
            aggregator if aggregator is not None else StreamingAggregator()
        )
        self.interval = float(interval)
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self._thread is not None:
            raise ObservabilityError("live sampler already started")
        self._stop.clear()
        self.aggregator.sample()  # baseline for the differenced series
        self._thread = threading.Thread(
            target=self._run, name="repro-live-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None

    def __enter__(self) -> "LiveSampler":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.stop()
        return False

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.aggregator.sample()
