"""The decision-provenance journal — a flight recorder for BEES runs.

Aggregate metrics say *how much* a run uploaded; spans say *how long*
stages took.  Neither says **why** image ``img-0042`` was eliminated.
The journal does: every decision site in the pipeline — CBRD verdicts,
AIU transmit/passthrough, EAAS policy evaluations, SSMM selections,
shard routing, DTN forwards and drops — appends one typed, structured
event to an append-only, schema-versioned JSONL file, and the
``repro journal`` CLI reconstructs causal chains (``explain``),
pinpoints the first divergent event between two runs (``diff``),
re-derives a :class:`~repro.fleet.report.FleetResult` from events alone
(``replay``, in :mod:`repro.fleet.replay`), and summarises per-device
health (``stats``).

Design rules the rest of the repo relies on:

* **Disabled by default, one attribute check on the hot path.**
  :func:`get_journal` returns a process-wide instance whose
  ``enabled`` flag gates every emission, exactly like
  :func:`repro.obs.runtime.get_obs`.
* **Records are deterministic.**  No wall-clock timestamps inside
  records; float payloads round-trip exactly through JSON (``repr``
  based), so replaying energy sums in round order is *byte*-identical
  to the live run.  The only nondeterministic event type is
  ``kernel.cache`` (the shared LRU races across device threads) and it
  is excluded from diffs (:data:`DIFF_IGNORED_EVENTS`).
* **One global monotonic sequence.**  ``seq`` increases under a lock,
  so any single device's events are strictly ordered even when many
  pool threads interleave (pinned by
  ``tests/obs/test_journal.py::test_concurrent_writers_keep_per_device_order``).
* **Torn tails are survivable.**  A crash mid-write leaves at most one
  partial final line; :func:`read_journal` skips it and reports it via
  :attr:`JournalFile.torn_tail` instead of failing the whole file.
"""

from __future__ import annotations

import contextlib
import json
import threading
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterator

from ..errors import ObservabilityError
from .runtime import get_obs

#: Journal file format version; bump on any incompatible record change.
SCHEMA_VERSION = 1

#: The event name of the first record in every journal file.
HEADER_EVENT = "journal.header"

#: Records buffered in memory before a write hits the file.
DEFAULT_FLUSH_EVERY = 256

#: Event types excluded from cross-run diffs: ``kernel.cache`` is
#: genuinely nondeterministic (the shared LRU races across device
#: threads and never changes a decision); ``index.route`` and the run
#: lifecycle events depend on the *configuration* (shard count, mode)
#: that an equivalence diff deliberately allows to differ.
DIFF_IGNORED_EVENTS = frozenset(
    {"kernel.cache", "index.route", "fleet.run.start", "fleet.run.end"}
)

#: A device whose total joules exceed the fleet median by this ratio is
#: flagged as a battery-drain outlier by :func:`journal_stats`.
STATS_ENERGY_OUTLIER_RATIO = 1.25

#: A device whose elimination rate strays this far (absolute) from the
#: fleet mean is flagged as drifting by :func:`journal_stats`.
STATS_DRIFT_TOLERANCE = 0.25


@dataclass(frozen=True)
class JournalRecord:
    """One decision event.

    ``seq`` is the run-global monotonic sequence number; ``device`` and
    ``image`` identify what the decision was about (either may be
    ``None`` — coordinator events carry no device); ``span`` is the
    enclosing tracer span id when observability is enabled.
    """

    seq: int
    event: str
    device: "str | None"
    image: "str | None"
    span: "int | None"
    data: "dict[str, object]"

    def to_json_dict(self) -> "dict[str, object]":
        return {
            "seq": self.seq,
            "event": self.event,
            "device": self.device,
            "image": self.image,
            "span": self.span,
            "data": self.data,
        }

    @classmethod
    def from_json_dict(cls, raw: "dict[str, object]") -> "JournalRecord":
        data = raw["data"]
        if not isinstance(data, dict):
            raise ObservabilityError("journal record 'data' must be an object")
        return cls(
            seq=_to_int(raw["seq"]),
            event=str(raw["event"]),
            device=None if raw.get("device") is None else str(raw["device"]),
            image=None if raw.get("image") is None else str(raw["image"]),
            span=None if raw.get("span") is None else _to_int(raw["span"]),
            data=data,
        )


def _to_int(value: object) -> int:
    """A strict JSON-value-to-int coercion (no silent float truncation)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ObservabilityError(f"expected an integer, got {value!r}")
    return value


def _to_float(value: object) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ObservabilityError(f"expected a number, got {value!r}")
    return float(value)


class _DeviceBinding(threading.local):
    """Thread-local device context (set by the fleet runner's jobs)."""

    device: "str | None" = None


class DecisionJournal:
    """A buffered, append-only JSONL writer of :class:`JournalRecord`.

    With ``path=None`` the journal records in memory only (``records``)
    — handy for tests and the live dashboard panel; with a path, records
    stream to disk through a bounded buffer flushed every
    ``flush_every`` events and on :meth:`flush`/:meth:`close`.
    """

    def __init__(
        self,
        path: "str | Path | None" = None,
        run_id: "str | None" = None,
        enabled: bool = True,
        flush_every: int = DEFAULT_FLUSH_EVERY,
    ) -> None:
        if flush_every < 1:
            raise ObservabilityError(
                f"flush_every must be >= 1, got {flush_every}"
            )
        self.enabled = enabled
        self.path: "Path | None" = None if path is None else Path(path)
        self.run_id = run_id or uuid.uuid4().hex[:12]
        self.flush_every = flush_every
        self.records: "list[JournalRecord]" = []
        self._lock = threading.Lock()
        self._seq = 0
        self._binding = _DeviceBinding()
        self._buffer: "list[str]" = []
        self._handle: "IO[str] | None" = None
        self._counts: "dict[str, int]" = {}
        self._device_counts: "dict[str, int]" = {}
        if self.enabled and self.path is not None:
            self._handle = self.path.open("w", encoding="utf-8")
            header: "dict[str, object]" = {
                "event": HEADER_EVENT,
                "schema": SCHEMA_VERSION,
                "run": self.run_id,
            }
            self._handle.write(json.dumps(header) + "\n")

    # -- context -------------------------------------------------------------

    @property
    def device(self) -> "str | None":
        """The device bound to the calling thread, if any."""
        return self._binding.device

    @contextlib.contextmanager
    def bind(self, device: "str | None") -> Iterator[None]:
        """Attribute every emission in the block to *device*.

        Thread-local, so concurrent fleet jobs binding different
        devices never see each other's context.  Cheap enough to use
        unconditionally (it works on a disabled journal too).
        """
        previous = self._binding.device
        self._binding.device = device
        try:
            yield
        finally:
            self._binding.device = previous

    # -- emission ------------------------------------------------------------

    def emit(
        self,
        event: str,
        image_id: "str | None" = None,
        **data: object,
    ) -> "JournalRecord | None":
        """Append one event; returns the record, or ``None`` if disabled.

        The enclosing tracer span id is captured automatically when
        observability is enabled, tying every decision back to the span
        tree it happened under.
        """
        if not self.enabled:
            return None
        obs = get_obs()
        span = obs.tracer.active if obs.enabled else None
        device = self._binding.device
        with self._lock:
            record = JournalRecord(
                seq=self._seq,
                event=event,
                device=device,
                image=image_id,
                span=None if span is None else span.span_id,
                data=data,
            )
            self._seq += 1
            self._counts[event] = self._counts.get(event, 0) + 1
            if device is not None:
                self._device_counts[device] = (
                    self._device_counts.get(device, 0) + 1
                )
            if self._handle is not None:
                self._buffer.append(json.dumps(record.to_json_dict()))
                if len(self._buffer) >= self.flush_every:
                    self._flush_locked()
            else:
                self.records.append(record)
        return record

    # -- lifecycle -----------------------------------------------------------

    def _flush_locked(self) -> None:
        if self._handle is not None and self._buffer:
            self._handle.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()

    def flush(self) -> None:
        """Write any buffered records through to the file."""
        with self._lock:
            self._flush_locked()
            if self._handle is not None:
                self._handle.flush()

    def close(self) -> None:
        """Flush and close the file; idempotent."""
        with self._lock:
            self._flush_locked()
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    # -- introspection (feeds the ``repro top`` journal panel) ---------------

    def snapshot(self) -> "dict[str, object]":
        """Live counters: total events, per-event and per-device counts."""
        with self._lock:
            return {
                "run": self.run_id,
                "path": None if self.path is None else str(self.path),
                "events": self._seq,
                "by_event": dict(self._counts),
                "by_device": dict(self._device_counts),
            }


#: The process-wide journal; disabled by default so every decision site
#: costs one attribute check.
_DISABLED = DecisionJournal(enabled=False)
_JOURNAL = _DISABLED


def get_journal() -> DecisionJournal:
    """The current global decision journal (disabled by default)."""
    return _JOURNAL


def set_journal(journal: DecisionJournal) -> DecisionJournal:
    """Install *journal* globally; returns the previous one."""
    global _JOURNAL
    previous = _JOURNAL
    _JOURNAL = journal
    return previous


def configure_journal(
    path: "str | Path | None" = None,
    run_id: "str | None" = None,
    flush_every: int = DEFAULT_FLUSH_EVERY,
) -> DecisionJournal:
    """Install (and return) a fresh enabled global journal."""
    journal = DecisionJournal(
        path=path, run_id=run_id, enabled=True, flush_every=flush_every
    )
    set_journal(journal)
    return journal


def disable_journal() -> DecisionJournal:
    """Close any active journal and restore the disabled default."""
    global _JOURNAL
    if _JOURNAL.enabled:
        _JOURNAL.close()
    _JOURNAL = _DISABLED
    return _JOURNAL


@contextlib.contextmanager
def journal_to(
    path: "str | Path",
    run_id: "str | None" = None,
) -> Iterator[DecisionJournal]:
    """Journal everything in the block to *path* (one file per run)."""
    journal = DecisionJournal(path=path, run_id=run_id, enabled=True)
    previous = set_journal(journal)
    try:
        yield journal
    finally:
        journal.close()
        set_journal(previous)


# -- reading -----------------------------------------------------------------


@dataclass(frozen=True)
class JournalFile:
    """A parsed journal: header + records (+ the torn tail, if any)."""

    path: str
    header: "dict[str, object]"
    records: "tuple[JournalRecord, ...]"
    #: The raw final line skipped by torn-tail recovery, or ``None``.
    torn_tail: "str | None" = None

    @property
    def run_id(self) -> str:
        return str(self.header.get("run", ""))

    def events(self, *names: str) -> "list[JournalRecord]":
        """Records whose event type is one of *names* (all if empty)."""
        if not names:
            return list(self.records)
        wanted = set(names)
        return [record for record in self.records if record.event in wanted]

    def by_device(self) -> "dict[str | None, list[JournalRecord]]":
        """Records grouped by device, per-device order preserved."""
        grouped: "dict[str | None, list[JournalRecord]]" = {}
        for record in self.records:
            grouped.setdefault(record.device, []).append(record)
        return grouped

    def for_image(self, image_id: str) -> "list[JournalRecord]":
        """Every record that mentions *image_id* (subject or payload)."""
        return [
            record
            for record in self.records
            if _mentions(record, image_id)
        ]


def _mentions(record: JournalRecord, image_id: str) -> bool:
    if record.image == image_id:
        return True
    for value in record.data.values():
        if value == image_id:
            return True
        if isinstance(value, list) and image_id in value:
            return True
    return False


def read_journal(path: "str | Path") -> JournalFile:
    """Parse a journal file, recovering from a torn final record.

    A record that fails to parse anywhere *except* the final line is a
    corruption error; a failing final line is the expected signature of
    a crash mid-write and is skipped (reported via ``torn_tail``).
    """
    text = Path(path).read_text(encoding="utf-8")
    lines = text.splitlines()
    if not lines:
        raise ObservabilityError(f"journal {path} is empty")
    header = _parse_header(path, lines[0])
    records: "list[JournalRecord]" = []
    torn_tail: "str | None" = None
    last = len(lines) - 1
    for number, line in enumerate(lines[1:], start=1):
        if not line.strip():
            continue
        try:
            records.append(JournalRecord.from_json_dict(json.loads(line)))
        except (ValueError, KeyError, TypeError, ObservabilityError) as exc:
            if number == last:
                torn_tail = line
                break
            raise ObservabilityError(
                f"journal {path} is corrupt at line {number + 1}: {exc}"
            ) from exc
    return JournalFile(
        path=str(path),
        header=header,
        records=tuple(records),
        torn_tail=torn_tail,
    )


def _parse_header(path: "str | Path", line: str) -> "dict[str, object]":
    try:
        header = json.loads(line)
    except ValueError as exc:
        raise ObservabilityError(
            f"journal {path} has an unreadable header: {exc}"
        ) from exc
    if not isinstance(header, dict) or header.get("event") != HEADER_EVENT:
        raise ObservabilityError(
            f"journal {path} does not start with a {HEADER_EVENT!r} record"
        )
    schema = header.get("schema")
    if not isinstance(schema, int) or schema > SCHEMA_VERSION:
        raise ObservabilityError(
            f"journal {path} has unsupported schema {schema!r} "
            f"(this build reads <= {SCHEMA_VERSION})"
        )
    return header


# -- diff --------------------------------------------------------------------


@dataclass(frozen=True)
class JournalDivergence:
    """The first decision event on which two runs disagree."""

    device: "str | None"
    #: Position within the device's (filtered) event stream.
    position: int
    left: "JournalRecord | None"
    right: "JournalRecord | None"

    def describe(self) -> str:
        device = self.device if self.device is not None else "<coordinator>"
        if self.left is None or self.right is None:
            present = self.left if self.left is not None else self.right
            side = "left" if self.left is not None else "right"
            assert present is not None
            return (
                f"device {device}, event #{self.position}: only the {side} "
                f"run has {present.event}"
                + (f" on {present.image}" if present.image else "")
                + f" {json.dumps(present.data, sort_keys=True)}"
            )
        subject = self.left.image or self.right.image or "<no image>"
        if self.left.event != self.right.event:
            return (
                f"device {device}, event #{self.position}: stage mismatch — "
                f"{self.left.event} (on {self.left.image}) vs "
                f"{self.right.event} (on {self.right.image})"
            )
        changed = sorted(
            set(self.left.data) | set(self.right.data),
        )
        fields = ", ".join(
            f"{key}: {self.left.data.get(key)!r} != {self.right.data.get(key)!r}"
            for key in changed
            if self.left.data.get(key) != self.right.data.get(key)
        )
        if self.left.image != self.right.image:
            fields = (
                f"image: {self.left.image!r} != {self.right.image!r}"
                + (f", {fields}" if fields else "")
            )
        return (
            f"device {device}, event #{self.position}: {self.left.event} on "
            f"{subject} diverges ({fields})"
        )


def _comparable_streams(
    journal: JournalFile, ignore: "frozenset[str]"
) -> "dict[str | None, list[JournalRecord]]":
    return {
        device: [record for record in stream if record.event not in ignore]
        for device, stream in journal.by_device().items()
    }


def first_divergence(
    left: JournalFile,
    right: JournalFile,
    ignore: "frozenset[str]" = DIFF_IGNORED_EVENTS,
) -> "JournalDivergence | None":
    """The first per-device event where two journals disagree.

    Comparison is per device stream (global interleaving legitimately
    differs between sequential and concurrent modes; each device's own
    order does not), on ``(event, image, data)`` — volatile fields
    (``seq``, ``span``) and :data:`DIFF_IGNORED_EVENTS` are excluded.
    Returns ``None`` when the journals are decision-identical.
    """
    left_streams = _comparable_streams(left, ignore)
    right_streams = _comparable_streams(right, ignore)
    devices = sorted(
        set(left_streams) | set(right_streams),
        key=lambda device: (device is not None, device or ""),
    )
    for device in devices:
        ours = left_streams.get(device, [])
        theirs = right_streams.get(device, [])
        for position, (a, b) in enumerate(zip(ours, theirs)):
            if (a.event, a.image, a.data) != (b.event, b.image, b.data):
                return JournalDivergence(
                    device=device, position=position, left=a, right=b
                )
        if len(ours) != len(theirs):
            position = min(len(ours), len(theirs))
            return JournalDivergence(
                device=device,
                position=position,
                left=ours[position] if position < len(ours) else None,
                right=theirs[position] if position < len(theirs) else None,
            )
    return None


# -- explain -----------------------------------------------------------------


def explain_image(journal: JournalFile, image_id: str) -> "list[JournalRecord]":
    """The causal chain of one image, in emission (seq) order.

    Includes events where the image is the subject *and* events whose
    payload references it (e.g. it was another image's best CBRD match,
    or it rode along in a DTN forward).
    """
    return journal.for_image(image_id)


def format_explain(journal: JournalFile, image_id: str) -> str:
    """Human-readable ``repro journal explain`` output."""
    chain = explain_image(journal, image_id)
    if not chain:
        return f"no journal events mention image {image_id!r}"
    lines = [
        f"image {image_id} — {len(chain)} event(s) in run {journal.run_id}:"
    ]
    for record in chain:
        device = record.device if record.device is not None else "-"
        role = "subject" if record.image == image_id else "referenced"
        lines.append(
            f"  #{record.seq:<6d} {device:<12s} {record.event:<16s} "
            f"[{role}] {json.dumps(record.data, sort_keys=True)}"
        )
    return "\n".join(lines)


# -- stats -------------------------------------------------------------------


@dataclass(frozen=True)
class DeviceStats:
    """Per-device health derived from ``fleet.batch`` events."""

    device: str
    events: int
    batches: int
    images: int
    uploaded: int
    eliminated_cross: int
    eliminated_in: int
    sent_bytes: int
    energy_joules: float
    halted: bool

    @property
    def elimination_rate(self) -> float:
        if self.images == 0:
            return 0.0
        return (self.eliminated_cross + self.eliminated_in) / self.images


@dataclass(frozen=True)
class JournalStats:
    """Fleet-level health summary of one journal."""

    run_id: str
    n_records: int
    torn: bool
    devices: "tuple[DeviceStats, ...]"
    #: Devices that halted (battery death) or uploaded nothing while
    #: the rest of the fleet did — the run's stragglers.
    stragglers: "tuple[str, ...]"
    #: Devices whose joules exceed the fleet median by
    #: :data:`STATS_ENERGY_OUTLIER_RATIO`.
    energy_outliers: "tuple[str, ...]"
    #: Devices whose elimination rate strays from the fleet mean by more
    #: than :data:`STATS_DRIFT_TOLERANCE` — drift against the paper's
    #: Fig. 6/12 expectation that rates track content, not devices.
    elimination_drift: "tuple[str, ...]"


@dataclass
class _DeviceAccumulator:
    batches: int = 0
    images: int = 0
    uploaded: int = 0
    cross: int = 0
    in_batch: int = 0
    sent_bytes: int = 0
    energy_joules: float = 0.0
    halted: bool = False

    def fold(self, data: "dict[str, object]") -> None:
        self.batches += 1
        self.images += _to_int(data.get("n_images", 0))
        self.uploaded += len(_as_list(data.get("uploaded")))
        self.cross += len(_as_list(data.get("eliminated_cross")))
        self.in_batch += len(_as_list(data.get("eliminated_in")))
        self.sent_bytes += _to_int(data.get("sent_bytes", 0))
        energy = data.get("energy")
        if isinstance(energy, dict):
            total = 0.0
            for joules in energy.values():
                total += _to_float(joules)
            self.energy_joules += total
        self.halted = self.halted or bool(data.get("halted"))


def journal_stats(journal: JournalFile) -> JournalStats:
    """Summarise per-device health from a journal's batch events."""
    per_device: "dict[str, _DeviceAccumulator]" = {}
    event_counts: "dict[str, int]" = {}
    for record in journal.records:
        if record.device is not None:
            event_counts[record.device] = (
                event_counts.get(record.device, 0) + 1
            )
    for record in journal.events("fleet.batch"):
        if record.device is None:
            continue
        per_device.setdefault(record.device, _DeviceAccumulator()).fold(
            record.data
        )
    devices = tuple(
        DeviceStats(
            device=device,
            events=event_counts.get(device, 0),
            batches=slot.batches,
            images=slot.images,
            uploaded=slot.uploaded,
            eliminated_cross=slot.cross,
            eliminated_in=slot.in_batch,
            sent_bytes=slot.sent_bytes,
            energy_joules=slot.energy_joules,
            halted=slot.halted,
        )
        for device, slot in sorted(per_device.items())
    )
    stragglers = tuple(
        stats.device
        for stats in devices
        if stats.halted
        or (stats.uploaded == 0 and any(d.uploaded for d in devices))
    )
    energies = sorted(stats.energy_joules for stats in devices)
    median = energies[len(energies) // 2] if energies else 0.0
    energy_outliers = tuple(
        stats.device
        for stats in devices
        if median > 0.0
        and stats.energy_joules > STATS_ENERGY_OUTLIER_RATIO * median
    )
    rates = [stats.elimination_rate for stats in devices]
    mean_rate = sum(rates) / len(rates) if rates else 0.0
    elimination_drift = tuple(
        stats.device
        for stats in devices
        if abs(stats.elimination_rate - mean_rate) > STATS_DRIFT_TOLERANCE
    )
    return JournalStats(
        run_id=journal.run_id,
        n_records=len(journal.records),
        torn=journal.torn_tail is not None,
        devices=devices,
        stragglers=stragglers,
        energy_outliers=energy_outliers,
        elimination_drift=elimination_drift,
    )


def _as_list(value: object) -> "list[object]":
    return value if isinstance(value, list) else []


def format_stats(stats: JournalStats) -> str:
    """Human-readable ``repro journal stats`` output."""
    lines = [
        f"run {stats.run_id}: {stats.n_records} record(s), "
        f"{len(stats.devices)} device(s)"
        + (" [torn tail skipped]" if stats.torn else "")
    ]
    if stats.devices:
        lines.append(
            f"  {'device':<12s} {'batches':>7s} {'images':>7s} "
            f"{'upload':>7s} {'elim':>6s} {'rate':>6s} {'bytes':>12s} "
            f"{'joules':>10s} halted"
        )
        for device in stats.devices:
            eliminated = device.eliminated_cross + device.eliminated_in
            lines.append(
                f"  {device.device:<12s} {device.batches:>7d} "
                f"{device.images:>7d} {device.uploaded:>7d} "
                f"{eliminated:>6d} {device.elimination_rate:>6.2f} "
                f"{device.sent_bytes:>12d} {device.energy_joules:>10.3f} "
                f"{'yes' if device.halted else 'no'}"
            )
    for label, names in (
        ("stragglers", stats.stragglers),
        ("battery-drain outliers", stats.energy_outliers),
        ("elimination-rate drift", stats.elimination_drift),
    ):
        lines.append(f"  {label}: {', '.join(names) if names else 'none'}")
    return "\n".join(lines)
