"""Declarative SLOs over bench artifacts and live telemetry.

An SLO spec is a JSON file (the committed one lives at
``slo/bees_slo.json``) declaring, per objective, **what to measure**
(the *indicator*) and **where it must stay** (the *objective*)::

    {
      "version": 1,
      "slos": [
        {
          "name": "image-upload-p99",
          "claim": "Figure 11: per-image upload delay",
          "indicator": {
            "source": "stage_quantile",
            "case": "fig11_delay",
            "series": "BEES/image_upload",
            "quantile": "p99"
          },
          "objective": {"max": 45.0}
        }
      ]
    }

Indicator sources against a ``BENCH_*.json`` artifact:

``stage_quantile``
    One quantile (``p50``/``p95``/``p99``; also ``mean``/``count``/
    ``sum``) of one ``stage_seconds`` series of one case.
``case_total``
    The sum of one case mapping (``bytes_sent``, ``energy_joules``,
    ``eliminations``) over keys matching an optional ``prefix``.
``ratio``
    A ``case_total`` divided by another (``numerator_prefix`` /
    ``denominator_prefix``) — the natural encoding of the paper's
    "BEES uses X% of Direct Upload's bandwidth/energy" claims.
``result_value``
    A ``path`` walked into the case's free-form ``result`` dict.
``wall_seconds``
    The case's wall time (advisory — machines differ).

Objectives are ``{"max": v}``, ``{"min": v}``, or both.  Evaluation
(:func:`evaluate_artifact`) never throws on a missing indicator: a
missing value *fails* the SLO with a diagnostic, because an SLO that
silently vanishes is how regressions ship.

**Live burn rate.**  For streaming series (:mod:`repro.obs.live`), a
``live`` block on an SLO turns the objective into an error budget::

    "live": {
      "series": "stage_p99{scheme=BEES,stage=image_upload}",
      "target": 0.99,
      "windows": [{"short_s": 30, "long_s": 300, "max_burn_rate": 2.0}]
    }

Each sample violating the objective consumes budget; the *burn rate* of
a window is ``error_fraction / (1 - target)`` (1.0 = exactly spending
the budget).  Following the multi-window pattern, a window pair only
fires when **both** its short and long windows exceed
``max_burn_rate`` — the long window keeps one transient spike from
paging, the short window ends the alert quickly once the problem
stops.
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import dataclass, field

from ..errors import ObservabilityError
from .live import StreamingAggregator

#: Bump when the spec layout changes incompatibly.
SPEC_VERSION = 1

_SOURCES = ("stage_quantile", "case_total", "ratio", "result_value", "wall_seconds")


@dataclass(frozen=True)
class BurnWindow:
    """One multi-window burn-rate alerting pair."""

    short_seconds: float
    long_seconds: float
    max_burn_rate: float

    def __post_init__(self) -> None:
        if not 0 < self.short_seconds <= self.long_seconds:
            raise ObservabilityError(
                f"burn window needs 0 < short_s <= long_s, "
                f"got {self.short_seconds}/{self.long_seconds}"
            )
        if self.max_burn_rate <= 0:
            raise ObservabilityError(
                f"max_burn_rate must be positive, got {self.max_burn_rate}"
            )


@dataclass(frozen=True)
class LiveBinding:
    """How one SLO reads the streaming aggregator."""

    series: str
    target: float
    windows: "tuple[BurnWindow, ...]"

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ObservabilityError(
                f"live target must be in (0, 1), got {self.target}"
            )
        if not self.windows:
            raise ObservabilityError("live SLO needs at least one burn window")


@dataclass(frozen=True)
class Slo:
    """One declared objective."""

    name: str
    indicator: dict
    maximum: "float | None" = None
    minimum: "float | None" = None
    claim: str = ""
    description: str = ""
    live: "LiveBinding | None" = None

    def within(self, value: float) -> bool:
        """Whether *value* satisfies the objective."""
        if math.isnan(value):
            return False
        if self.maximum is not None and value > self.maximum:
            return False
        if self.minimum is not None and value < self.minimum:
            return False
        return True

    def objective_text(self) -> str:
        parts = []
        if self.minimum is not None:
            parts.append(f">= {self.minimum:g}")
        if self.maximum is not None:
            parts.append(f"<= {self.maximum:g}")
        return " and ".join(parts) if parts else "(unbounded)"


@dataclass(frozen=True)
class SloSpec:
    """A parsed, validated SLO spec file."""

    slos: "tuple[Slo, ...]"
    source: "str | None" = None

    def __iter__(self):
        return iter(self.slos)

    def __len__(self) -> int:
        return len(self.slos)


@dataclass
class SloResult:
    """One SLO's verdict against one artifact or live window."""

    slo: Slo
    value: float
    ok: bool
    detail: str = ""
    burn_rates: "list[dict]" = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.slo.name


# -- spec loading --------------------------------------------------------------


def _parse_slo(index: int, raw: object) -> Slo:
    where = f"slos[{index}]"
    if not isinstance(raw, dict):
        raise ObservabilityError(f"{where} must be an object")
    name = raw.get("name")
    if not isinstance(name, str) or not name:
        raise ObservabilityError(f"{where} needs a non-empty 'name'")
    indicator = raw.get("indicator")
    if indicator is None and isinstance(raw.get("live"), dict):
        indicator = {}  # live-only SLO: no artifact indicator to check
    if not isinstance(indicator, dict):
        raise ObservabilityError(f"{where}: 'indicator' must be an object")
    if indicator:
        source = indicator.get("source")
        if source not in _SOURCES:
            raise ObservabilityError(
                f"{where}: indicator source must be one of {_SOURCES}, "
                f"got {source!r}"
            )
    objective = raw.get("objective")
    if not isinstance(objective, dict) or not (
        "max" in objective or "min" in objective
    ):
        raise ObservabilityError(
            f"{where}: 'objective' must declare 'max' and/or 'min'"
        )
    for bound in ("max", "min"):
        if bound in objective and not isinstance(objective[bound], (int, float)):
            raise ObservabilityError(f"{where}: objective.{bound} must be a number")
    live = None
    if "live" in raw:
        block = raw["live"]
        if not isinstance(block, dict):
            raise ObservabilityError(f"{where}: 'live' must be an object")
        series = block.get("series")
        if not isinstance(series, str) or not series:
            raise ObservabilityError(f"{where}: live.series must name a series")
        windows = tuple(
            BurnWindow(
                short_seconds=float(window.get("short_s", 0)),
                long_seconds=float(window.get("long_s", 0)),
                max_burn_rate=float(window.get("max_burn_rate", 0)),
            )
            for window in block.get("windows", [])
        )
        live = LiveBinding(
            series=series,
            target=float(block.get("target", 0.99)),
            windows=windows,
        )
    return Slo(
        name=name,
        indicator=dict(indicator),
        maximum=float(objective["max"]) if "max" in objective else None,
        minimum=float(objective["min"]) if "min" in objective else None,
        claim=str(raw.get("claim", "")),
        description=str(raw.get("description", "")),
        live=live,
    )


def parse_spec(data: object, source: "str | None" = None) -> SloSpec:
    """Validate a decoded spec object into an :class:`SloSpec`."""
    if not isinstance(data, dict):
        raise ObservabilityError("SLO spec must be a JSON object")
    version = data.get("version")
    if version != SPEC_VERSION:
        raise ObservabilityError(
            f"unsupported SLO spec version {version!r} "
            f"(this build reads version {SPEC_VERSION})"
        )
    raw_slos = data.get("slos")
    if not isinstance(raw_slos, list) or not raw_slos:
        raise ObservabilityError("SLO spec needs a non-empty 'slos' list")
    slos = tuple(_parse_slo(i, raw) for i, raw in enumerate(raw_slos))
    names = [slo.name for slo in slos]
    if len(set(names)) != len(names):
        duplicate = next(n for n in names if names.count(n) > 1)
        raise ObservabilityError(f"duplicate SLO name {duplicate!r}")
    return SloSpec(slos=slos, source=source)


def load_spec(path) -> SloSpec:
    """Read and validate one spec file."""
    path = pathlib.Path(path)
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        raise ObservabilityError(f"no such SLO spec: {path}") from None
    except json.JSONDecodeError as exc:
        raise ObservabilityError(f"{path} is not valid JSON: {exc}") from None
    return parse_spec(data, source=str(path))


# -- artifact evaluation -------------------------------------------------------


def _case(artifact: dict, indicator: dict) -> "dict | None":
    case_id = indicator.get("case")
    cases = artifact.get("cases", {})
    case = cases.get(case_id)
    return case if isinstance(case, dict) else None


def _mapping_total(case: dict, fieldname: str, prefix: str) -> "float | None":
    mapping = case.get(fieldname)
    if not isinstance(mapping, dict):
        return None
    values = [
        float(value)
        for key, value in mapping.items()
        if key.startswith(prefix) and isinstance(value, (int, float))
    ]
    return sum(values) if values else None


def _indicator_value(artifact: dict, indicator: dict) -> "tuple[float | None, str]":
    """``(value, detail)`` — value ``None`` when the indicator is absent."""
    source = indicator["source"]
    case = _case(artifact, indicator)
    if case is None:
        return None, f"case {indicator.get('case')!r} not in artifact"
    if source == "stage_quantile":
        series = case.get("stage_seconds", {}).get(indicator.get("series"))
        if not isinstance(series, dict):
            return None, f"stage series {indicator.get('series')!r} not recorded"
        quantile = indicator.get("quantile", "p99")
        value = series.get(quantile)
        if not isinstance(value, (int, float)):
            return None, f"stage summary has no {quantile!r}"
        return float(value), f"{indicator['series']} {quantile}"
    if source == "case_total":
        fieldname = str(indicator.get("field", "bytes_sent"))
        prefix = str(indicator.get("prefix", ""))
        total = _mapping_total(case, fieldname, prefix)
        if total is None:
            return None, f"no {fieldname!r} keys match prefix {prefix!r}"
        return total, f"sum({fieldname}[{prefix}*])"
    if source == "ratio":
        fieldname = str(indicator.get("field", "bytes_sent"))
        numerator = _mapping_total(
            case, fieldname, str(indicator.get("numerator_prefix", ""))
        )
        denominator = _mapping_total(
            case, fieldname, str(indicator.get("denominator_prefix", ""))
        )
        if numerator is None or denominator is None or denominator == 0:
            return None, f"ratio over {fieldname!r} is undefined"
        return (
            numerator / denominator,
            f"{indicator.get('numerator_prefix')}/"
            f"{indicator.get('denominator_prefix')} over {fieldname}",
        )
    if source == "result_value":
        node: object = case.get("result")
        path = indicator.get("path", [])
        for step in path:
            if not isinstance(node, dict) or step not in node:
                return None, f"result path {path!r} broken at {step!r}"
            node = node[step]
        if not isinstance(node, (int, float)):
            return None, f"result path {path!r} is not a number"
        return float(node), "result." + ".".join(str(s) for s in path)
    if source == "wall_seconds":
        value = case.get("wall_seconds")
        if not isinstance(value, (int, float)):
            return None, "case has no wall_seconds"
        return float(value), "wall_seconds"
    return None, f"unknown source {source!r}"  # unreachable after parse


def evaluate_artifact(spec: SloSpec, artifact: dict) -> "list[SloResult]":
    """Check every SLO in *spec* against one bench artifact.

    A missing indicator **fails** its SLO (with the reason in
    ``detail``) rather than being skipped — silence must never look
    like compliance.
    """
    results = []
    for slo in spec:
        if not slo.indicator:
            continue  # live-only SLO: nothing to read from an artifact
        value, detail = _indicator_value(artifact, slo.indicator)
        if value is None:
            results.append(
                SloResult(slo=slo, value=math.nan, ok=False, detail=detail)
            )
            continue
        results.append(
            SloResult(slo=slo, value=value, ok=slo.within(value), detail=detail)
        )
    return results


# -- live burn-rate evaluation -------------------------------------------------


def burn_rate(values: "list[float]", slo: Slo) -> float:
    """The budget burn rate of one window of samples.

    ``error_fraction / (1 - target)`` with the error fraction measured
    against the SLO's own min/max objective; an empty window burns
    nothing.
    """
    assert slo.live is not None
    if not values:
        return 0.0
    errors = sum(1 for value in values if not slo.within(value))
    error_fraction = errors / len(values)
    return error_fraction / (1.0 - slo.live.target)


def evaluate_live(
    spec: SloSpec,
    aggregator: StreamingAggregator,
    now: "float | None" = None,
) -> "list[SloResult]":
    """Multi-window burn-rate check of every live-bound SLO.

    SLOs without a ``live`` block are skipped (they are artifact-only).
    A window pair violates only when **both** its short and long burn
    rates exceed the pair's ``max_burn_rate``; the SLO fails when any
    pair violates.  A series with no samples yet passes trivially (no
    traffic, no burn).
    """
    results = []
    snapshot = aggregator.snapshot()
    for slo in spec:
        if slo.live is None:
            continue
        points = snapshot.get(slo.live.series, [])
        buffer_now = now if now is not None else (points[-1][0] if points else 0.0)
        latest = points[-1][1] if points else math.nan
        rates = []
        violated = False
        for window in slo.live.windows:
            short_values = [
                v for t, v in points if t >= buffer_now - window.short_seconds
            ]
            long_values = [
                v for t, v in points if t >= buffer_now - window.long_seconds
            ]
            short_burn = burn_rate(short_values, slo)
            long_burn = burn_rate(long_values, slo)
            fired = (
                short_burn > window.max_burn_rate
                and long_burn > window.max_burn_rate
            )
            violated = violated or fired
            rates.append(
                {
                    "short_s": window.short_seconds,
                    "long_s": window.long_seconds,
                    "short_burn": short_burn,
                    "long_burn": long_burn,
                    "max_burn_rate": window.max_burn_rate,
                    "fired": fired,
                }
            )
        results.append(
            SloResult(
                slo=slo,
                value=latest,
                ok=not violated,
                detail=f"series {slo.live.series}",
                burn_rates=rates,
            )
        )
    return results


# -- reporting -----------------------------------------------------------------


def format_results(results: "list[SloResult]") -> str:
    """A console table over SLO verdicts (artifact or live)."""
    from ..analysis.reporting import format_table

    rows = []
    for result in results:
        value = "n/a" if math.isnan(result.value) else f"{result.value:.4g}"
        rows.append(
            [
                "PASS" if result.ok else "FAIL",
                result.name,
                value,
                result.slo.objective_text(),
                result.slo.claim or result.detail,
            ]
        )
    if not rows:
        return "(no SLOs evaluated)"
    return format_table(["status", "slo", "value", "objective", "claim"], rows)
