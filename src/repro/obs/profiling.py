"""A low-overhead sampling profiler attributing time to BEES spans.

:class:`SamplingProfiler` runs one daemon thread that wakes at a
configurable rate (default ~97 Hz — deliberately not a round divisor of
common timer frequencies, so periodic work doesn't alias with the
sampling grid), snapshots every live thread's Python stack via
:func:`sys._current_frames`, and prefixes each stack with the span path
the sampled thread is inside (read from the tracer's shared
ident→stack table, see :meth:`repro.obs.tracer.Tracer.active_path_of`).
Samples aggregate into **folded-stack** lines::

    fleet.run;fleet.round;fleet.device;bees.afe;orb.py:extract 42

which is exactly the format flamegraph tools (``flamegraph.pl``,
speedscope, inferno) consume, and which makes "where do the cycles go,
per BEES stage?" a one-liner: fold on the ``bees.*`` frame.

Overhead: one ``sys._current_frames()`` call plus a few dict updates
per tick.  At the default rate this stays well under the 5% wall-time
budget the kernel micro-benchmarks assert (``benchmarks/bench_kernels``
measures it on every run).

Typical use (also behind ``repro fleet run --profile`` and ``repro
bench run --profile``)::

    profiler = SamplingProfiler(tracer=get_obs().tracer)
    with profiler:
        run_the_workload()
    pathlib.Path("profile.folded").write_text(profiler.folded())
"""

from __future__ import annotations

# beeslint: disable-file=raw-timing (the profiler IS the obs-layer timing helper)

import sys
import threading
import time
from dataclasses import dataclass

from ..errors import ObservabilityError
from .tracer import Tracer

#: Default sampling rate (Hz).  A prime-ish, non-round rate avoids
#: phase-locking with timers and batch loops.
DEFAULT_HZ = 97.0

#: Hard ceiling on recorded stack depth; deeper frames are truncated
#: from the root end (the leaf is what a flamegraph reads first).
MAX_STACK_DEPTH = 64

#: The marker frame used when a sampled thread has no open span.
NO_SPAN = "(no-span)"

#: Sentinel ``tracer`` argument: resolve :func:`repro.obs.get_obs`'s
#: tracer on every tick.  This is what the CLI uses — ``repro bench
#: run`` installs a *fresh* observability context per case, and a
#: profiler pinned to one tracer would go stale at the first case
#: boundary.
GLOBAL_TRACER = "global"


def _frame_label(frame) -> str:
    """``filename.py:function`` for one Python frame."""
    code = frame.f_code
    filename = code.co_filename.replace("\\", "/").rsplit("/", 1)[-1]
    return f"{filename}:{code.co_name}"


@dataclass(frozen=True)
class ProfileStats:
    """Headline numbers of one profiling session."""

    n_samples: int
    n_ticks: int
    wall_seconds: float
    hz: float

    @property
    def effective_hz(self) -> float:
        """Achieved tick rate (ticks per wall second)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.n_ticks / self.wall_seconds


class SamplingProfiler:
    """Periodic whole-process stack sampler with span attribution.

    Parameters
    ----------
    tracer:
        The tracer whose active-span table prefixes each sample.  When
        ``None``, samples carry only Python frames (still valid folded
        output, just without stage attribution); the
        :data:`GLOBAL_TRACER` sentinel re-resolves the process-wide
        tracer on every tick (robust across re-``configure()``).
    hz:
        Target sampling rate.  Must be positive; rates above ~1000 Hz
        buy noise, not resolution, and are rejected.
    include_sampler:
        Also record the profiler's own thread (off by default — its
        stack is pure overhead and pollutes flamegraphs).
    """

    def __init__(
        self,
        tracer: "Tracer | str | None" = None,
        hz: float = DEFAULT_HZ,
        include_sampler: bool = False,
    ) -> None:
        if not 0.0 < hz <= 1000.0:
            raise ObservabilityError(f"sampling rate must be in (0, 1000] Hz, got {hz}")
        self.tracer = tracer
        self.hz = float(hz)
        self.include_sampler = include_sampler
        self._interval = 1.0 / self.hz
        self._counts: "dict[tuple[str, ...], int]" = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None
        self._started_at = 0.0
        self._wall_seconds = 0.0
        self._n_ticks = 0
        self._n_samples = 0

    # -- lifecycle -----------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Start the sampling thread (idempotence is an error)."""
        if self._thread is not None:
            raise ObservabilityError("profiler already started")
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> ProfileStats:
        """Stop sampling and return the session's headline stats."""
        if self._thread is None:
            raise ObservabilityError("profiler was never started")
        self._stop.set()
        self._thread.join()
        self._thread = None
        self._wall_seconds += time.perf_counter() - self._started_at
        return self.stats()

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.stop()
        return False

    # -- the sampling loop ---------------------------------------------------

    def _run(self) -> None:
        own_ident = threading.get_ident()
        while not self._stop.wait(self._interval):
            self._sample_once(own_ident)

    def _resolve_tracer(self) -> "Tracer | None":
        if self.tracer == GLOBAL_TRACER:
            from .runtime import get_obs  # lazy: avoids an import cycle

            obs = get_obs()
            return obs.tracer if obs.enabled else None
        return self.tracer  # type: ignore[return-value]

    def _sample_once(self, skip_ident: "int | None") -> None:
        """Take one sample of every live thread (one tick)."""
        tracer = self._resolve_tracer()
        ticked = False
        # ``sys._current_frames()`` must stay an anonymous temporary.
        # Binding the frames dict to a local extends the materialised
        # frame objects' lifetime past the tick, and the *sampled*
        # threads then pay CPython's escaped-frame slow path on every
        # return: measured ~15-20% workload overhead on one CPU, vs
        # <1% for this form (bench_kernels' overhead gate watches it).
        for ident, frame in sys._current_frames().items():
            if ident == skip_ident and not self.include_sampler:
                continue
            stack = []
            current = frame
            while current is not None and len(stack) < MAX_STACK_DEPTH:
                stack.append(_frame_label(current))
                current = current.f_back
            stack.reverse()
            if tracer is not None:
                span_path = tracer.active_path_of(ident)
            else:
                span_path = ()
            key = (span_path or (NO_SPAN,)) + tuple(stack)
            with self._lock:
                self._counts[key] = self._counts.get(key, 0) + 1
                self._n_samples += 1
            ticked = True
        if ticked:
            with self._lock:
                self._n_ticks += 1

    def sample_now(self) -> None:
        """Take one synchronous sample from the calling thread.

        Deterministic hook for tests; the calling thread itself is
        skipped (its stack would just be this method).
        """
        self._sample_once(threading.get_ident())

    # -- results -------------------------------------------------------------

    def stats(self) -> ProfileStats:
        wall = self._wall_seconds
        if self._thread is not None:
            wall += time.perf_counter() - self._started_at
        with self._lock:
            return ProfileStats(
                n_samples=self._n_samples,
                n_ticks=self._n_ticks,
                wall_seconds=wall,
                hz=self.hz,
            )

    def stack_counts(self) -> "dict[tuple[str, ...], int]":
        """A copy of the aggregated ``stack -> sample count`` table."""
        with self._lock:
            return dict(self._counts)

    def samples_by_span(self, prefix: str = "") -> "dict[str, int]":
        """Sample counts keyed by the innermost matching span frame.

        With the default empty *prefix* every span frame qualifies and
        the key is the innermost span of each sample; with e.g.
        ``prefix="bees."`` the counts attribute to BEES pipeline stages
        (``bees.afe``, ``bees.cbrd``, ...).  Samples with no matching
        span land under :data:`NO_SPAN`.
        """
        counts: "dict[str, int]" = {}
        for key, count in self.stack_counts().items():
            chosen = NO_SPAN
            for segment in key:
                # Span frames come first in the key; Python frames all
                # contain ":" from _frame_label, span names never do.
                if ":" in segment:
                    break
                if segment.startswith(prefix):
                    chosen = segment
            counts[chosen] = counts.get(chosen, 0) + count
        return counts

    def folded(self) -> str:
        """The folded-stack text: ``frame;frame;... count`` per line.

        Lines sort by descending count then lexically, so the hottest
        stacks lead and the output is deterministic for a given table.
        """
        rows = sorted(
            self.stack_counts().items(), key=lambda item: (-item[1], item[0])
        )
        return "".join(f"{';'.join(key)} {count}\n" for key, count in rows)

    def write_folded(self, path) -> int:
        """Write :meth:`folded` to *path*; returns the line count."""
        import pathlib

        text = self.folded()
        pathlib.Path(path).write_text(text)
        return text.count("\n")

    def reset(self) -> None:
        """Drop all accumulated samples and counters."""
        with self._lock:
            self._counts.clear()
            self._n_samples = 0
            self._n_ticks = 0
        self._wall_seconds = 0.0
        if self._thread is not None:
            self._started_at = time.perf_counter()


def parse_folded(text: str) -> "dict[tuple[str, ...], int]":
    """Read folded-stack text back into a ``stack -> count`` table.

    The inverse of :meth:`SamplingProfiler.folded`; used by tests and
    by tooling that post-processes committed profile artifacts.
    """
    counts: "dict[tuple[str, ...], int]" = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        stack_text, _, count_text = line.rpartition(" ")
        if not stack_text:
            raise ObservabilityError(f"folded line {lineno}: missing sample count")
        try:
            count = int(count_text)
        except ValueError:
            raise ObservabilityError(
                f"folded line {lineno}: bad sample count {count_text!r}"
            ) from None
        key = tuple(stack_text.split(";"))
        counts[key] = counts.get(key, 0) + count
    return counts
