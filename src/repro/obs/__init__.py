"""Observability for the BEES pipeline: spans, metrics, exporters.

The paper's whole argument is quantitative — bandwidth, energy,
precision, delay per AFE → ARD → AIU stage — so this package gives
every layer of the reproduction a shared tracing and metrics substrate:

* :mod:`repro.obs.tracer` — nested, timed spans with attributes;
* :mod:`repro.obs.metrics` — labelled ``Counter`` / ``Gauge`` /
  ``Histogram`` behind a :class:`MetricsRegistry`;
* :mod:`repro.obs.exporters` — JSONL span logs, Prometheus text
  exposition, console tables;
* :mod:`repro.obs.runtime` — the process-wide context wired into the
  client pipeline, server index, uplink, DTN, and every baseline;
* :mod:`repro.obs.profiling` — a sampling profiler that attributes
  wall time to BEES stage spans and emits folded stacks;
* :mod:`repro.obs.live` — ring-buffer time series derived from the
  registry (rates, windowed quantiles, per-device span feeds);
* :mod:`repro.obs.slo` — declarative SLO specs with artifact checks
  and multi-window burn-rate evaluation;
* :mod:`repro.obs.dashboard` — the ``repro top`` terminal frames and
  the self-contained HTML snapshot report.

Disabled by default: :func:`get_obs` returns a context whose spans are
a shared no-op and whose hot-path guards are a single attribute check.
"""

from .dashboard import render_frame, render_html
from .exporters import (
    console_summary,
    generate_latest,
    parse_prometheus,
    read_jsonl,
    render_metrics_file,
    spans_to_jsonl,
    write_jsonl,
    write_prometheus,
)
from .journal import (
    DIFF_IGNORED_EVENTS,
    SCHEMA_VERSION,
    DecisionJournal,
    DeviceStats,
    JournalDivergence,
    JournalFile,
    JournalRecord,
    JournalStats,
    configure_journal,
    disable_journal,
    explain_image,
    first_divergence,
    format_explain,
    format_stats,
    get_journal,
    journal_stats,
    journal_to,
    read_journal,
    set_journal,
)
from .live import LiveSampler, RingBuffer, StreamingAggregator, series_key
from .metrics import (
    DEFAULT_STAGE_BUCKETS,
    MAX_LABEL_SETS,
    CardinalityWarning,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_quantile,
)
from .profiling import ProfileStats, SamplingProfiler, parse_folded
from .runtime import (
    PIPELINE_STAGES,
    Observability,
    configure,
    disable,
    get_obs,
)
from .slo import (
    BurnWindow,
    Slo,
    SloResult,
    SloSpec,
    burn_rate,
    evaluate_artifact,
    evaluate_live,
    format_results,
    load_spec,
    parse_spec,
)
from .tracer import EMPTY_CONTEXT, NULL_SPAN, Span, TraceContext, Tracer

__all__ = [
    "DIFF_IGNORED_EVENTS",
    "EMPTY_CONTEXT",
    "NULL_SPAN",
    "DEFAULT_STAGE_BUCKETS",
    "MAX_LABEL_SETS",
    "PIPELINE_STAGES",
    "SCHEMA_VERSION",
    "BurnWindow",
    "CardinalityWarning",
    "Counter",
    "DecisionJournal",
    "DeviceStats",
    "Gauge",
    "Histogram",
    "JournalDivergence",
    "JournalFile",
    "JournalRecord",
    "JournalStats",
    "LiveSampler",
    "MetricsRegistry",
    "Observability",
    "ProfileStats",
    "RingBuffer",
    "SamplingProfiler",
    "Slo",
    "SloResult",
    "SloSpec",
    "Span",
    "StreamingAggregator",
    "TraceContext",
    "Tracer",
    "bucket_quantile",
    "configure_journal",
    "disable_journal",
    "explain_image",
    "first_divergence",
    "format_explain",
    "format_stats",
    "get_journal",
    "journal_stats",
    "journal_to",
    "read_journal",
    "set_journal",
    "burn_rate",
    "configure",
    "console_summary",
    "disable",
    "evaluate_artifact",
    "evaluate_live",
    "format_results",
    "generate_latest",
    "get_obs",
    "load_spec",
    "parse_folded",
    "parse_prometheus",
    "parse_spec",
    "read_jsonl",
    "render_frame",
    "render_html",
    "render_metrics_file",
    "series_key",
    "spans_to_jsonl",
    "write_jsonl",
    "write_prometheus",
]
