"""Observability for the BEES pipeline: spans, metrics, exporters.

The paper's whole argument is quantitative — bandwidth, energy,
precision, delay per AFE → ARD → AIU stage — so this package gives
every layer of the reproduction a shared tracing and metrics substrate:

* :mod:`repro.obs.tracer` — nested, timed spans with attributes;
* :mod:`repro.obs.metrics` — labelled ``Counter`` / ``Gauge`` /
  ``Histogram`` behind a :class:`MetricsRegistry`;
* :mod:`repro.obs.exporters` — JSONL span logs, Prometheus text
  exposition, console tables;
* :mod:`repro.obs.runtime` — the process-wide context wired into the
  client pipeline, server index, uplink, DTN, and every baseline.

Disabled by default: :func:`get_obs` returns a context whose spans are
a shared no-op and whose hot-path guards are a single attribute check.
"""

from .exporters import (
    console_summary,
    generate_latest,
    parse_prometheus,
    read_jsonl,
    render_metrics_file,
    spans_to_jsonl,
    write_jsonl,
    write_prometheus,
)
from .metrics import (
    DEFAULT_STAGE_BUCKETS,
    MAX_LABEL_SETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .runtime import (
    PIPELINE_STAGES,
    Observability,
    configure,
    disable,
    get_obs,
)
from .tracer import NULL_SPAN, Span, Tracer

__all__ = [
    "NULL_SPAN",
    "DEFAULT_STAGE_BUCKETS",
    "MAX_LABEL_SETS",
    "PIPELINE_STAGES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "Span",
    "Tracer",
    "configure",
    "console_summary",
    "disable",
    "generate_latest",
    "get_obs",
    "parse_prometheus",
    "read_jsonl",
    "render_metrics_file",
    "spans_to_jsonl",
    "write_jsonl",
    "write_prometheus",
]
