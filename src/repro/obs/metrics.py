"""Labeled metrics: counters, gauges, and histograms.

A deliberately small, dependency-free subset of the Prometheus data
model.  Metrics are created through a :class:`MetricsRegistry` (which
deduplicates by name and checks for conflicting re-registration), carry
a fixed tuple of label names, and are updated with label values passed
as keyword arguments::

    registry = MetricsRegistry()
    bytes_sent = registry.counter(
        "bees_bytes_sent_total", "Bytes pushed through the uplink", ("scheme",)
    )
    bytes_sent.inc(1024, scheme="BEES")

Histogram buckets follow Prometheus semantics: ``le`` is inclusive and
cumulative, and every histogram implicitly ends with ``+Inf``.

Updates are **thread-safe**: every metric guards its read-modify-write
cycle with a per-metric lock, so concurrent fleet devices can increment
the same counter without losing updates.
"""

from __future__ import annotations

import math
import threading
import warnings

from ..errors import ObservabilityError

#: Upper bound on distinct label-value sets per metric.  Unbounded label
#: values (image ids!) silently turn a metric into a memory leak; the
#: cap keeps memory bounded at fleet scale: updates to *new* label sets
#: beyond it are dropped (and counted on ``Metric.dropped_updates``)
#: with one loud :class:`CardinalityWarning` per metric, while existing
#: series keep recording normally.
MAX_LABEL_SETS = 1024


class CardinalityWarning(UserWarning):
    """A metric hit its label-cardinality cap and started dropping."""

#: Default buckets for pipeline-stage durations (simulated seconds).
DEFAULT_STAGE_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class Metric:
    """Shared labeled-series bookkeeping for all metric types."""

    type_name = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: "tuple[str, ...]" = (),
        max_label_sets: int = MAX_LABEL_SETS,
    ):
        if not name or not name.replace("_", "").replace(":", "").isalnum():
            raise ObservabilityError(f"invalid metric name: {name!r}")
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self.max_label_sets = int(max_label_sets)
        #: Updates dropped by the cardinality guard (diagnostics).
        self.dropped_updates = 0
        self._warned_cardinality = False
        self._series: dict = {}
        self._lock = threading.Lock()

    def _validate(self, labels: dict) -> tuple:
        if tuple(sorted(labels)) != tuple(sorted(self.labelnames)):
            raise ObservabilityError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _key_locked(self, labels: dict) -> "tuple | None":
        """The series key for *labels*, or ``None`` when the update must
        be dropped: the key is new and the metric already holds
        ``max_label_sets`` series (the cardinality guard).

        Callers on the write path hold ``self._lock``; the first drop
        per metric warns loudly, every drop counts on
        ``dropped_updates``, and existing series are never affected.
        """
        key = self._validate(labels)
        if key not in self._series and len(self._series) >= self.max_label_sets:
            self.dropped_updates += 1
            if not self._warned_cardinality:
                self._warned_cardinality = True
                warnings.warn(
                    f"{self.name}: label cardinality reached "
                    f"{self.max_label_sets} series; dropping updates to new "
                    f"label sets (first offender: {dict(labels)!r}) — use "
                    "bounded label values (scheme, stage, shard), never "
                    "per-image or unbounded per-device ids",
                    CardinalityWarning,
                    stacklevel=4,
                )
            return None
        return key

    def labeled_values(self) -> "list[tuple[dict, object]]":
        """``(labels, value)`` per series, in insertion order.

        Taken as one locked snapshot, so exporters iterating the result
        never race concurrent writers; histogram values are copies (see
        :meth:`HistogramSeries.copy`) for the same reason.
        """
        with self._lock:
            items = [
                (key, value.copy() if isinstance(value, HistogramSeries) else value)
                for key, value in self._series.items()
            ]
        return [(dict(zip(self.labelnames, key)), value) for key, value in items]

    def value(self, **labels: object):
        """The current value of one series (0 when never touched)."""
        key = self._validate(labels)
        with self._lock:
            value = self._series.get(key)
            if isinstance(value, HistogramSeries):
                return value.copy()
        return value if value is not None else self._zero()

    def _zero(self):
        return 0.0

    def clear(self) -> None:
        with self._lock:
            self._series.clear()
            self.dropped_updates = 0
            self._warned_cardinality = False


class Counter(Metric):
    """Monotonically increasing total."""

    type_name = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"{self.name}: counters only go up, got {amount}"
            )
        with self._lock:
            key = self._key_locked(labels)
            if key is None:
                return
            self._series[key] = self._series.get(key, 0.0) + amount


class Gauge(Metric):
    """A value that can go up and down (sizes, latest latency)."""

    type_name = "gauge"

    def set(self, value: float, **labels: object) -> None:
        with self._lock:
            key = self._key_locked(labels)
            if key is None:
                return
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        with self._lock:
            key = self._key_locked(labels)
            if key is None:
                return
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)


class HistogramSeries:
    """One labeled histogram: per-bucket counts + sum + count."""

    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * n_buckets  # non-cumulative, excludes +Inf
        self.sum = 0.0
        self.count = 0

    def copy(self) -> "HistogramSeries":
        """An independent snapshot (readers never share writer state)."""
        clone = HistogramSeries(len(self.bucket_counts))
        clone.bucket_counts = list(self.bucket_counts)
        clone.sum = self.sum
        clone.count = self.count
        return clone


def bucket_quantile(
    buckets: "tuple[float, ...]",
    bucket_counts: "list[int]",
    count: int,
    q: float,
) -> float:
    """Estimate the *q*-quantile of one bucketed distribution.

    Prometheus ``histogram_quantile`` semantics: linear interpolation
    within the bucket that crosses rank ``q * count`` (assuming
    observations spread uniformly inside a bucket), the first bucket
    interpolated from zero, and anything landing in the implicit +Inf
    bucket clamped to the largest finite bound.  Returns ``nan`` for an
    empty distribution.  Shared by :meth:`Histogram.quantile` and the
    windowed delta-histogram series in :mod:`repro.obs.live`.
    """
    if count == 0:
        return math.nan
    rank = q * count
    running = 0
    for index, (bound, bucket_count) in enumerate(zip(buckets, bucket_counts)):
        running += bucket_count
        if bucket_count and running >= rank:
            lower = 0.0 if index == 0 else buckets[index - 1]
            fraction = (rank - (running - bucket_count)) / bucket_count
            return lower + (bound - lower) * max(0.0, min(1.0, fraction))
    # Rank falls in the +Inf bucket: the best defensible answer is
    # the largest finite bound (exactly what Prometheus returns).
    return buckets[-1]


class Histogram(Metric):
    """Distribution over fixed buckets (Prometheus ``le`` semantics)."""

    type_name = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: "tuple[str, ...]" = (),
        buckets: "tuple[float, ...]" = DEFAULT_STAGE_BUCKETS,
        max_label_sets: int = MAX_LABEL_SETS,
    ):
        super().__init__(name, help_text, labelnames, max_label_sets)
        buckets = tuple(float(b) for b in buckets)
        if not buckets:
            raise ObservabilityError(f"{name}: a histogram needs buckets")
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ObservabilityError(
                f"{name}: buckets must be strictly increasing, got {buckets}"
            )
        if math.isinf(buckets[-1]):
            buckets = buckets[:-1]  # +Inf is implicit
        self.buckets = buckets

    def _zero(self) -> HistogramSeries:
        return HistogramSeries(len(self.buckets))

    def observe(self, value: float, **labels: object) -> None:
        with self._lock:
            key = self._key_locked(labels)
            if key is None:
                return
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = HistogramSeries(len(self.buckets))
            for index, bound in enumerate(self.buckets):
                if value <= bound:  # `le` is inclusive
                    series.bucket_counts[index] += 1
                    break
            series.sum += value
            series.count += 1

    def cumulative_buckets(self, **labels: object) -> "list[tuple[float, int]]":
        """``(le, cumulative_count)`` pairs including the +Inf bucket."""
        series = self.value(**labels)
        pairs = []
        running = 0
        for bound, count in zip(self.buckets, series.bucket_counts):
            running += count
            pairs.append((bound, running))
        pairs.append((math.inf, series.count))
        return pairs

    def quantile(self, q: float, **labels: object) -> float:
        """Estimate the *q*-quantile of one series from its buckets.

        Follows Prometheus ``histogram_quantile`` semantics: linear
        interpolation within the bucket that crosses rank ``q * count``
        (assuming observations spread uniformly inside a bucket), with
        the first bucket interpolated from zero and anything landing in
        the implicit +Inf bucket clamped to the largest finite bound.
        Returns ``nan`` for an empty series.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"{self.name}: quantile must be in [0, 1], got {q}")
        series = self.value(**labels)
        return bucket_quantile(self.buckets, series.bucket_counts, series.count, q)

    def summary(self, quantiles: "tuple[float, ...]" = (0.5, 0.95, 0.99), **labels: object) -> dict:
        """``{count, sum, mean, p50, p95, p99}`` for one series.

        The quantile keys follow the percentile naming (``p50`` for
        ``q=0.5``); an empty series reports zeros and ``nan`` quantiles.
        """
        series = self.value(**labels)
        out = {
            "count": series.count,
            "sum": series.sum,
            "mean": series.sum / series.count if series.count else 0.0,
        }
        for q in quantiles:
            out[f"p{round(q * 100):d}"] = self.quantile(q, **labels)
        return out


class MetricsRegistry:
    """Creates, deduplicates, and iterates metrics."""

    def __init__(self) -> None:
        self._metrics: "dict[str, Metric]" = {}

    def _register(self, cls, name, help_text, labelnames, **kwargs) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                raise ObservabilityError(
                    f"metric {name!r} already registered as "
                    f"{existing.type_name}{existing.labelnames}"
                )
            return existing
        metric = cls(name, help_text, tuple(labelnames), **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name, help_text="", labelnames=()) -> Counter:
        return self._register(Counter, name, help_text, labelnames)

    def gauge(self, name, help_text="", labelnames=()) -> Gauge:
        return self._register(Gauge, name, help_text, labelnames)

    def histogram(
        self, name, help_text="", labelnames=(), buckets=DEFAULT_STAGE_BUCKETS
    ) -> Histogram:
        return self._register(
            Histogram, name, help_text, labelnames, buckets=buckets
        )

    def get(self, name: str) -> "Metric | None":
        return self._metrics.get(name)

    def __iter__(self):
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def reset(self) -> None:
        """Clear every metric's series (definitions stay registered)."""
        for metric in self._metrics.values():
            metric.clear()
