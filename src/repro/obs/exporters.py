"""Exporters: JSONL span logs, Prometheus text, console tables.

Three ways out of the observability layer:

* :func:`write_jsonl` — one JSON object per finished span, for
  notebooks and trace viewers;
* :func:`generate_latest` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` + samples), as a scrape endpoint or file
  would serve it; :func:`parse_prometheus` reads it back;
* :func:`console_summary` — a human table over a registry (or a parsed
  metrics file), reusing :func:`repro.analysis.reporting.format_table`.
"""

from __future__ import annotations

import json
import math
import pathlib

from ..errors import ObservabilityError
from .metrics import Histogram, HistogramSeries, MetricsRegistry
from .tracer import Span, Tracer


def _format_table(headers, rows):
    # Imported lazily: pulling in the analysis package at module load
    # would close an import cycle (analysis -> core -> baselines -> obs).
    from ..analysis.reporting import format_table

    return format_table(headers, rows)


# -- JSONL spans ---------------------------------------------------------------


def spans_to_jsonl(spans: "list[Span]") -> str:
    """Serialise spans, one JSON object per line."""
    return "".join(json.dumps(span.to_dict(), sort_keys=True) + "\n" for span in spans)


def write_jsonl(tracer: Tracer, path) -> int:
    """Write the tracer's finished spans to *path*; returns span count.

    Exports from a locked snapshot, so worker threads finishing spans
    mid-write can never tear a line.
    """
    spans = tracer.snapshot_finished()
    pathlib.Path(path).write_text(spans_to_jsonl(spans))
    return len(spans)


def read_jsonl(path) -> "list[dict]":
    """Load span records back from a JSONL trace file."""
    records = []
    for line in pathlib.Path(path).read_text().splitlines():
        if line.strip():
            records.append(json.loads(line))
    return records


# -- Prometheus text exposition ------------------------------------------------


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')


def _format_labels(labels: dict) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def generate_latest(registry: MetricsRegistry) -> str:
    """Render every metric in the Prometheus text format.

    Each metric renders from the single locked snapshot
    :meth:`~repro.obs.metrics.Metric.labeled_values` takes, so a series
    written concurrently never shows a ``_count`` that disagrees with
    its own buckets.
    """
    lines = []
    for metric in registry:
        lines.append(f"# HELP {metric.name} {metric.help_text}")
        lines.append(f"# TYPE {metric.name} {metric.type_name}")
        if isinstance(metric, Histogram):
            for labels, series in metric.labeled_values():
                running = 0
                for bound, count in zip(metric.buckets, series.bucket_counts):
                    running += count
                    le = {"le": _format_value(bound)}
                    lines.append(
                        f"{metric.name}_bucket{_format_labels({**labels, **le})} "
                        f"{running}"
                    )
                inf = {"le": "+Inf"}
                lines.append(
                    f"{metric.name}_bucket{_format_labels({**labels, **inf})} "
                    f"{series.count}"
                )
                lines.append(
                    f"{metric.name}_sum{_format_labels(labels)} "
                    f"{_format_value(series.sum)}"
                )
                lines.append(
                    f"{metric.name}_count{_format_labels(labels)} {series.count}"
                )
        else:
            for labels, value in metric.labeled_values():
                lines.append(
                    f"{metric.name}{_format_labels(labels)} {_format_value(value)}"
                )
    return "\n".join(lines) + "\n"


def write_prometheus(registry: MetricsRegistry, path) -> None:
    """Write the registry's exposition text to *path*."""
    pathlib.Path(path).write_text(generate_latest(registry))


def _parse_labels(body: str) -> dict:
    labels = {}
    for part in body.split(","):
        if not part:
            continue
        name, _, raw = part.partition("=")
        value = raw.strip().strip('"')
        labels[name.strip()] = (
            value.replace(r"\"", '"').replace(r"\n", "\n").replace(r"\\", "\\")
        )
    return labels


def parse_prometheus(text: str) -> "list[dict]":
    """Parse exposition text into ``{name, labels, value, type, help}``.

    Understands the subset :func:`generate_latest` emits — enough for
    ``repro metrics`` to re-render a captured file.
    """
    samples = []
    types: "dict[str, str]" = {}
    helps: "dict[str, str]" = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            helps[name] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, type_name = rest.partition(" ")
            types[name] = type_name
            continue
        if line.startswith("#"):
            continue
        if "{" in line:
            name, _, rest = line.partition("{")
            labels_body, _, value_part = rest.partition("}")
            labels = _parse_labels(labels_body)
        else:
            name, _, value_part = line.partition(" ")
            labels = {}
        value_text = value_part.strip()
        try:
            value = float(value_text.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError:
            raise ObservabilityError(
                f"line {lineno}: cannot parse sample value {value_text!r}"
            ) from None
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                base = name[: -len(suffix)]
                break
        samples.append(
            {
                "name": name,
                "labels": labels,
                "value": value,
                "type": types.get(base, "untyped"),
                "help": helps.get(base, ""),
            }
        )
    return samples


# -- console summary -----------------------------------------------------------


def console_summary(registry: MetricsRegistry) -> str:
    """A human-readable table over every series in *registry*."""
    rows = []
    for metric in registry:
        for labels, value in metric.labeled_values():
            label_text = ", ".join(f"{k}={v}" for k, v in sorted(labels.items()))
            if isinstance(value, HistogramSeries):
                mean = value.sum / value.count if value.count else 0.0
                shown = f"n={value.count} sum={value.sum:.3f} mean={mean:.3f}"
            else:
                shown = _format_value(value)
            rows.append([metric.name, metric.type_name, label_text, shown])
    if not rows:
        return "(no metrics recorded)"
    return _format_table(["metric", "type", "labels", "value"], rows)


def render_metrics_file(path) -> str:
    """Re-render a captured Prometheus text file as a console table."""
    text = pathlib.Path(path).read_text()
    samples = parse_prometheus(text)
    if not samples:
        return "(no metrics recorded)"
    rows = [
        [
            sample["name"],
            sample["type"],
            ", ".join(f"{k}={v}" for k, v in sorted(sample["labels"].items())),
            _format_value(sample["value"]),
        ]
        for sample in samples
    ]
    return _format_table(["metric", "type", "labels", "value"], rows)
