"""The ``repro top`` live dashboard: terminal frames + HTML snapshots.

Renders one :class:`~repro.obs.live.StreamingAggregator` (plus the
cumulative registry behind it) two ways:

* :func:`render_frame` — a fixed-width terminal screen: throughput and
  energy sparklines per scheme, a windowed stage-latency table, the
  per-device and per-shard series, and (when a spec is supplied) the
  live SLO burn-rate verdicts.  ``repro top`` redraws it at the sample
  cadence; ``repro top --once`` prints a single frame (the CI smoke
  path).
* :func:`render_html` — a dependency-free standalone HTML report with
  inline SVG line charts of every retained series, written by
  ``repro top --html`` and uploaded as a CI artifact next to the folded
  profile.

Both renderers are pure functions of the aggregator snapshot, so tests
drive them with synthetic samples and never sleep.
"""

from __future__ import annotations

import html as html_escape
import math

from .journal import DecisionJournal
from .live import StreamingAggregator
from .runtime import Observability, get_obs
from .slo import SloSpec, evaluate_live

#: Width of the sparkline column in terminal frames.
SPARK_WIDTH = 32


def _charts():
    # Imported lazily: pulling in the analysis package at module load
    # would close an import cycle (analysis -> core -> index -> obs).
    from ..analysis.charts import sparkline
    from ..analysis.reporting import format_table

    return sparkline, format_table


def _tail(values: "list[float]", width: int = SPARK_WIDTH) -> "list[float]":
    return values[-width:] if len(values) > width else values


def _fmt(value: "float | None", precision: int = 3) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    if value == int(value) and abs(value) < 1e9:
        return str(int(value))
    return f"{value:.{precision}g}"


def _series_groups(
    snapshot: "dict[str, list[tuple[float, float]]]", name: str
) -> "list[tuple[str, list[float]]]":
    """``(label_text, values)`` per series of one family, sorted."""
    groups = []
    prefix = name + "{"
    for key in sorted(snapshot):
        if key == name:
            groups.append(("", [v for _, v in snapshot[key]]))
        elif key.startswith(prefix) and key.endswith("}"):
            label = key[len(prefix):-1]
            groups.append((label, [v for _, v in snapshot[key]]))
    return groups


def render_frame(
    aggregator: StreamingAggregator,
    obs: "Observability | None" = None,
    spec: "SloSpec | None" = None,
    width: int = 80,
    journal: "DecisionJournal | None" = None,
) -> str:
    """One terminal frame over the aggregator's current snapshot."""
    sparkline, format_table = _charts()
    obs = obs if obs is not None else get_obs()
    snapshot = aggregator.snapshot()
    lines = []
    title = " repro top — BEES fleet telemetry "
    lines.append(title.center(width, "="))

    # -- throughput & energy rates ------------------------------------------
    rate_rows = []
    for family, unit in (
        ("goodput_bytes_per_s", "B/s"),
        ("joules_per_s", "J/s"),
        ("uploads_per_s", "img/s"),
    ):
        for label, values in _series_groups(snapshot, family):
            if not values:
                continue
            rate_rows.append(
                [
                    family,
                    label,
                    f"{_fmt(values[-1])} {unit}",
                    sparkline(_tail(values), lo=0.0),
                ]
            )
    cache = _series_groups(snapshot, "cache_hit_rate")
    for label, values in cache:
        if values:
            rate_rows.append(
                [
                    "cache_hit_rate",
                    label,
                    f"{values[-1] * 100:.0f}%",
                    sparkline(_tail(values), lo=0.0, hi=1.0),
                ]
            )
    if rate_rows:
        lines.append("")
        lines.append(format_table(["rate", "labels", "now", "trend"], rate_rows))

    # -- windowed stage latency ---------------------------------------------
    stage_rows = []
    p50 = dict(_series_groups(snapshot, "stage_p50"))
    p95 = dict(_series_groups(snapshot, "stage_p95"))
    p99 = dict(_series_groups(snapshot, "stage_p99"))
    for label in sorted(p99):
        stage_rows.append(
            [
                label,
                _fmt(p50.get(label, [math.nan])[-1] if p50.get(label) else None),
                _fmt(p95.get(label, [math.nan])[-1] if p95.get(label) else None),
                _fmt(p99[label][-1] if p99[label] else None),
                sparkline(_tail(p99[label]), lo=0.0) if p99[label] else "",
            ]
        )
    if stage_rows:
        lines.append("")
        lines.append(
            format_table(
                ["stage (windowed)", "p50", "p95", "p99", "p99 trend"], stage_rows
            )
        )

    # -- fleet: queue, devices, shards --------------------------------------
    queue = _series_groups(snapshot, "queue_depth")
    if queue and queue[0][1]:
        values = queue[0][1]
        lines.append("")
        lines.append(
            f"queue depth: {_fmt(values[-1])}  "
            f"{sparkline(_tail(values), lo=0.0)}"
        )
    device_rows = []
    uploads = dict(_series_groups(snapshot, "device_uploads"))
    seconds = dict(_series_groups(snapshot, "device_seconds"))
    for label in sorted(set(uploads) | set(seconds)):
        up = uploads.get(label) or []
        sec = seconds.get(label) or []
        device_rows.append(
            [
                label,
                _fmt(sum(up)),
                _fmt(up[-1] if up else None),
                _fmt(sec[-1] if sec else None),
                sparkline(_tail(up), lo=0.0) if up else "",
            ]
        )
    if device_rows:
        lines.append("")
        lines.append(
            format_table(
                ["device", "uploads", "last tick", "busy s", "trend"], device_rows
            )
        )
    shard_rows = []
    for label, values in _series_groups(snapshot, "shard_entries"):
        if values:
            shard_rows.append(
                [label, _fmt(values[-1]), sparkline(_tail(values), lo=0.0)]
            )
    if shard_rows:
        lines.append("")
        lines.append(format_table(["shard", "entries", "trend"], shard_rows))

    # -- decision journal counters -------------------------------------------
    if journal is not None and journal.enabled:
        counters = journal.snapshot()
        by_event = counters["by_event"]
        by_device = counters["by_device"]
        assert isinstance(by_event, dict) and isinstance(by_device, dict)
        lines.append("")
        lines.append(
            f"journal {counters['run']}: {counters['events']} event(s)"
            + (f" -> {counters['path']}" if counters["path"] else "")
        )
        journal_rows = [
            [event, _fmt(float(count))]
            for event, count in sorted(
                by_event.items(), key=lambda item: (-item[1], item[0])
            )
        ]
        if journal_rows:
            lines.append(format_table(["event", "count"], journal_rows))
        device_counts = [
            f"{device}:{count}" for device, count in sorted(by_device.items())
        ]
        if device_counts:
            lines.append("per-device events: " + "  ".join(device_counts))

    # -- live SLO verdicts ---------------------------------------------------
    if spec is not None:
        verdicts = evaluate_live(spec, aggregator)
        slo_rows = []
        for result in verdicts:
            worst = max(
                (rate["long_burn"] for rate in result.burn_rates), default=0.0
            )
            slo_rows.append(
                [
                    "OK" if result.ok else "BURNING",
                    result.name,
                    _fmt(result.value),
                    f"{worst:.2f}x",
                ]
            )
        if slo_rows:
            lines.append("")
            lines.append(
                format_table(["slo", "name", "latest", "worst burn"], slo_rows)
            )

    if len(lines) == 1:
        lines.append("")
        lines.append("(no samples yet — is an instrumented run active?)")
    lines.append("")
    lines.append("=" * width)
    return "\n".join(lines)


# -- HTML snapshot -------------------------------------------------------------

_SVG_WIDTH = 560
_SVG_HEIGHT = 120
_MARGIN = 8

_HTML_HEAD = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro top — BEES fleet telemetry</title>
<style>
 body { font-family: -apple-system, "Segoe UI", sans-serif; margin: 2rem;
        background: #101418; color: #d8dee4; }
 h1 { font-size: 1.3rem; } h2 { font-size: 1.0rem; margin: 1.2rem 0 0.3rem; }
 .chart { background: #161c22; border: 1px solid #2a333c; border-radius: 6px;
          padding: 6px 10px; margin-bottom: 10px; display: inline-block; }
 .chart .label { font-size: 0.8rem; color: #9fb0bf; }
 .chart .latest { float: right; color: #5fd7a7; }
 svg polyline { fill: none; stroke: #5fb2d7; stroke-width: 1.5; }
 svg line.axis { stroke: #2a333c; stroke-width: 1; }
 table { border-collapse: collapse; font-size: 0.85rem; }
 td, th { border: 1px solid #2a333c; padding: 3px 8px; }
 .fail { color: #e06c75; } .pass { color: #5fd7a7; }
</style>
</head>
<body>
"""


def _svg_line(points: "list[tuple[float, float]]") -> str:
    """One inline SVG line chart of a ``(t, v)`` series."""
    values = [v for _, v in points]
    lo, hi = min(values), max(values)
    if hi <= lo:
        hi = lo + 1.0
    inner_w = _SVG_WIDTH - 2 * _MARGIN
    inner_h = _SVG_HEIGHT - 2 * _MARGIN
    n = len(points)
    coords = []
    for i, (_, value) in enumerate(points):
        x = _MARGIN + (inner_w * i / max(1, n - 1))
        y = _MARGIN + inner_h * (1.0 - (value - lo) / (hi - lo))
        coords.append(f"{x:.1f},{y:.1f}")
    baseline = _SVG_HEIGHT - _MARGIN
    return (
        f'<svg width="{_SVG_WIDTH}" height="{_SVG_HEIGHT}" '
        f'viewBox="0 0 {_SVG_WIDTH} {_SVG_HEIGHT}">'
        f'<line class="axis" x1="{_MARGIN}" y1="{baseline}" '
        f'x2="{_SVG_WIDTH - _MARGIN}" y2="{baseline}"/>'
        f'<polyline points="{" ".join(coords)}"/>'
        "</svg>"
    )


def render_html(
    aggregator: StreamingAggregator,
    spec: "SloSpec | None" = None,
    title: str = "BEES fleet telemetry",
) -> str:
    """A standalone HTML report of every retained series.

    No external scripts or styles — the file is self-contained so CI
    can upload it as an artifact and it renders anywhere.
    """
    snapshot = aggregator.snapshot()
    parts = [_HTML_HEAD, f"<h1>{html_escape.escape(title)}</h1>"]
    if spec is not None:
        verdicts = evaluate_live(spec, aggregator)
        if verdicts:
            parts.append("<h2>Live SLOs</h2><table>")
            parts.append(
                "<tr><th>status</th><th>slo</th><th>latest</th>"
                "<th>worst long burn</th></tr>"
            )
            for result in verdicts:
                worst = max(
                    (rate["long_burn"] for rate in result.burn_rates), default=0.0
                )
                css = "pass" if result.ok else "fail"
                status = "OK" if result.ok else "BURNING"
                parts.append(
                    f'<tr><td class="{css}">{status}</td>'
                    f"<td>{html_escape.escape(result.name)}</td>"
                    f"<td>{_fmt(result.value)}</td><td>{worst:.2f}x</td></tr>"
                )
            parts.append("</table>")
    if not snapshot:
        parts.append("<p>(no samples recorded)</p>")
    for key in sorted(snapshot):
        points = snapshot[key]
        if not points:
            continue
        latest = points[-1][1]
        parts.append(
            '<div class="chart"><span class="label">'
            f"{html_escape.escape(key)}</span>"
            f'<span class="latest">{_fmt(latest)}</span><br>'
            f"{_svg_line(points)}</div><br>"
        )
    parts.append("</body>\n</html>\n")
    return "\n".join(parts)
