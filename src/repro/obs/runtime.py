"""The process-wide observability context.

One :class:`Observability` object bundles a :class:`~repro.obs.tracer.
Tracer`, a :class:`~repro.obs.metrics.MetricsRegistry` with the standard
BEES metric set pre-registered, and optional export paths.  The module
keeps a single global instance — disabled by default, so instrumented
hot paths reduce to one attribute check — which :func:`configure`
replaces and :func:`disable` resets::

    obs = configure(trace_path="/tmp/t.jsonl", metrics_path="/tmp/m.prom")
    ...  # run experiments; instrumented code records through get_obs()
    obs.flush()
    disable()

Standard metrics (all labelled where it matters):

* ``bees_bytes_sent_total{scheme}``, ``bees_energy_joules_total{scheme,
  category}`` — per-scheme batch totals, recorded by the shared
  :meth:`repro.baselines.base.SharingScheme.observe_batch` hook;
* ``bees_eliminations_total{scheme,kind}`` with ``kind`` ∈
  ``cross|in_batch``;
* ``bees_images_total{scheme,outcome}`` (``uploaded|halted`` inputs),
  ``bees_batches_total{scheme}``;
* ``bees_stage_seconds{scheme,stage}`` — simulated seconds per pipeline
  stage (``afe``, ``feature_upload``, ``ssmm``, ``aiu``,
  ``image_upload``);
* ``bees_index_size`` / ``bees_index_query_latency_seconds`` gauges and
  ``bees_index_queries_total`` for the server-side feature index;
* ``bees_link_transfers_total`` / ``bees_link_bytes_total`` and a
  ``bees_link_transfer_seconds`` histogram on the uplink, plus the
  degraded-network set — ``bees_link_chunks_total``,
  ``bees_link_retransmits_total``, ``bees_link_chunk_drops_total``,
  ``bees_link_vote_corrections_total`` and
  ``bees_link_residual_corrupt_total`` — recorded when a chunked
  transport is attached (:mod:`repro.network.transfer`);
* ``bees_dtn_transmissions_total{kind}`` / ``bees_dtn_delivered_total``
  for the epidemic DTN;
* ``bees_fleet_rounds_total`` / ``bees_fleet_queue_depth`` and the
  per-shard ``bees_index_shard_contention_total{shard}`` /
  ``bees_index_shard_entries{shard}`` pair for the concurrent fleet
  runtime (:mod:`repro.fleet`);
* ``bees_kernel_cache_events_total{event}`` (``hit|miss``) for the
  kernel layer's match-count cache (:mod:`repro.kernels.cache`);
* the process-parallel index set (:mod:`repro.index.procpool`):
  ``bees_index_ipc_seconds{op}`` worker round-trip latencies,
  ``bees_index_worker_queue_depth{shard}``,
  ``bees_index_segments{shard}`` /
  ``bees_index_segment_compactions_total{shard}`` for the on-disk
  segment stores, and ``bees_index_arena_bytes{shard}`` for
  shared-memory arena occupancy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .exporters import console_summary, write_jsonl, write_prometheus
from .metrics import DEFAULT_STAGE_BUCKETS, MetricsRegistry
from .tracer import EMPTY_CONTEXT, NULL_SPAN, TraceContext, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..baselines.base import BatchReport

#: Pipeline stages whose simulated durations feed ``bees_stage_seconds``.
PIPELINE_STAGES = ("afe", "feature_upload", "ssmm", "aiu", "image_upload")

#: Buckets for uplink transfer times (simulated seconds — transfers of a
#: few KB at ~Mbps goodputs land well under a second; image uploads can
#: take tens of seconds on a bad channel).
LINK_BUCKETS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0)

#: Buckets for process-index worker round-trips (real wall-clock: pipe
#: latency is tens of microseconds, a cold verify over a big shard can
#: take tens of milliseconds).
IPC_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0,
)


class Observability:
    """A tracer + registry pair with optional file exporters."""

    def __init__(
        self,
        enabled: bool = True,
        trace_path=None,
        metrics_path=None,
        stage_buckets: "tuple[float, ...]" = DEFAULT_STAGE_BUCKETS,
    ) -> None:
        self.enabled = enabled
        self.trace_path = trace_path
        self.metrics_path = metrics_path
        self.stage_buckets = tuple(stage_buckets)
        self.tracer = Tracer(enabled=enabled)
        self.registry = MetricsRegistry()
        self._register_standard_metrics()

    # -- standard metric set -------------------------------------------------

    def _register_standard_metrics(self) -> None:
        registry = self.registry
        self.sent_bytes = registry.counter(
            "bees_bytes_sent_total",
            "Bytes pushed through the uplink, per scheme",
            ("scheme",),
        )
        self.energy_joules = registry.counter(
            "bees_energy_joules_total",
            "Joules drained from the battery, per scheme and energy category",
            ("scheme", "category"),
        )
        self.eliminations = registry.counter(
            "bees_eliminations_total",
            "Images eliminated as redundant (kind=cross|in_batch)",
            ("scheme", "kind"),
        )
        self.images = registry.counter(
            "bees_images_total",
            "Images by outcome (outcome=input|uploaded)",
            ("scheme", "outcome"),
        )
        self.batches = registry.counter(
            "bees_batches_total",
            "Batches processed, per scheme",
            ("scheme",),
        )
        self.stage_seconds = registry.histogram(
            "bees_stage_seconds",
            "Simulated seconds spent per pipeline stage per image",
            ("scheme", "stage"),
            buckets=self.stage_buckets,
        )
        self.index_size = registry.gauge(
            "bees_index_size",
            "Feature-index entries held by the server",
        )
        self.index_query_latency = registry.gauge(
            "bees_index_query_latency_seconds",
            "Wall-clock seconds of the most recent index query",
        )
        self.index_queries = registry.counter(
            "bees_index_queries_total",
            "CBRD queries answered by the server index",
        )
        self.link_transfers = registry.counter(
            "bees_link_transfers_total",
            "Transfers carried by the uplink",
        )
        self.link_bytes = registry.counter(
            "bees_link_bytes_total",
            "Payload bytes carried by the uplink",
        )
        self.link_transfer_seconds = registry.histogram(
            "bees_link_transfer_seconds",
            "Simulated seconds per uplink transfer",
            buckets=LINK_BUCKETS,
        )
        self.link_chunks = registry.counter(
            "bees_link_chunks_total",
            "Chunks sent by the chunked uplink transport",
        )
        self.link_retransmits = registry.counter(
            "bees_link_retransmits_total",
            "Chunk retransmissions (ARQ retries and replica re-rounds)",
        )
        self.link_chunk_drops = registry.counter(
            "bees_link_chunk_drops_total",
            "Chunk transmissions dropped by the lossy channel",
        )
        self.link_vote_corrections = registry.counter(
            "bees_link_vote_corrections_total",
            "Byte positions repaired by replica majority voting",
        )
        self.link_residual_corrupt = registry.counter(
            "bees_link_residual_corrupt_total",
            "Chunks still failing their checksum after replica voting",
        )
        self.dtn_transmissions = registry.counter(
            "bees_dtn_transmissions_total",
            "DTN image transmissions (kind=relay|gateway)",
            ("kind",),
        )
        self.dtn_delivered = registry.counter(
            "bees_dtn_delivered_total",
            "Images drained into the DTN gateway",
        )
        self.fleet_rounds = registry.counter(
            "bees_fleet_rounds_total",
            "Fleet upload rounds completed (one per batch interval)",
        )
        self.fleet_queue_depth = registry.gauge(
            "bees_fleet_queue_depth",
            "Device batches admitted to the current fleet round and not "
            "yet finished",
        )
        self.shard_contention = registry.counter(
            "bees_index_shard_contention_total",
            "Sharded-index writes that found their shard lock already held",
            ("shard",),
        )
        self.shard_entries = registry.gauge(
            "bees_index_shard_entries",
            "Feature-index entries held per shard",
            ("shard",),
        )
        self.kernel_cache_events = registry.counter(
            "bees_kernel_cache_events_total",
            "Match-count cache lookups by outcome (event=hit|miss)",
            ("event",),
        )
        self.index_ipc_seconds = registry.histogram(
            "bees_index_ipc_seconds",
            "Wall-clock seconds per process-index worker round-trip "
            "(op=add|vote|verify|control)",
            ("op",),
            buckets=IPC_BUCKETS,
        )
        self.index_worker_queue_depth = registry.gauge(
            "bees_index_worker_queue_depth",
            "Requests in flight to a process-index shard worker",
            ("shard",),
        )
        self.index_segments = registry.gauge(
            "bees_index_segments",
            "Sealed on-disk segment files held per process-index shard",
            ("shard",),
        )
        self.index_segment_compactions = registry.counter(
            "bees_index_segment_compactions_total",
            "Segment compaction passes completed per process-index shard",
            ("shard",),
        )
        self.index_arena_bytes = registry.gauge(
            "bees_index_arena_bytes",
            "Shared-memory arena bytes allocated per process-index shard",
            ("shard",),
        )

    # -- tracing -------------------------------------------------------------

    def span(
        self,
        name: str,
        parent_span_id: "int | None" = None,
        **attributes: object,
    ):
        """A tracer span, or the shared no-op when disabled.

        ``parent_span_id`` pins the parent explicitly — used when the
        span is opened in a worker thread but belongs under a span the
        coordinating thread owns (the fleet span tree).
        """
        if not self.enabled:
            return NULL_SPAN
        return self.tracer.span(name, parent_span_id=parent_span_id, **attributes)

    def capture_context(self) -> TraceContext:
        """The calling thread's trace context (for worker handoff)."""
        if not self.enabled:
            return EMPTY_CONTEXT
        return self.tracer.current_context()

    def attach(self, context: TraceContext):
        """Seat a captured context under this thread's spans.

        The worker-thread half of cross-thread propagation: everything
        opened inside the block parents into the captured trace.
        """
        if not self.enabled:
            return NULL_SPAN
        return self.tracer.attach(context)

    # -- recording helpers ---------------------------------------------------

    def observe_stage(self, scheme: str, stage: str, seconds: float) -> None:
        """Record one image's simulated time in one pipeline stage."""
        self.stage_seconds.observe(seconds, scheme=scheme, stage=stage)

    def observe_batch_report(self, report: "BatchReport") -> None:
        """Fold one finished :class:`BatchReport` into the metric set.

        This is the shared per-batch hook every scheme (BEES and the
        baselines alike) reports through, so scheme-level totals stay
        comparable regardless of how a scheme structures its pipeline.
        """
        scheme = report.scheme
        self.batches.inc(scheme=scheme)
        self.sent_bytes.inc(report.sent_bytes, scheme=scheme)
        for category, joules in report.energy_by_category.items():
            self.energy_joules.inc(joules, scheme=scheme, category=category)
        if report.eliminated_cross_batch:
            self.eliminations.inc(
                len(report.eliminated_cross_batch), scheme=scheme, kind="cross"
            )
        if report.eliminated_in_batch:
            self.eliminations.inc(
                len(report.eliminated_in_batch), scheme=scheme, kind="in_batch"
            )
        self.images.inc(report.n_images, scheme=scheme, outcome="input")
        if report.n_uploaded:
            self.images.inc(report.n_uploaded, scheme=scheme, outcome="uploaded")

    # -- exporting -----------------------------------------------------------

    def flush(self) -> "list[str]":
        """Write the configured export files; returns what was written."""
        written = []
        if self.trace_path is not None:
            write_jsonl(self.tracer, self.trace_path)
            written.append(str(self.trace_path))
        if self.metrics_path is not None:
            write_prometheus(self.registry, self.metrics_path)
            written.append(str(self.metrics_path))
        return written

    def summary(self) -> str:
        """The console table of everything recorded so far."""
        return console_summary(self.registry)

    def exporters(self) -> "list[str]":
        """Names of the active exporters (for ``repro info``)."""
        active = []
        if self.trace_path is not None:
            active.append(f"jsonl({self.trace_path})")
        if self.metrics_path is not None:
            active.append(f"prometheus({self.metrics_path})")
        return active


#: The process-wide instance; disabled by default so instrumentation in
#: hot paths costs a single attribute check.
_OBS = Observability(enabled=False)


def get_obs() -> Observability:
    """The current global observability context."""
    return _OBS


def configure(
    trace_path=None,
    metrics_path=None,
    enabled: "bool | None" = None,
    stage_buckets: "tuple[float, ...]" = DEFAULT_STAGE_BUCKETS,
) -> Observability:
    """Install (and return) a fresh global observability context.

    Passing either path implies ``enabled=True``; ``configure()`` with
    no arguments enables in-memory-only collection.
    """
    global _OBS
    if enabled is None:
        enabled = True
    _OBS = Observability(
        enabled=enabled,
        trace_path=trace_path,
        metrics_path=metrics_path,
        stage_buckets=stage_buckets,
    )
    return _OBS


def disable() -> Observability:
    """Reset the global context to the disabled default."""
    global _OBS
    _OBS = Observability(enabled=False)
    return _OBS
