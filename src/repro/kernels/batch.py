"""Batched all-pairs similarity — the SSMM matrix in one pass.

The pre-kernel :func:`repro.core.ssmm.similarity_matrix` called the
pairwise Jaccard path n(n-1)/2 times, and every call re-cast both
descriptor matrices, re-derived thresholds, and (for float kinds)
re-computed squared norms.  This kernel hoists all per-set work out of
the pair loop:

* descriptors are packed to uint64 words (binary) or cast to float64
  with precomputed squared norms (float) **once per set**;
* the distance ceiling is resolved **once per batch**;
* every pair consults the shared :mod:`match-count cache
  <repro.kernels.cache>` before computing, so pairs the server already
  verified — or a previous batch already scored — cost a dict lookup.

Per-pair arithmetic is kept operation-for-operation identical to the
pairwise path (same cast targets, same reduction order, same
mutual-match logic), so the resulting matrix is byte-identical — the
property the differential suite in ``tests/kernels`` pins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import FeatureError
from ..features.base import FeatureSet
from ..features.matching import mutual_matches, resolve_threshold
from ..obs.runtime import get_obs
from .cache import MatchCountCache, get_match_cache, match_key
from .hamming import hamming_distance_matrix_u64, pack_rows_u64


@dataclass(frozen=True)
class PreparedSet:
    """One feature set with its per-set kernel work hoisted."""

    features: FeatureSet
    #: uint64 words for binary kinds, None for float kinds.
    words: "np.ndarray | None"
    #: float64 descriptors for float kinds, None for binary kinds.
    floats: "np.ndarray | None"
    #: Squared row norms of ``floats`` (float kinds only).
    norms: "np.ndarray | None"


def prepare_set(features: FeatureSet, binary: bool) -> PreparedSet:
    """Hoist the per-set casts the pair loop would otherwise repeat."""
    if binary:
        return PreparedSet(
            features=features,
            words=pack_rows_u64(features.descriptors),
            floats=None,
            norms=None,
        )
    floats = np.asarray(features.descriptors, dtype=np.float64)
    return PreparedSet(
        features=features,
        words=None,
        floats=floats,
        norms=(floats * floats).sum(axis=1),
    )


def _pair_distances(a: PreparedSet, b: PreparedSet) -> np.ndarray:
    if a.words is not None and b.words is not None:
        return hamming_distance_matrix_u64(a.words, b.words)
    assert a.floats is not None and a.norms is not None
    assert b.floats is not None and b.norms is not None
    # Same expression shape and reduction order as l2_distance_matrix,
    # with the norms hoisted — identical float64 results.
    sq = a.norms[:, None] + b.norms[None, :] - 2.0 * (a.floats @ b.floats.T)
    return np.sqrt(np.maximum(sq, 0.0))


def pair_match_count(
    a: PreparedSet,
    b: PreparedSet,
    kind: str,
    limit: float,
    cache: "MatchCountCache | None",
) -> int:
    """Mutual-match count of one prepared pair, through the cache."""
    if len(a.features) == 0 or len(b.features) == 0:
        return 0
    key = None
    if cache is not None:
        key = match_key(
            kind,
            limit,
            a.features.image_id,
            a.features.descriptors,
            b.features.image_id,
            b.features.descriptors,
        )
        cached = cache.get(key)
        if cached is not None:
            return cached
    count = int(mutual_matches(_pair_distances(a, b), limit).shape[0])
    if cache is not None:
        cache.put(key, count)
    return count


def _pair_jaccard(
    a: PreparedSet,
    b: PreparedSet,
    kind: str,
    limit: float,
    cache: "MatchCountCache | None",
) -> float:
    # Branch-for-branch the pairwise _jaccard, over hoisted inputs.
    n_a, n_b = len(a.features), len(b.features)
    if n_a == 0 and n_b == 0:
        return 0.0
    matches = pair_match_count(a, b, kind, limit, cache)
    union = n_a + n_b - matches
    if union <= 0:
        return 1.0
    return matches / union


def batch_similarity_matrix(
    feature_sets: "list[FeatureSet]",
    threshold: "float | None" = None,
    cache: "MatchCountCache | None" = None,
) -> np.ndarray:
    """The pairwise Equation-2 similarity matrix, diagonal 1.

    Byte-identical to calling :func:`repro.features.similarity.
    jaccard_similarity` per pair; the batch shape exists so the per-set
    preparation and threshold resolution happen once.  With
    observability enabled the whole batch records a single
    ``kernels.similarity_matrix`` span (pair count, cache hits) instead
    of n² per-pair spans.
    """
    n = len(feature_sets)
    weights = np.eye(n)
    if n < 2:
        return weights
    kind = feature_sets[0].kind
    for features in feature_sets[1:]:
        if features.kind != kind:
            raise FeatureError(
                f"cannot compare {kind!r} with {features.kind!r} features"
            )
    limit = resolve_threshold(kind, threshold)
    if cache is None:
        cache = get_match_cache()
    hits_before = cache.hits
    prepared = [prepare_set(features, binary=kind == "orb") for features in feature_sets]
    obs = get_obs()
    with obs.span(
        "kernels.similarity_matrix", kind=kind, n=n, pairs=n * (n - 1) // 2
    ) as span:
        for i in range(n):
            for j in range(i + 1, n):
                weights[i, j] = weights[j, i] = _pair_jaccard(
                    prepared[i], prepared[j], kind, limit, cache
                )
        if obs.enabled:
            span.set_attribute("cache_hits", cache.hits - hits_before)
    return weights
